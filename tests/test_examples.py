"""The example scripts stay runnable (the fast ones run end-to-end)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_scaling_study(self, capsys):
        out = run_example("scaling_study.py", [], capsys)
        assert "Figure 4" in out
        assert "Figure 5" in out
        assert "infeasible" in out  # the v0.5 batch cap bites

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Scored time-to-train" in out
        assert ":::MLLOG" in out

    def test_custom_benchmark(self, capsys):
        out = run_example("custom_benchmark.py", [], capsys)
        assert "time_series_forecasting" in out
        assert "provisional score" in out

    def test_submission_round(self, capsys):
        out = run_example("submission_round.py", [], capsys)
        assert "NON-COMPLIANT" in out  # zeta's first submission
        assert "COMPLIANT" in out
        assert "summary_score() refused" in out

    @pytest.mark.parametrize("name", [
        "open_division.py",
        "numerics_study.py",
    ])
    def test_slow_examples_importable(self, name):
        """Slow examples are at least syntactically valid and importable."""
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
