"""The observability server: HTTP endpoints over a finished campaign.

These tests run a real (FakeClock) campaign on disk, boot the server on
an ephemeral port, and scrape it like Prometheus/a dashboard would. The
tentpole property — consumed bytes never re-read — is asserted against
the tailer's own byte accounting across repeated scrapes.
"""

import json
import threading
import urllib.request

from repro.core.timing import FakeClock
from repro.telemetry.serve import ObservabilityServer, discover_campaign_dirs

from .test_monitor import _run_campaign


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


def _get_json(url):
    status, _, body = _get(url)
    return status, json.loads(body)


class _Server:
    """Context manager: bound server + background serve thread."""

    def __init__(self, root, clock, **kwargs):
        kwargs.setdefault("min_refresh_s", 0.0)
        self.server = ObservabilityServer(root, port=0, clock=clock.now,
                                          **kwargs).bind()
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)

    def __enter__(self):
        self.thread.start()
        return self.server

    def __exit__(self, *exc):
        self.server.shutdown()
        self.thread.join(timeout=10.0)
        self.server.close()


class TestDiscovery:
    def test_root_as_single_campaign(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        assert discover_campaign_dirs(tmp_path) == {tmp_path.name: tmp_path}

    def test_root_of_campaign_directories(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path / "c1", clock)
        _run_campaign(tmp_path / "c2", clock)
        (tmp_path / "not_a_campaign").mkdir()
        found = discover_campaign_dirs(tmp_path)
        assert sorted(found) == ["c1", "c2"]

    def test_empty_root(self, tmp_path):
        assert discover_campaign_dirs(tmp_path) == {}


class TestEndpoints:
    def test_metrics_api_and_alerts(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        cid = tmp_path.name
        with _Server(tmp_path, clock) as srv:
            # /metrics: Prometheus text with job states, alert totals, and
            # the run metrics merged out of the result-file headers.
            status, headers, text = _get(srv.url + "/metrics")
            assert status == 200
            assert "text/plain" in headers["Content-Type"]
            assert f'repro_campaign_jobs{{campaign="{cid}",status="reached"}} 3' in text
            assert f'repro_campaign_cells{{campaign="{cid}"}} 3' in text
            assert f'repro_alerts_firing_total{{campaign="{cid}"}} 0' in text
            assert "# TYPE repro_campaign_jobs gauge" in text
            assert "repro_server_polls" in text

            # /api/campaigns: one settled campaign.
            status, doc = _get_json(srv.url + "/api/campaigns")
            assert status == 200
            (campaign,) = doc["campaigns"]
            assert campaign["id"] == cid
            assert campaign["cells"] == campaign["settled"] == 3
            assert campaign["settled_fraction"] == 1.0
            assert campaign["counts"] == {"reached": 3}
            assert campaign["alerts_firing"] == 0

            # /api/campaigns/<id>/jobs: the monitor table as data.
            status, doc = _get_json(f"{srv.url}/api/campaigns/{cid}/jobs")
            assert status == 200
            jobs = doc["jobs"]
            assert [(j["benchmark"], j["seed"], j["status"]) for j in jobs] \
                == [("fake_benchmark", s, "reached") for s in range(3)]
            assert all(j["quality"] is not None for j in jobs)

            # /api/runs/<id>/<benchmark>/<seed>/series: header-backed.
            status, doc = _get_json(
                f"{srv.url}/api/runs/{cid}/fake_benchmark/1/series")
            assert status == 200
            assert doc["run"] == f"{cid}/fake_benchmark/1"
            assert doc["quality"] is not None

            # /api/alerts: a healthy finished campaign fires nothing.
            status, doc = _get_json(srv.url + "/api/alerts")
            assert status == 200
            assert doc["firing"] == []
            assert isinstance(doc["recent"], list)

            # The index lists every endpoint; junk paths 404 as JSON.
            status, doc = _get_json(srv.url + "/")
            assert status == 200 and "/metrics" in doc["endpoints"]
            req = urllib.request.Request(srv.url + "/api/nope")
            try:
                urllib.request.urlopen(req, timeout=10.0)
                raise AssertionError("expected 404")
            except urllib.error.HTTPError as err:
                assert err.code == 404
                assert "error" in json.loads(err.read().decode())

    def test_unknown_campaign_and_run_404(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        with _Server(tmp_path, clock) as srv:
            for path in (f"/api/campaigns/ghost/jobs",
                         f"/api/runs/{tmp_path.name}/ghost/9/series"):
                try:
                    urllib.request.urlopen(srv.url + path, timeout=10.0)
                    raise AssertionError("expected 404")
                except urllib.error.HTTPError as err:
                    assert err.code == 404

    def test_sse_streams_campaign_events(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        with _Server(tmp_path, clock) as srv:
            # Prime the ring so the stream has history to replay.
            srv.refresh(force=True)
            req = urllib.request.Request(srv.url + "/events")
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                assert "text/event-stream" in resp.headers["Content-Type"]
                raw = resp.read(4096).decode("utf-8")
            frames = [f for f in raw.split("\n\n") if f.startswith("id:")]
            assert frames
            first = frames[0].split("\n")
            assert first[0] == "id: 1"
            data = json.loads(first[2][len("data: "):])
            assert data["campaign"] == tmp_path.name
            assert "name" in data and "time_s" in data


class TestZeroReread:
    def test_scrapes_never_reread_consumed_bytes(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        stream_bytes = sum(p.stat().st_size
                           for p in (tmp_path / "events").glob("*.jsonl"))
        srv = ObservabilityServer(tmp_path, clock=clock.now, min_refresh_s=0.0)
        try:
            first = srv.metrics_text()
            state = srv.campaigns[tmp_path.name]
            assert state.tailer.consumed_bytes == stream_bytes
            polls_before = state.tailer._cursors and max(
                c.polls for c in state.tailer._cursors.values())
            for _ in range(10):
                clock.advance(1.0)
                srv.metrics_text()
            # Ten more scrapes: every cursor polled again, zero new bytes.
            assert state.tailer.consumed_bytes == stream_bytes
            assert all(c.polls > polls_before
                       for c in state.tailer._cursors.values())
            assert f'repro_server_consumed_bytes_{tmp_path.name}' in first
        finally:
            srv.close()

    def test_refresh_is_coalesced_under_min_refresh(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        srv = ObservabilityServer(tmp_path, clock=clock.now, min_refresh_s=5.0)
        try:
            srv.refresh()
            state = srv.campaigns[tmp_path.name]
            polls = state.tailer._cursors and max(
                c.polls for c in state.tailer._cursors.values())
            for _ in range(10):
                srv.refresh()  # same fake instant: all coalesced away
            assert max(c.polls
                       for c in state.tailer._cursors.values()) == polls
        finally:
            srv.close()

    def test_direct_payloads_without_http(self, tmp_path):
        """The payload layer works standalone (CLI smoke path)."""
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        srv = ObservabilityServer(tmp_path, clock=clock.now, min_refresh_s=0.0,
                                  write_alerts=False)
        try:
            assert srv.campaigns_payload()[0]["counts"] == {"reached": 3}
            assert srv.jobs_payload(tmp_path.name) is not None
            assert srv.jobs_payload("ghost") is None
            assert srv.alerts_payload()["firing"] == []
            assert not (tmp_path / "alerts.jsonl").exists()
        finally:
            srv.close()
