"""The campaign engine: supervision, resume, scoring — on fakes, no real time.

Every test drives the in-process sequential executor with an injectable
benchmark factory, a FakeClock, and a recording sleeper, so retry pacing
and wall-clock accounting are assertable exactly.
"""

import pytest

from repro.core.timing import FakeClock
from repro.exec import (
    CampaignSpec,
    RESEED_STRIDE,
    RetryPolicy,
    SequentialExecutor,
    run_campaign,
)

from ..core.fakes import FAKE_SPEC, FakeBenchmark

SPECS = {"fake_benchmark": FAKE_SPEC}


class FlakyBenchmark(FakeBenchmark):
    """Raises on the first ``failures`` session creations, then behaves."""

    def __init__(self, failures, clock=None, epoch_cost_s=1.0):
        super().__init__(clock=clock, epoch_cost_s=epoch_cost_s)
        self.failures = failures
        self.calls = 0

    def create_session(self, seed, hyperparameters):
        self.calls += 1
        if self.calls <= self.failures:
            raise ValueError(f"injected fault #{self.calls}")
        return super().create_session(seed, hyperparameters)


class KillSwitchBenchmark(FakeBenchmark):
    """Simulates the process dying mid-campaign (kill -9, not a RunFailure)."""

    def __init__(self, kill_on_session, clock=None, epoch_cost_s=1.0):
        super().__init__(clock=clock, epoch_cost_s=epoch_cost_s)
        self.kill_on_session = kill_on_session
        self.sessions = 0

    def create_session(self, seed, hyperparameters):
        self.sessions += 1
        if self.sessions == self.kill_on_session:
            raise KeyboardInterrupt("campaign killed mid-flight")
        return super().create_session(seed, hyperparameters)


def _campaign(benchmark, spec, *, policy=None, journal_dir=None, resume=False,
              sleeps=None):
    clock = benchmark.clock
    return run_campaign(
        spec,
        executor=SequentialExecutor(benchmark_factory=lambda name: benchmark,
                                    clock=clock),
        benchmark_specs=SPECS,
        policy=policy or RetryPolicy(),
        journal_dir=journal_dir,
        resume=resume,
        sleeper=(sleeps.append if sleeps is not None else (lambda s: None)),
        wall_clock=clock.now,
    )


class TestRetryPolicy:
    def test_capped_exponential_backoff(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.05, backoff_cap_s=2.0)
        delays = [policy.delay_s(a) for a in range(1, 9)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)


class TestSupervision:
    def test_fault_retried_with_backoff_and_reseeded_stream(self):
        sleeps = []
        bench = FakeBenchmark(clock=FakeClock())
        flaky = FlakyBenchmark(failures=2, clock=bench.clock)
        out = _campaign(flaky, CampaignSpec(benchmarks=("fake_benchmark",), seeds=1),
                        policy=RetryPolicy(max_retries=3), sleeps=sleeps)
        assert out.ok
        assert out.summary.executed == 3          # 1 cell, 3 attempts
        assert out.summary.retries == 2
        assert out.summary.faults == 0            # recovered, not terminal
        assert sleeps == [0.05, 0.1]              # capped exponential backoff
        record = out.journal.jobs["fake_benchmark/0"]
        assert record.status == "reached"
        assert record.attempts == 3
        assert record.run_seed == 0 + 2 * RESEED_STRIDE  # reseeded RNG stream
        assert record.backoffs_s == [0.05, 0.1]
        assert out.scheduler_metrics["campaign_retries"]["value"] == 2

    def test_retries_exhausted_is_a_terminal_fault(self):
        sleeps = []
        flaky = FlakyBenchmark(failures=10, clock=FakeClock())
        out = _campaign(flaky, CampaignSpec(benchmarks=("fake_benchmark",), seeds=1),
                        policy=RetryPolicy(max_retries=2), sleeps=sleeps)
        assert not out.ok
        assert out.summary.executed == 3          # initial + 2 retries
        assert out.summary.retries == 2
        assert out.summary.faults == 1
        record = out.journal.jobs["fake_benchmark/0"]
        assert record.status == "fault"
        assert "injected fault #3" in record.error
        assert out.unscored == {
            "fake_benchmark": "1 cell(s) failed without a result"}

    def test_quality_miss_is_never_retried(self):
        sleeps = []
        bench = FakeBenchmark(clock=FakeClock())
        out = _campaign(
            bench,
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=1,
                         overrides={"learning_speed": 0.0}, max_epochs=4),
            policy=RetryPolicy(max_retries=5), sleeps=sleeps,
        )
        assert not out.ok
        assert out.summary.executed == 1          # one attempt, no retries
        assert out.summary.retries == 0
        assert out.summary.quality_misses == 1
        assert sleeps == []
        record = out.journal.jobs["fake_benchmark/0"]
        assert record.status == "quality_miss"
        assert record.attempts == 1
        assert "missed the quality target" in out.unscored["fake_benchmark"]

    def test_timeout_aborts_cleanly_and_is_not_retried(self):
        sleeps = []
        bench = FakeBenchmark(clock=FakeClock(), epoch_cost_s=1.0)
        out = _campaign(
            bench,
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=1,
                         overrides={"learning_speed": 0.0}, timeout_s=3.5),
            policy=RetryPolicy(max_retries=5), sleeps=sleeps,
        )
        assert out.summary.timeouts == 1
        assert out.summary.retries == 0
        assert sleeps == []
        record = out.journal.jobs["fake_benchmark/0"]
        assert record.status == "timeout"
        assert "RunTimeout" in record.error
        assert out.scheduler_metrics["campaign_timeouts"]["value"] == 1


class TestCampaignResults:
    def test_default_seed_count_scores_with_the_322_rule(self, tmp_path):
        bench = FakeBenchmark(clock=FakeClock())
        out = _campaign(bench, CampaignSpec(benchmarks=("fake_benchmark",)),
                        journal_dir=tmp_path)
        assert out.ok
        assert out.summary.total_cells == FAKE_SPEC.required_runs
        assert out.scores["fake_benchmark"].num_runs == FAKE_SPEC.required_runs
        assert out.submission is not None
        assert len(out.submission.runs["fake_benchmark"]) == FAKE_SPEC.required_runs

    def test_speedup_accounting(self):
        bench = FakeBenchmark(clock=FakeClock(), epoch_cost_s=1.0)
        out = _campaign(bench, CampaignSpec(benchmarks=("fake_benchmark",), seeds=3))
        # Sequential on a shared fake clock: wall >= sum of timed regions.
        assert out.summary.total_ttt_s > 0
        assert out.summary.wall_clock_s >= out.summary.total_ttt_s
        assert 0 < out.summary.speedup <= 1.0

    def test_merged_telemetry_has_one_pid_row_per_cell(self):
        bench = FakeBenchmark(clock=FakeClock())
        out = _campaign(bench, CampaignSpec(benchmarks=("fake_benchmark",), seeds=3))
        pids = {e["pid"] for e in out.telemetry.trace_events}
        assert pids == {0, 1, 2}
        # Worker metrics merged parent-side: epochs from all runs pooled.
        assert out.telemetry.metrics["epochs"]["value"] == sum(
            r.epochs for r in out.runs_by_benchmark["fake_benchmark"])

    def test_bench_payload_shape(self):
        bench = FakeBenchmark(clock=FakeClock())
        out = _campaign(bench, CampaignSpec(benchmarks=("fake_benchmark",), seeds=3))
        payload = out.bench_payload()
        assert payload["schema"] == "repro-campaign-bench/1"
        assert payload["total_cells"] == 3
        assert set(payload["jobs"]) == {f"fake_benchmark/{s}" for s in range(3)}


class TestResume:
    def test_killed_campaign_resumes_only_remaining_cells(self, tmp_path):
        clock = FakeClock()
        killer = KillSwitchBenchmark(kill_on_session=3, clock=clock)
        spec = CampaignSpec(benchmarks=("fake_benchmark",), seeds=5)
        with pytest.raises(KeyboardInterrupt):
            _campaign(killer, spec, journal_dir=tmp_path)

        # The journal survived the kill with exactly the completed cells.
        from repro.exec import CampaignJournal

        journal = CampaignJournal.load(tmp_path)
        assert journal.completed_cells() == {("fake_benchmark", 0),
                                             ("fake_benchmark", 1)}

        healthy = FakeBenchmark(clock=clock)
        out = _campaign(healthy, spec, journal_dir=tmp_path, resume=True)
        assert out.ok
        assert out.summary.skipped_resumed == 2
        assert out.summary.executed == 3          # only the remainder ran
        assert out.summary.total_cells == 5
        assert out.scheduler_metrics["campaign_cells_resumed"]["value"] == 2
        # All five cells are now terminal in the journal.
        assert {r.seed for r in out.journal.jobs.values()
                if r.status == "reached"} == set(range(5))

    def test_resumed_campaign_matches_uninterrupted_run(self, tmp_path):
        spec = CampaignSpec(benchmarks=("fake_benchmark",), seeds=5)
        clock_a = FakeClock()
        killer = KillSwitchBenchmark(kill_on_session=4, clock=clock_a)
        with pytest.raises(KeyboardInterrupt):
            _campaign(killer, spec, journal_dir=tmp_path / "a")
        resumed = _campaign(FakeBenchmark(clock=clock_a), spec,
                            journal_dir=tmp_path / "a", resume=True)

        fresh = _campaign(FakeBenchmark(clock=FakeClock()), spec,
                          journal_dir=tmp_path / "b")
        a = resumed.runs_by_benchmark["fake_benchmark"]
        b = fresh.runs_by_benchmark["fake_benchmark"]
        assert [(r.seed, r.quality, r.epochs) for r in a] == \
               [(r.seed, r.quality, r.epochs) for r in b]
        assert resumed.scores["fake_benchmark"].mean_epochs == \
               fresh.scores["fake_benchmark"].mean_epochs

    def test_resume_requires_a_journal_directory(self):
        bench = FakeBenchmark(clock=FakeClock())
        with pytest.raises(ValueError, match="journal directory"):
            _campaign(bench, CampaignSpec(benchmarks=("fake_benchmark",), seeds=1),
                      resume=True)

    def test_resume_reschedules_faulted_cells(self, tmp_path):
        spec = CampaignSpec(benchmarks=("fake_benchmark",), seeds=2)
        clock = FakeClock()
        flaky = FlakyBenchmark(failures=10, clock=clock)
        first = _campaign(flaky, spec, journal_dir=tmp_path,
                          policy=RetryPolicy(max_retries=1))
        assert first.summary.faults >= 1

        healthy = FakeBenchmark(clock=clock)
        second = _campaign(healthy, spec, journal_dir=tmp_path, resume=True)
        assert second.ok
        assert second.summary.skipped_resumed == 0  # faults are rescheduled
        assert second.summary.executed == 2
