"""The campaign monitor: file-built views, deterministic under FakeClock."""

from repro.core.timing import FakeClock
from repro.exec import CampaignSpec, RetryPolicy, SequentialExecutor, run_campaign
from repro.telemetry import (
    Heartbeat,
    build_view,
    load_monitor_view,
    read_events,
    render_job_table,
    render_monitor_view,
)

from ..core.fakes import FAKE_SPEC, FakeBenchmark

SPECS = {"fake_benchmark": FAKE_SPEC}


def _run_campaign(tmp_path, clock, seeds=3):
    benchmark = FakeBenchmark(clock=clock)
    return run_campaign(
        CampaignSpec(benchmarks=("fake_benchmark",), seeds=seeds),
        executor=SequentialExecutor(benchmark_factory=lambda name: benchmark,
                                    clock=clock, events_clock=clock.now),
        benchmark_specs=SPECS,
        policy=RetryPolicy(),
        journal_dir=tmp_path,
        sleeper=lambda s: None,
        wall_clock=clock.now,
        event_clock=clock.now,
    )


class TestCampaignStreams:
    def test_campaign_writes_event_and_heartbeat_files(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        events_dir = tmp_path / "events"
        names = sorted(p.name for p in events_dir.glob("*.jsonl"))
        assert names == ["campaign.jsonl"] + [
            f"fake_benchmark_seed{s}.jsonl" for s in range(3)]
        campaign_events = read_events(events_dir / "campaign.jsonl")
        kinds = [e.name for e in campaign_events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_stop"
        assert kinds.count("job_finished") == 3
        job_events = read_events(events_dir / "fake_benchmark_seed1.jsonl")
        job_kinds = [e.name for e in job_events]
        # The stream opens with its identity record, then the run lifecycle.
        assert job_kinds[0] == "job_start"
        assert job_events[0].args["campaign"] == tmp_path.name
        assert job_kinds[1] == "run_start"
        assert job_kinds[-1] == "run_stop"
        assert "epoch" in job_kinds and "eval" in job_kinds
        # Worker events are stamped with the job ordinal and the fake clock.
        assert {e.pid for e in job_events} == {1}
        assert all(e.time_s >= 1000.0 for e in job_events)
        beats = sorted(p.name for p in (tmp_path / "heartbeats").glob("*.json"))
        assert beats == [f"fake_benchmark_seed{s}.json" for s in range(3)]

    def test_view_of_finished_campaign_is_deterministic(self, tmp_path):
        clock = FakeClock(start=1000.0)
        _run_campaign(tmp_path, clock)
        view = load_monitor_view(tmp_path, now_s=clock.now())
        assert len(view.jobs) == 3
        assert all(j.status == "reached" for j in view.jobs)
        assert view.settled and not view.stalled_jobs
        assert view.counts() == {"reached": 3}
        assert view.eta_s() is None  # nothing left to estimate
        # Built purely from files: a second load renders byte-identically.
        again = load_monitor_view(tmp_path, now_s=clock.now())
        assert render_monitor_view(view) == render_monitor_view(again)
        rendered = render_monitor_view(view)
        assert "fake_benchmark/0" in rendered
        assert "reached=3" in rendered
        assert "recent events" in rendered

    def test_monitor_needs_no_running_campaign(self, tmp_path):
        view = load_monitor_view(tmp_path, now_s=0.0)
        assert view.jobs == [] and view.settled


class TestBuildView:
    def test_pending_cells_come_from_the_plan(self):
        view = build_view(
            job_records={"fake/0": {"status": "reached", "attempts": 1,
                                    "quality": 0.9, "epochs": 4,
                                    "time_to_train_s": 4.0}},
            planned_cells=[("fake", 0), ("fake", 1), ("fake", 2)],
            now_s=100.0,
        )
        assert [(j.key, j.status) for j in view.jobs] == [
            ("fake/0", "reached"), ("fake/1", "pending"), ("fake/2", "pending")]
        # ETA: 2 cells left x 4.0s mean finished TTT.
        assert view.eta_s() == 8.0
        assert not view.settled

    def test_fresh_running_heartbeat_marks_running(self):
        beat = Heartbeat(pid=1, benchmark="fake", seed=1, time_s=95.0,
                         epoch=3, step=96.0, quality=0.4)
        view = build_view(job_records={}, planned_cells=[("fake", 1)],
                          heartbeats={"fake/1": beat}, now_s=100.0,
                          stall_after_s=30.0)
        job = view.jobs[0]
        assert job.status == "running" and not job.stalled
        assert (job.epoch, job.step, job.quality) == (3, 96.0, 0.4)
        assert job.heartbeat_age_s == 5.0
        assert job.attempts == 1  # beat.attempt 0 -> one attempt in flight

    def test_stale_heartbeat_marks_stalled(self):
        beat = Heartbeat(pid=0, benchmark="fake", seed=0, time_s=10.0)
        view = build_view(job_records={}, planned_cells=[("fake", 0)],
                          heartbeats={"fake/0": beat}, now_s=100.0,
                          stall_after_s=30.0)
        job = view.jobs[0]
        assert job.status == "stalled" and job.stalled
        assert view.stalled_jobs == [job]
        rendered = render_monitor_view(view)
        assert "STALL" in rendered and "STALLED" in render_job_table(view.jobs)

    def test_terminal_heartbeat_defers_to_journal(self):
        # The final beat a worker writes carries the outcome status, so a
        # finished job must not read as running however fresh the file is.
        beat = Heartbeat(pid=0, benchmark="fake", seed=0, time_s=99.0,
                         status="reached", quality=0.9)
        view = build_view(
            job_records={"fake/0": {"status": "reached", "attempts": 1,
                                    "quality": 0.9, "epochs": 4,
                                    "time_to_train_s": 4.0}},
            heartbeats={"fake/0": beat}, now_s=100.0)
        assert view.jobs[0].status == "reached"
        assert view.settled

    def test_retry_in_flight_overrides_faulted_record(self):
        # Journal says fault, but a fresh running heartbeat with a higher
        # attempt means the retry is live right now.
        beat = Heartbeat(pid=0, benchmark="fake", seed=0, time_s=99.0,
                         attempt=1, epoch=2)
        view = build_view(
            job_records={"fake/0": {"status": "fault", "attempts": 1,
                                    "error": "ValueError: boom"}},
            heartbeats={"fake/0": beat}, now_s=100.0)
        job = view.jobs[0]
        assert job.status == "running"
        assert job.attempts == 2


class TestProgressAndEtaGuards:
    def test_no_progress_renders_dashes_not_division_errors(self):
        # Fresh campaign, nothing finished: rate and ETA have no data yet.
        view = build_view(job_records={},
                          planned_cells=[("fake", 0), ("fake", 1)],
                          now_s=100.0)
        assert view.completion() == (0, 2, 0.0)
        assert view.rate_cells_per_s() is None
        assert view.eta_s() is None
        rendered = render_monitor_view(view)
        assert "progress 0/2 (0%), rate --" in rendered
        assert "eta ~--s (no finished cell yet)" in rendered

    def test_empty_campaign_renders_without_progress_lines(self):
        view = build_view(job_records={}, planned_cells=[], now_s=0.0)
        assert view.completion() == (0, 0, None)
        rendered = render_monitor_view(view)
        assert "progress" not in rendered and "eta" not in rendered

    def test_zero_duration_records_do_not_divide_by_zero(self):
        # Instant cells (the fake clock never advanced): mean TTT is 0, so
        # the rate is unknowable rather than infinite.
        view = build_view(
            job_records={"fake/0": {"status": "reached", "attempts": 1,
                                    "time_to_train_s": 0.0}},
            planned_cells=[("fake", 0), ("fake", 1)],
            now_s=100.0)
        assert view.rate_cells_per_s() is None
        assert view.eta_s() == 0.0
        render_monitor_view(view)  # must not raise

    def test_partial_progress_reports_rate_and_eta(self):
        view = build_view(
            job_records={"fake/0": {"status": "reached", "attempts": 1,
                                    "time_to_train_s": 4.0}},
            planned_cells=[("fake", 0), ("fake", 1)],
            now_s=100.0)
        settled, total, fraction = view.completion()
        assert (settled, total) == (1, 2) and fraction == 0.5
        assert view.rate_cells_per_s() == 0.25  # 1 cell per 4s TTT
        assert view.eta_s() == 4.0
        rendered = render_monitor_view(view)
        assert "progress 1/2 (50%)" in rendered
        assert "0.25 cells/s" in rendered
