"""Campaign planning and the resume journal."""

import json

import pytest

from repro.core.timing import FakeClock
from repro.core.runner import BenchmarkRunner
from repro.exec import (
    JOURNAL_NAME,
    CampaignJournal,
    CampaignSpec,
    JobRecord,
    JobSpec,
    RESEED_STRIDE,
    plan_campaign,
)

from ..core.fakes import FAKE_SPEC, FakeBenchmark


class TestJobSpec:
    def test_cell_identity_and_key(self):
        job = JobSpec(benchmark="fake_benchmark", seed=3)
        assert job.cell == ("fake_benchmark", 3)
        assert job.key == "fake_benchmark/3"

    def test_first_attempt_runs_under_cell_seed(self):
        assert JobSpec(benchmark="b", seed=7).run_seed == 7

    def test_retry_reseeds_rng_stream(self):
        job = JobSpec(benchmark="b", seed=7)
        r1 = job.retry()
        r2 = r1.retry()
        assert (r1.attempt, r2.attempt) == (1, 2)
        assert r1.cell == r2.cell == job.cell  # identity survives retries
        assert r1.run_seed == 7 + RESEED_STRIDE
        assert r2.run_seed == 7 + 2 * RESEED_STRIDE
        assert len({job.run_seed, r1.run_seed, r2.run_seed}) == 3


class TestPlanning:
    def test_default_seed_count_is_the_322_rule(self):
        plan = plan_campaign(
            CampaignSpec(benchmarks=("fake_benchmark",)),
            {"fake_benchmark": FAKE_SPEC},
        )
        assert plan.seeds_for("fake_benchmark") == list(range(FAKE_SPEC.required_runs))
        assert plan.required == {"fake_benchmark": 5}
        assert plan.warnings == []

    def test_explicit_seeds_below_required_warns(self):
        plan = plan_campaign(
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=3),
            {"fake_benchmark": FAKE_SPEC},
        )
        assert len(plan.jobs) == 3
        assert len(plan.warnings) == 1
        assert "requires 5" in plan.warnings[0]

    def test_explicit_seeds_above_required_is_fine(self):
        plan = plan_campaign(
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=8),
            {"fake_benchmark": FAKE_SPEC},
        )
        assert len(plan.jobs) == 8
        assert plan.warnings == []

    def test_unknown_benchmark_is_a_planning_error(self):
        with pytest.raises(KeyError, match="nope"):
            plan_campaign(CampaignSpec(benchmarks=("nope",)),
                          {"fake_benchmark": FAKE_SPEC})

    def test_overrides_and_limits_reach_every_job(self):
        plan = plan_campaign(
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=2,
                         overrides={"base_lr": 0.5}, timeout_s=9.0),
            {"fake_benchmark": FAKE_SPEC},
        )
        for job in plan.jobs:
            assert dict(job.overrides) == {"base_lr": 0.5}
            assert job.timeout_s == 9.0

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(benchmarks=())

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(benchmarks=("fake_benchmark",), seeds=0)


def _run_result(seed=0):
    clock = FakeClock()
    runner = BenchmarkRunner(clock=clock)
    return runner.run(FakeBenchmark(clock=clock, epoch_cost_s=1.0), seed=seed)


class TestJournal:
    def test_in_memory_journal_has_no_path(self):
        journal = CampaignJournal()
        journal.record(JobRecord(benchmark="fake_benchmark", seed=0, status="reached"))
        assert journal.path is None
        assert journal.jobs["fake_benchmark/0"].status == "reached"

    def test_record_persists_after_every_completion(self, tmp_path):
        journal = CampaignJournal(tmp_path, campaign={"benchmarks": ["fake_benchmark"]})
        journal.record(JobRecord(benchmark="fake_benchmark", seed=0, status="reached"),
                       _run_result(0))
        on_disk = json.loads((tmp_path / JOURNAL_NAME).read_text())
        assert on_disk["version"] == 1
        assert "fake_benchmark/0" in on_disk["jobs"]
        # The per-job result file uses the submission artifact format.
        result_file = tmp_path / on_disk["jobs"]["fake_benchmark/0"]["result_file"]
        assert result_file.read_text().startswith("# repro-run ")

    def test_load_roundtrip_and_result_fidelity(self, tmp_path):
        result = _run_result(2)
        journal = CampaignJournal(tmp_path)
        journal.record(
            JobRecord(benchmark="fake_benchmark", seed=2, status="reached",
                      quality=result.quality, epochs=result.epochs,
                      time_to_train_s=result.time_to_train_s),
            result,
        )
        loaded = CampaignJournal.load(tmp_path)
        assert loaded.completed_cells() == {("fake_benchmark", 2)}
        reloaded = loaded.load_result("fake_benchmark", 2)
        assert reloaded.quality == result.quality
        assert reloaded.epochs == result.epochs
        assert reloaded.time_to_train_s == result.time_to_train_s
        assert reloaded.log_lines == result.log_lines

    def test_terminal_quality_miss_counts_as_done(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.record(JobRecord(benchmark="fake_benchmark", seed=0,
                                 status="quality_miss"))
        journal.record(JobRecord(benchmark="fake_benchmark", seed=1, status="fault"))
        journal.record(JobRecord(benchmark="fake_benchmark", seed=2, status="timeout"))
        # Only terminal *results* are done; faults/timeouts reschedule on resume.
        assert journal.completed_cells() == {("fake_benchmark", 0)}

    def test_loading_absent_journal_is_empty(self, tmp_path):
        journal = CampaignJournal.load(tmp_path)
        assert journal.jobs == {}
        assert journal.completed_cells() == set()

    def test_unsupported_version_rejected(self, tmp_path):
        (tmp_path / JOURNAL_NAME).write_text(json.dumps({"version": 99, "jobs": {}}))
        with pytest.raises(ValueError, match="version"):
            CampaignJournal.load(tmp_path)

    def test_missing_result_file_yields_none(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.record(JobRecord(benchmark="fake_benchmark", seed=0, status="reached",
                                 result_file="jobs/fake_benchmark/seed_0.txt"))
        assert journal.load_result("fake_benchmark", 0) is None
