"""Parallel execution must be bit-identical to sequential execution.

Runs the real ``recommendation`` benchmark (the fastest in the suite)
through both executors: same seeds in, same quality/epochs/log out.
This is the acceptance gate for ``repro campaign --jobs N``.
"""

import json

import pytest

from repro.exec import (
    CampaignSpec,
    MultiprocessExecutor,
    RetryPolicy,
    SequentialExecutor,
    run_campaign,
)

SPEC = CampaignSpec(benchmarks=("recommendation",), seeds=3)


def _logical_log(run):
    """mllog lines minus wall-clock measurements: the deterministic payload.

    Timestamps, per-epoch seconds, and throughput are real elapsed time and
    legitimately vary run to run; everything else — event order, epochs,
    eval qualities, hyperparameters, run status — must match exactly.
    """
    lines = []
    for line in run.log_lines:
        record = json.loads(line.removeprefix(":::MLLOG "))
        record.pop("time_ms", None)
        if record.get("key") == "throughput":
            record["value"] = None
        elif record.get("key") == "tracked_stats" and isinstance(record.get("value"), dict):
            record["value"].pop("epoch_seconds", None)
        lines.append(json.dumps(record, sort_keys=True))
    return tuple(lines)


def _signature(outcome):
    runs = outcome.runs_by_benchmark["recommendation"]
    return sorted((r.seed, r.quality, r.epochs, _logical_log(r)) for r in runs)


@pytest.mark.slow
class TestParallelIdentity:
    def test_two_workers_match_sequential_bit_for_bit(self):
        sequential = run_campaign(SPEC, executor=SequentialExecutor(),
                                  policy=RetryPolicy(max_retries=0))
        parallel = run_campaign(SPEC, executor=MultiprocessExecutor(max_workers=2),
                                policy=RetryPolicy(max_retries=0))
        assert sequential.ok and parallel.ok
        assert _signature(sequential) == _signature(parallel)
        assert parallel.scores["recommendation"].mean_epochs == \
               sequential.scores["recommendation"].mean_epochs
        assert {r.seed: r.quality for r in parallel.submission.runs["recommendation"]} \
            == {r.seed: r.quality for r in sequential.submission.runs["recommendation"]}

    def test_parallel_merges_worker_telemetry(self):
        outcome = run_campaign(SPEC, executor=MultiprocessExecutor(max_workers=2),
                               policy=RetryPolicy(max_retries=0))
        pids = {e["pid"] for e in outcome.telemetry.trace_events}
        assert pids == {0, 1, 2}  # one trace row per seed, merged parent-side

    def test_worker_cap_validated(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(max_workers=0)


class TestProcessesPerJob:
    """Campaign jobs that fork their own worker pools shrink the job slots."""

    def test_effective_workers_divides_budget(self):
        ex = MultiprocessExecutor(max_workers=4, processes_per_job=2)
        assert ex.effective_workers == 2

    def test_floor_is_one(self):
        ex = MultiprocessExecutor(max_workers=2, processes_per_job=8)
        assert ex.effective_workers == 1

    def test_default_is_one_process_per_job(self):
        assert MultiprocessExecutor(max_workers=3).effective_workers == 3

    def test_processes_per_job_validated(self):
        with pytest.raises(ValueError, match="processes_per_job"):
            MultiprocessExecutor(max_workers=2, processes_per_job=0)
