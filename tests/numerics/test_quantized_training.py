"""Quantized training end-to-end: who converges and who cannot (Fig 1 in micro)."""

import numpy as np
import pytest

from repro.framework import Linear, SGD, Tensor
from repro.numerics import QuantizedWeights


def train_quantized(fmt: str, steps: int = 300) -> float:
    """Fit y = xW* with weights stored in ``fmt``; return final MSE."""
    rng = np.random.default_rng(0)
    true_w = rng.normal(size=(4, 8)).astype(np.float32)
    x = rng.normal(size=(256, 8)).astype(np.float32)
    y = x @ true_w.T
    model = Linear(8, 4, np.random.default_rng(1))
    opt = SGD(model.parameters(), lr=0.05)
    qw = QuantizedWeights(model, fmt)
    loss_val = np.inf
    for _ in range(steps):
        pred = model(Tensor(x))
        loss = ((pred - Tensor(y)) ** 2).mean()
        model.zero_grad()
        loss.backward()
        qw.apply_gradients(opt)
        loss_val = float(loss.data)
    return loss_val


class TestQuantizedTrainingConvergence:
    def test_float32_converges(self):
        assert train_quantized("float32") < 1e-3

    def test_fixed8_converges_close_to_float(self):
        """8-bit weights with an fp32 master track full precision."""
        assert train_quantized("fixed8") < 5e-3

    def test_bfloat16_converges(self):
        assert train_quantized("bfloat16") < 5e-3

    def test_ternary_cannot_fit(self):
        """Ternary weights cannot represent the regression target — the
        'never matches full precision' regime of Figure 1."""
        ternary = train_quantized("ternary")
        full = train_quantized("float32")
        assert ternary > 100 * max(full, 1e-6)

    def test_error_ordering(self):
        """Final loss degrades monotonically with coarser formats."""
        losses = {fmt: train_quantized(fmt, steps=200)
                  for fmt in ("float32", "fixed8", "fixed4", "ternary")}
        assert losses["float32"] <= losses["fixed8"] + 1e-6
        assert losses["fixed8"] < losses["fixed4"]
        assert losses["fixed4"] < losses["ternary"]
