"""Numeric-format emulation: exactness, idempotence, error ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.numerics import QuantizedWeights, available_formats, get_format

finite_arrays = arrays(np.float32, (16,), elements=st.floats(-100, 100, width=32))


class TestFormats:
    def test_registry(self):
        names = available_formats()
        assert "float32" in names
        assert "ternary" in names
        with pytest.raises(KeyError):
            get_format("float128")

    def test_float32_identity(self):
        x = np.random.default_rng(0).normal(size=32).astype(np.float32)
        np.testing.assert_array_equal(get_format("float32").quantize(x), x)

    @pytest.mark.parametrize("name", ["bfloat16", "float16", "fixed8", "fixed6", "fixed4", "ternary"])
    def test_idempotent(self, name):
        fmt = get_format(name)
        x = np.random.default_rng(1).normal(size=64).astype(np.float32)
        once = fmt.quantize(x)
        twice = fmt.quantize(once)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    @pytest.mark.parametrize("name", available_formats())
    def test_zero_preserved(self, name):
        fmt = get_format(name)
        np.testing.assert_array_equal(fmt.quantize(np.zeros(8, dtype=np.float32)), 0.0)

    @pytest.mark.parametrize("name", available_formats())
    def test_sign_preserved(self, name):
        fmt = get_format(name)
        x = np.array([-3.0, -1.0, 1.0, 3.0], dtype=np.float32)
        q = fmt.quantize(x)
        assert np.all(np.sign(q) * np.sign(x) >= 0)

    def test_error_ordering_fixed_point(self):
        """More bits => no larger quantization error."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=256).astype(np.float32)
        errors = {}
        for name in ["fixed8", "fixed6", "fixed4"]:
            errors[name] = float(np.abs(get_format(name).quantize(x) - x).mean())
        assert errors["fixed8"] <= errors["fixed6"] <= errors["fixed4"]

    def test_bfloat16_coarser_than_float16(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=256).astype(np.float32)
        e_bf = float(np.abs(get_format("bfloat16").quantize(x) - x).mean())
        e_fp = float(np.abs(get_format("float16").quantize(x) - x).mean())
        assert e_fp <= e_bf

    def test_mantissa_rounding_matches_numpy_float16(self):
        # Our float16 emulation should agree with IEEE half for values in
        # the normal range (we emulate the significand, not subnormals).
        rng = np.random.default_rng(4)
        x = rng.uniform(0.1, 100.0, size=128).astype(np.float32)
        ours = get_format("float16").quantize(x)
        ieee = x.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(ours, ieee, rtol=2e-3)

    def test_ternary_three_levels(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=512).astype(np.float32)
        q = get_format("ternary").quantize(x)
        assert len(np.unique(np.abs(q))) <= 2  # {0, s}

    def test_ternary_thresholds_small_values(self):
        x = np.array([1.0, 0.001, -0.001, -1.0], dtype=np.float32)
        q = get_format("ternary").quantize(x)
        assert q[1] == 0.0 and q[2] == 0.0
        assert q[0] > 0 and q[3] < 0

    def test_fixed_point_level_count(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=4096).astype(np.float32)
        q = get_format("fixed4").quantize(x)
        # 4 bits => at most 2*(2^3 - 1) + 1 = 15 distinct levels.
        assert len(np.unique(q)) <= 15

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_quantization_bounded_by_max(self, x):
        for name in ["fixed8", "fixed4", "ternary"]:
            q = get_format(name).quantize(x)
            assert np.abs(q).max(initial=0.0) <= np.abs(x).max(initial=0.0) * (1 + 1e-5)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_fixed8_relative_error_small(self, x):
        q = get_format("fixed8").quantize(x)
        scale = np.abs(x).max(initial=0.0)
        if scale > 0:
            assert np.abs(q - x).max() <= scale / (2**7 - 1) * 0.5 + 1e-6


class TestQuantizedWeights:
    def _model(self):
        from repro.framework import Linear

        return Linear(4, 3, np.random.default_rng(0))

    def test_float32_is_noop(self):
        from repro.framework import SGD, Tensor

        rng = np.random.default_rng(1)
        m_plain, m_q = self._model(), self._model()
        qw = QuantizedWeights(m_q, "float32")
        opt_plain = SGD(m_plain.parameters(), lr=0.1)
        opt_q = SGD(m_q.parameters(), lr=0.1)
        x = Tensor(rng.normal(size=(8, 4)).astype(np.float32))
        for _ in range(5):
            for m, opt, is_q in ((m_plain, opt_plain, False), (m_q, opt_q, True)):
                loss = (m(x) ** 2).mean()
                m.zero_grad()
                loss.backward()
                if is_q:
                    qw.apply_gradients(opt)
                else:
                    opt.step()
        np.testing.assert_allclose(m_plain.weight.data, m_q.weight.data, atol=1e-7)

    def test_working_weights_are_quantized(self):
        m = self._model()
        QuantizedWeights(m, "ternary")
        uniq = np.unique(np.abs(m.weight.data))
        assert len(uniq) <= 2

    def test_master_retains_precision(self):
        from repro.framework import SGD, Tensor

        m = self._model()
        qw = QuantizedWeights(m, "fixed4")
        opt = SGD(m.parameters(), lr=0.01)
        x = Tensor(np.random.default_rng(2).normal(size=(8, 4)).astype(np.float32))
        loss = (m(x) ** 2).mean()
        loss.backward()
        qw.apply_gradients(opt)
        # Master should differ from the (coarse) working copy.
        master = list(qw.master_state().values())[0]
        assert not np.allclose(master, m.weight.data)
