"""Benchmark suite: specs, registry, session mechanics (fast paths only).

Full train-to-threshold runs live in ``benchmarks/``; here each benchmark
is exercised for structure — data prep, session creation, a short training
step, and a quality evaluation that returns a sane value.
"""

import numpy as np
import pytest

from repro.core.results import REQUIRED_RUNS_BY_AREA
from repro.suite import (
    REGISTRY,
    BenchmarkSpec,
    all_specs,
    create_benchmark,
    table1,
)


class TestRegistry:
    def test_seven_benchmarks(self):
        """Table 1 has exactly 7 rows."""
        assert len(REGISTRY) == 7

    def test_names_match_specs(self):
        for name in REGISTRY:
            bench = create_benchmark(name)
            assert bench.spec.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_benchmark("speech_recognition")

    def test_areas_cover_paper_taxonomy(self):
        areas = {spec.area for spec in all_specs()}
        assert areas == {"vision", "language", "commerce", "research"}

    def test_run_counts_follow_322(self):
        """§3.2.2: vision -> 5 runs; everything else -> 10."""
        for spec in all_specs():
            assert spec.required_runs == REQUIRED_RUNS_BY_AREA[spec.area]

    def test_table1_renders_all(self):
        text = table1()
        for name in REGISTRY:
            assert name in text

    def test_batch_size_always_modifiable_effectively(self):
        # batch_size is the Top500-style scale knob; every benchmark
        # exposes it.
        for spec in all_specs():
            assert "batch_size" in spec.default_hyperparameters


class TestSpecResolution:
    def spec(self) -> BenchmarkSpec:
        return create_benchmark("image_classification").spec

    def test_defaults_returned(self):
        hp = self.spec().resolve_hyperparameters(None)
        assert hp == dict(self.spec().default_hyperparameters)

    def test_override_applied(self):
        hp = self.spec().resolve_hyperparameters({"batch_size": 128})
        assert hp["batch_size"] == 128

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            self.spec().resolve_hyperparameters({"nonsense": 1})

    def test_defaults_not_mutated(self):
        spec = self.spec()
        hp = spec.resolve_hyperparameters({"batch_size": 999})
        assert spec.default_hyperparameters["batch_size"] != 999
        del hp


def _short_session(name, **hp_overrides):
    """Create a benchmark session with any speed-reducing overrides."""
    bench = create_benchmark(name)
    bench.prepare_data()
    hp = bench.spec.resolve_hyperparameters(hp_overrides or None)
    return bench, bench.create_session(seed=0, hyperparameters=hp)


class TestSessionMechanics:
    def test_session_requires_prepared_data(self):
        bench = create_benchmark("image_classification")
        with pytest.raises(RuntimeError):
            bench.create_session(0, bench.spec.resolve_hyperparameters(None))

    def test_image_classification_epoch_and_eval(self):
        bench, sess = _short_session("image_classification")
        q0 = sess.evaluate()
        assert 0.0 <= q0 <= 1.0
        sess.run_epoch(0)
        q1 = sess.evaluate()
        assert 0.0 <= q1 <= 1.0
        assert q1 > q0  # one epoch moves an untrained model off chance

    def test_image_classification_lars_option(self):
        bench, sess = _short_session("image_classification", optimizer="lars")
        from repro.framework import LARS

        assert isinstance(sess.optimizer, LARS)

    def test_image_classification_bad_optimizer(self):
        bench = create_benchmark("image_classification")
        bench.prepare_data()
        hp = bench.spec.resolve_hyperparameters({"optimizer": "adagrad"})
        with pytest.raises(ValueError):
            bench.create_session(0, hp)

    def test_object_detection_eval_range(self):
        bench, sess = _short_session("object_detection")
        q = sess.evaluate()
        assert 0.0 <= q <= 1.0

    def test_instance_segmentation_details(self):
        bench, sess = _short_session("instance_segmentation")
        q = sess.evaluate()
        details = sess.eval_details()
        assert set(details) == {"box_ap", "mask_ap"}
        assert q == pytest.approx(
            min(details["box_ap"] / 0.50, details["mask_ap"] / 0.45), abs=1e-9
        )

    def test_translation_sessions_evaluate_bleu(self):
        for name in ("translation_recurrent", "translation_transformer"):
            bench, sess = _short_session(name)
            q = sess.evaluate()
            assert 0.0 <= q <= 100.0

    def test_recommendation_epoch_improves(self):
        bench, sess = _short_session("recommendation")
        q0 = sess.evaluate()
        sess.run_epoch(0)
        sess.run_epoch(1)
        assert sess.evaluate() > q0
        assert "ndcg@10" in sess.eval_details()

    def test_reinforcement_session(self):
        bench, sess = _short_session(
            "reinforcement",
            games_per_iteration=1,
            mcts_simulations=4,
            train_steps_per_iteration=2,
        )
        q0 = sess.evaluate()
        assert 0.0 <= q0 <= 1.0
        sess.run_epoch(0)
        assert len(sess.replay) > 0
        assert 0.0 <= sess.evaluate() <= 1.0

    def test_reinforcement_reference_masks_sane(self):
        bench = create_benchmark("reinforcement")
        bench.prepare_data()
        # Every reference move is within its position's plausible-legal mask.
        idx = np.arange(len(bench.ref_moves))
        assert bench.ref_legal_masks[idx, bench.ref_moves].all()

    def test_same_seed_same_first_epoch(self):
        b1 = create_benchmark("recommendation")
        b1.prepare_data()
        hp = b1.spec.resolve_hyperparameters(None)
        s1 = b1.create_session(7, hp)
        s2 = b1.create_session(7, hp)
        s1.run_epoch(0)
        s2.run_epoch(0)
        assert s1.evaluate() == pytest.approx(s2.evaluate())

    def test_different_seeds_differ(self):
        b1 = create_benchmark("recommendation")
        b1.prepare_data()
        hp = b1.spec.resolve_hyperparameters(None)
        s1 = b1.create_session(1, hp)
        s2 = b1.create_session(2, hp)
        s1.run_epoch(0)
        s2.run_epoch(0)
        assert s1.evaluate() != pytest.approx(s2.evaluate())


class TestSpecInvariants:
    def test_modifiable_subset_of_defaults(self):
        for spec in all_specs():
            assert spec.modifiable_hyperparameters <= set(spec.default_hyperparameters), spec.name

    def test_thresholds_positive(self):
        for spec in all_specs():
            assert spec.quality_threshold > 0

    def test_max_epochs_reasonable(self):
        for spec in all_specs():
            assert 1 <= spec.max_epochs <= 100

    def test_prepare_data_idempotent(self):
        bench = create_benchmark("recommendation")
        bench.prepare_data()
        first = bench.data
        bench.prepare_data()
        assert bench.data is first  # cached, not regenerated

    def test_registry_names_are_specs_names(self):
        for name in REGISTRY:
            assert create_benchmark(name).spec.name == name


class TestRecommendationDataParallel:
    """The dp_workers hyperparameter routes training through ShardedDataParallel."""

    def test_dp_session_trains_and_algorithms_agree(self):
        states = []
        for algo in ("flat", "ring"):
            bench, sess = _short_session(
                "recommendation", dp_workers=2, dp_algorithm=algo)
            try:
                sess.run_epoch(0)
                assert sess.evaluate() >= 0.0
                states.append({k: v.copy()
                               for k, v in sess.model.state_dict().items()})
            finally:
                sess.close()
        for name in states[0]:
            np.testing.assert_array_equal(states[0][name], states[1][name])

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            _short_session("recommendation", dp_workers=3)  # 256 % 3 != 0
