"""Additional hypothesis property tests on the autograd core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.framework import Tensor, functional as F

mats = arrays(np.float64, (3, 4), elements=st.floats(-5, 5))
vecs = arrays(np.float64, (6,), elements=st.floats(-5, 5))


class TestLinearityProperties:
    @given(mats, mats, st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_gradient_linearity(self, a_data, b_data, alpha, beta):
        """grad of (alpha*f + beta*g) == alpha*grad f + beta*grad g."""
        x1 = Tensor(a_data.copy(), requires_grad=True)
        (x1 * alpha + x1 * beta).sum().backward()
        x2 = Tensor(a_data.copy(), requires_grad=True)
        (x2 * (alpha + beta)).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-9, atol=1e-12)

    @given(mats)
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_equals_whole(self, data):
        """Gradient of sum is invariant to how the sum is decomposed."""
        x1 = Tensor(data.copy(), requires_grad=True)
        (x1[:1].sum() + x1[1:].sum()).backward()
        x2 = Tensor(data.copy(), requires_grad=True)
        x2.sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad)

    @given(vecs)
    @settings(max_examples=40, deadline=None)
    def test_chain_rule_scale(self, data):
        """d/dx sum(2 * relu(x)) == 2 * d/dx sum(relu(x))."""
        x1 = Tensor(data.copy(), requires_grad=True)
        (x1.relu() * 2.0).sum().backward()
        x2 = Tensor(data.copy(), requires_grad=True)
        x2.relu().sum().backward()
        np.testing.assert_allclose(x1.grad, 2.0 * x2.grad)


class TestNumericalIdentities:
    @given(mats)
    @settings(max_examples=40, deadline=None)
    def test_softmax_argmax_preserved(self, data):
        # Near-ties can collapse to exact equality inside softmax (the
        # difference underflows after exp), legitimately moving argmax to
        # an equal-valued earlier index — only test rows with a clear gap.
        top2 = np.sort(data, axis=-1)[:, -2:]
        clear = (top2[:, 1] - top2[:, 0]) > 1e-6
        s = F.softmax(Tensor(data)).data
        np.testing.assert_array_equal(
            s[clear].argmax(axis=-1), data[clear].argmax(axis=-1)
        )

    @given(vecs)
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_symmetry(self, data):
        s_pos = Tensor(data.copy()).sigmoid().data
        s_neg = Tensor(-data.copy()).sigmoid().data
        np.testing.assert_allclose(s_pos + s_neg, 1.0, atol=1e-12)

    @given(vecs)
    @settings(max_examples=40, deadline=None)
    def test_tanh_is_scaled_sigmoid(self, data):
        t = Tensor(data.copy()).tanh().data
        s = Tensor(2.0 * data.copy()).sigmoid().data
        np.testing.assert_allclose(t, 2.0 * s - 1.0, atol=1e-9)

    @given(mats)
    @settings(max_examples=40, deadline=None)
    def test_logsumexp_consistency(self, data):
        """exp(log_softmax) sums to one even for extreme inputs."""
        lp = F.log_softmax(Tensor(data * 100.0)).data
        np.testing.assert_allclose(np.exp(lp).sum(axis=-1), 1.0, atol=1e-9)

    @given(st.floats(0.1, 10.0), vecs)
    @settings(max_examples=40, deadline=None)
    def test_bce_shift_invariance_of_gradient_sign(self, scale, data):
        """BCE gradient sign equals sign(sigmoid(x) - t)."""
        logits = Tensor(data.copy() * scale, requires_grad=True)
        targets = (data > 0).astype(np.float64)
        F.binary_cross_entropy_with_logits(logits, targets).backward()
        sig = 1 / (1 + np.exp(-data * scale))
        np.testing.assert_array_equal(np.sign(logits.grad), np.sign((sig - targets) / len(data)))


class TestStructuralOps:
    @given(mats, st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_concat_split_roundtrip(self, data, axis):
        x = Tensor(data.copy(), requires_grad=True)
        parts = [x[:, :2], x[:, 2:]] if axis == 1 else [x[:2], x[2:]]
        recombined = Tensor.concat(parts, axis=axis)
        np.testing.assert_allclose(recombined.data, data)
        recombined.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(mats)
    @settings(max_examples=40, deadline=None)
    def test_double_transpose_identity(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        y = x.T.T
        np.testing.assert_array_equal(y.data, data)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays(np.float64, (2, 3, 4), elements=st.floats(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_matmul_associative_shapes(self, data):
        a = Tensor(data)
        b = Tensor(np.ones((4, 2)))
        c = Tensor(np.ones((2, 5)))
        left = ((a @ b) @ c).data
        right = (a @ (b @ c)).data
        np.testing.assert_allclose(left, right, rtol=1e-9)
