"""Layer behaviour: shapes, train/eval semantics, state dicts, gradients."""

import numpy as np
import pytest

from repro.framework import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)
from tests.helpers import check_gradient

RNG = np.random.default_rng(11)


class TestLinear:
    def test_shapes(self):
        layer = Linear(8, 3, RNG)
        out = layer(Tensor(RNG.normal(size=(5, 8)).astype(np.float32)))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_3d_input(self):
        layer = Linear(6, 4, RNG)
        out = layer(Tensor(RNG.normal(size=(2, 5, 6)).astype(np.float32)))
        assert out.shape == (2, 5, 4)

    def test_gradient_through_layer(self):
        layer = Linear(4, 3, RNG)
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        check_gradient(lambda x: layer(x), RNG.normal(size=(2, 4)))


class TestBatchNorm:
    def test_normalizes_batch(self):
        bn = BatchNorm2d(3)
        x = Tensor(RNG.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated_in_train(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 3, 3)) * 10.0)
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(RNG.normal(loc=2.0, size=(32, 2, 2, 2))))
        bn.eval()
        x = Tensor(np.full((1, 2, 2, 2), 2.0))
        out = bn(x)
        np.testing.assert_allclose(out.data, 0.0, atol=0.3)

    def test_eval_no_stat_update(self):
        bn = BatchNorm2d(2).eval()
        before = bn.running_mean.copy()
        bn(Tensor(RNG.normal(loc=9.0, size=(8, 2, 2, 2))))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_bn1d(self):
        bn = BatchNorm1d(4)
        out = bn(Tensor(RNG.normal(loc=3.0, size=(32, 4))))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-6)

    def test_gamma_beta_trainable(self):
        bn = BatchNorm2d(2)
        x = Tensor(RNG.normal(size=(4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestLayerNorm:
    def test_normalizes_features(self):
        ln = LayerNorm(8)
        x = Tensor(RNG.normal(loc=4.0, scale=2.0, size=(5, 8)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)

    def test_gradient(self):
        ln = LayerNorm(6)
        ln.gamma.data = ln.gamma.data.astype(np.float64)
        ln.beta.data = ln.beta.data.astype(np.float64)
        check_gradient(lambda x: ln(x), RNG.normal(size=(3, 6)))

    def test_independent_of_batch(self):
        # LayerNorm of a row must not depend on the other rows.
        ln = LayerNorm(5)
        x = RNG.normal(size=(4, 5))
        full = ln(Tensor(x)).data
        solo = ln(Tensor(x[1:2])).data
        np.testing.assert_allclose(full[1:2], solo, atol=1e-7)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([1, 5, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_2d_ids(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_gradient_scatters(self):
        emb = Embedding(5, 3, RNG)
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2.0)
        np.testing.assert_allclose(emb.weight.grad[4], 1.0)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))


class TestDropoutLayer:
    def test_train_vs_eval(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        train_out = drop(x)
        assert (train_out.data == 0).sum() > 1000
        drop.eval()
        eval_out = drop(x)
        np.testing.assert_allclose(eval_out.data, 1.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG)


class TestModuleSystem:
    def _net(self):
        rng = np.random.default_rng(0)
        return Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))

    def test_parameters_discovered(self):
        net = self._net()
        assert len(net.parameters()) == 4  # 2 weights + 2 biases

    def test_named_parameters_stable_names(self):
        names = [n for n, _ in self._net().named_parameters()]
        assert names == ["layers.0.weight", "layers.0.bias", "layers.2.weight", "layers.2.bias"]

    def test_state_dict_roundtrip(self):
        net1, net2 = self._net(), self._net()
        net2.layers[0].weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        np.testing.assert_allclose(net1(x).data, net2(x).data)

    def test_state_dict_missing_key_raises(self):
        net = self._net()
        state = net.state_dict()
        del state["layers.0.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        net = self._net()
        state = net.state_dict()
        state["layers.0.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_zero_grad(self):
        net = self._net()
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        net(x).sum().backward()
        assert net.parameters()[0].grad is not None
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_num_parameters(self):
        net = self._net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_nested_module_discovery(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.block = Sequential(Linear(2, 2, rng))
                self.head = Linear(2, 1, rng)
                self.scale = Parameter(np.ones(1, dtype=np.float32))

        names = {n for n, _ in Outer().named_parameters()}
        assert "block.layers.0.weight" in names
        assert "head.weight" in names
        assert "scale" in names

    def test_flatten(self):
        out = Flatten()(Tensor(RNG.normal(size=(2, 3, 4))))
        assert out.shape == (2, 12)

    def test_conv2d_layer(self):
        conv = Conv2d(3, 5, 3, RNG, stride=1, padding=1)
        out = conv(Tensor(RNG.normal(size=(2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 5, 8, 8)
