"""Gradient accumulation: equivalence with large-batch steps."""

import numpy as np
import pytest

from repro.framework import Linear, ReLU, SGD, Sequential, Tensor, functional as F
from repro.framework.accumulate import GradientAccumulator


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 10, rng), ReLU(), Linear(10, 3, rng))


def batch(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 6)).astype(np.float32), rng.integers(0, 3, size=n)


def loss_of(model, x, y):
    return F.cross_entropy(model(Tensor(x)), y)


class TestAccumulator:
    def test_equivalent_to_large_batch(self):
        """4 micro-batches of 8 == one batch of 32 (mean loss)."""
        x, y = batch(32)

        big_model = make_model(1)
        big_opt = SGD(big_model.parameters(), lr=0.1)
        for _ in range(3):
            big_model.zero_grad()
            loss_of(big_model, x, y).backward()
            big_opt.step()

        acc_model = make_model(1)
        acc = GradientAccumulator(acc_model, SGD(acc_model.parameters(), lr=0.1), 4)
        for _ in range(3):
            for k in range(4):
                xs, ys = x[k * 8 : (k + 1) * 8], y[k * 8 : (k + 1) * 8]
                acc.backward(loss_of(acc_model, xs, ys))

        for pa, pb in zip(big_model.parameters(), acc_model.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-4, atol=1e-6)

    def test_step_applied_only_at_boundary(self):
        model = make_model(2)
        acc = GradientAccumulator(model, SGD(model.parameters(), lr=0.1), 3)
        x, y = batch(8)
        before = model.layers[0].weight.data.copy()
        assert not acc.backward(loss_of(model, x, y))
        assert not acc.backward(loss_of(model, x, y))
        np.testing.assert_array_equal(model.layers[0].weight.data, before)
        assert acc.backward(loss_of(model, x, y))
        assert not np.array_equal(model.layers[0].weight.data, before)
        assert acc.pending_micro_steps == 0

    def test_flush_applies_leftover(self):
        model = make_model(3)
        acc = GradientAccumulator(model, SGD(model.parameters(), lr=0.1), 4)
        x, y = batch(8)
        acc.backward(loss_of(model, x, y))
        before = model.layers[0].weight.data.copy()
        assert acc.flush()
        assert not np.array_equal(model.layers[0].weight.data, before)
        assert not acc.flush()  # nothing left

    def test_flush_rescales_to_mean(self):
        """Flushing after 2 of 4 micro-batches equals a 2-micro-batch mean."""
        x, y = batch(16)
        ref_model = make_model(4)
        ref_opt = SGD(ref_model.parameters(), lr=0.1)
        loss_of(ref_model, x, y).backward()
        ref_opt.step()

        acc_model = make_model(4)
        acc = GradientAccumulator(acc_model, SGD(acc_model.parameters(), lr=0.1), 4)
        acc.backward(loss_of(acc_model, x[:8], y[:8]))
        acc.backward(loss_of(acc_model, x[8:], y[8:]))
        acc.flush()
        for pa, pb in zip(ref_model.parameters(), acc_model.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-4, atol=1e-6)

    def test_validation(self):
        model = make_model()
        with pytest.raises(ValueError):
            GradientAccumulator(model, SGD(model.parameters(), lr=0.1), 0)
