"""Capture/compile/replay executor: bit-identity, caching, and fallbacks.

``REPRO_KERNEL_MODE=compiled`` promises *mathematical identity* with the
eager modes (§2.2.4 discipline: ``array_equal``, never ``allclose``) while
replaying a pre-resolved plan on steps whose graph fingerprint repeats.
These tests pin the contract edges the suite runs don't isolate: shared
subgraphs, per-shape plan caching (partial batches), the plan-cap and
uncompilable fallbacks, grad-hook delivery during replay, tape release,
and the deep RNN / attention tapes whose permuted-layout gradients are
the historical divergence hazard (multi-axis reductions are sensitive to
memory order, so replay must preserve eager layouts bit-for-bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import (
    Parameter,
    SGD,
    Tensor,
    linear_bias_act,
    use_kernel_mode,
)
from repro.framework.compile import StepExecutor

RNG = np.random.default_rng(7)

EAGER_MODES = ("naive", "reuse", "fused")


def _mlp_params(seed=0):
    rng = np.random.default_rng(seed)
    w1 = Parameter((rng.normal(size=(16, 12)) * 0.2).astype(np.float32))
    b1 = Parameter(np.zeros(16, dtype=np.float32))
    w2 = Parameter((rng.normal(size=(4, 16)) * 0.2).astype(np.float32))
    b2 = Parameter(np.zeros(4, dtype=np.float32))
    return [w1, b1, w2, b2]


def _mlp_loss(params, batch):
    w1, b1, w2, b2 = params
    x = Tensor(batch)
    h = linear_bias_act(x, w1, b1, act="relu")
    y = linear_bias_act(h, w2, b2, act="none")
    return (y * y).mean()


def _zero_grads(params):
    for p in params:
        p.grad = None


def _train(mode, batches, *, seed=0, executor=None, loss_fn=_mlp_loss,
           param_fn=_mlp_params):
    """Run the same multi-step horizon under ``mode``; return the trace.

    The trace is bitwise: per-step loss, every per-step parameter
    gradient, and the final parameter values.
    """
    execu = executor if executor is not None else StepExecutor()
    with use_kernel_mode(mode):
        params = param_fn(seed)
        opt = SGD(params, lr=1e-2, momentum=0.9)
        trace = []
        for batch in batches:
            loss = execu.step(lambda: loss_fn(params, batch),
                              pre_backward=lambda: _zero_grads(params))
            trace.append((loss.data.copy(),
                          tuple(p.grad.copy() for p in params)))
            opt.step()
        finals = tuple(p.data.copy() for p in params)
    return trace, finals, execu


def _assert_traces_identical(ref, got, context):
    (ref_trace, ref_finals, _), (got_trace, got_finals, _) = ref, got
    for step, ((rl, rg), (gl, gg)) in enumerate(zip(ref_trace, got_trace)):
        assert np.array_equal(rl, gl), f"{context}: loss diverged at step {step}"
        for i, (r, g) in enumerate(zip(rg, gg)):
            assert np.array_equal(r, g), \
                f"{context}: grad[{i}] diverged at step {step}"
    for i, (r, g) in enumerate(zip(ref_finals, got_finals)):
        assert np.array_equal(r, g), f"{context}: final param[{i}] diverged"


def _batches(n, shape=(8, 12), seed=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape).astype(np.float32) for _ in range(n)]


class TestMultiStepBitIdentity:
    @pytest.mark.parametrize("ref_mode", EAGER_MODES)
    def test_mlp_horizon_matches_eager(self, ref_mode):
        batches = _batches(5)
        ref = _train(ref_mode, batches)
        got = _train("compiled", batches)
        _assert_traces_identical(ref, got, f"compiled-vs-{ref_mode}")
        stats = got[2].stats()
        assert stats == got[2].stats()  # stats() is pure
        assert stats["misses"] == 1 and stats["hits"] == len(batches) - 1
        assert stats["fallbacks"] == 0 and stats["plans"] == 1

    def test_shared_subgraph(self):
        # One hidden activation feeds two branches whose losses are
        # combined: the shared node must accumulate both adjoints in
        # eager order during replay.
        def loss_fn(params, batch):
            w1, b1, w2, b2 = params
            h = linear_bias_act(Tensor(batch), w1, b1, act="relu")
            ya = linear_bias_act(h, w2, b2, act="none")
            yb = (h * h).sum()
            return (ya * ya).mean() + yb * 1e-3

        batches = _batches(4)
        ref = _train("fused", batches, loss_fn=loss_fn)
        got = _train("compiled", batches, loss_fn=loss_fn)
        _assert_traces_identical(ref, got, "shared-subgraph")
        assert got[2].stats()["hits"] == len(batches) - 1

    def test_deep_rnn_tape(self):
        # A long unrolled recurrence: hundreds of tape nodes, elementwise
        # chains eligible for fusion, shared weight reused every timestep.
        def param_fn(seed):
            rng = np.random.default_rng(seed)
            wx = Parameter((rng.normal(size=(10, 6)) * 0.3).astype(np.float32))
            wh = Parameter((rng.normal(size=(10, 10)) * 0.3).astype(np.float32))
            b = Parameter(np.zeros(10, dtype=np.float32))
            return [wx, wh, b]

        def loss_fn(params, batch):
            wx, wh, b = params
            h = Tensor(np.zeros((batch.shape[0], 10), dtype=np.float32))
            for t in range(batch.shape[1]):
                xt = Tensor(np.ascontiguousarray(batch[:, t]))
                h = (linear_bias_act(xt, wx, b, act="none")
                     + linear_bias_act(h, wh, None, act="none")).tanh()
            return (h * h).mean()

        batches = _batches(4, shape=(4, 9, 6), seed=11)
        ref = _train("fused", batches, loss_fn=loss_fn, param_fn=param_fn)
        got = _train("compiled", batches, loss_fn=loss_fn, param_fn=param_fn)
        _assert_traces_identical(ref, got, "deep-rnn")

    def test_attention_tape_permuted_layouts(self):
        # Regression for the layout hazard: transpose/reshape adjoints
        # hand permuted-layout gradient views to matmul and to the
        # broadcast-reduction in bias/weight accumulation.  NumPy's
        # pairwise summation blocks by memory order, so a replay that
        # silently made these C-contiguous would change low bits.
        B, T, D, heads = 3, 5, 8, 2
        dh = D // heads

        def param_fn(seed):
            rng = np.random.default_rng(seed)
            mk = lambda *s: Parameter(
                (rng.normal(size=s) * (1.0 / np.sqrt(s[-1]))).astype(np.float32))
            return [mk(D, D), mk(D, D), mk(D, D), mk(D, D)]

        def loss_fn(params, batch):
            wq, wk, wv, wo = params
            x = Tensor(batch)

            def split(w):
                y = linear_bias_act(x, w, None, act="none")
                return y.reshape((B, T, heads, dh)).transpose((0, 2, 1, 3))

            q, k, v = split(wq), split(wk), split(wv)
            attn = ((q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(dh))).tanh()
            ctx = (attn @ v).transpose((0, 2, 1, 3)).reshape((B, T, D))
            out = linear_bias_act(ctx, wo, None, act="none")
            return (out * out).mean()

        batches = _batches(4, shape=(B, T, D), seed=13)
        ref = _train("fused", batches, loss_fn=loss_fn, param_fn=param_fn)
        got = _train("compiled", batches, loss_fn=loss_fn, param_fn=param_fn)
        _assert_traces_identical(ref, got, "attention-layouts")
        assert got[2].stats()["fallbacks"] == 0


class TestPlanCache:
    def test_partial_batch_gets_its_own_plan(self):
        # A trailing partial batch changes every shape in the graph: new
        # fingerprint, second compiled plan — never a silent corruption
        # of the full-batch plan.
        batches = _batches(4) + _batches(2, shape=(3, 12), seed=5)
        ref = _train("fused", batches)
        got = _train("compiled", batches)
        _assert_traces_identical(ref, got, "partial-batch")
        stats = got[2].stats()
        assert stats["plans"] == 2
        assert stats["misses"] == 2 and stats["fallbacks"] == 0
        assert stats["hits"] == len(batches) - 2

    def test_plan_cap_falls_back_eagerly(self):
        executor = StepExecutor()
        executor.MAX_PLANS = 0
        batches = _batches(3)
        ref = _train("fused", batches)
        got = _train("compiled", batches, executor=executor)
        _assert_traces_identical(ref, got, "plan-cap")
        stats = executor.stats()
        assert stats["fallbacks"] == len(batches)
        assert stats["plans"] == 0 and stats["hits"] == 0

    def test_eager_modes_pass_through(self):
        executor = StepExecutor()
        _train("fused", _batches(3), executor=executor)
        stats = executor.stats()
        assert (stats["hits"], stats["misses"], stats["fallbacks"]) == (0, 0, 0)


class TestHooksAndRelease:
    def test_grad_hooks_fire_with_final_grads(self):
        # The comms engine overlaps reduction with backward via grad
        # hooks; replay must fire them once per step, in the same leaf
        # order as eager, with the finalized gradient bits.
        def run(mode):
            order, grads = [], []
            with use_kernel_mode(mode):
                params = _mlp_params()
                for i, p in enumerate(params):
                    def hook(node, i=i):
                        order.append(i)
                        grads.append(node.grad.copy())
                    p.register_grad_hook(hook)
                execu = StepExecutor()
                for batch in _batches(3):
                    execu.step(lambda: _mlp_loss(params, batch),
                               pre_backward=lambda: _zero_grads(params))
                eager_grads = tuple(p.grad.copy() for p in params)
            return order, grads, eager_grads

        ref_order, ref_grads, ref_final = run("fused")
        got_order, got_grads, got_final = run("compiled")
        assert got_order == ref_order
        assert len(got_grads) == len(ref_grads)
        for r, g in zip(ref_grads, got_grads):
            assert np.array_equal(r, g)
        for r, g in zip(ref_final, got_final):
            assert np.array_equal(r, g)

    @pytest.mark.parametrize("release", [True, False])
    def test_release_tape(self, release):
        executor = StepExecutor(release_tape=release)
        with use_kernel_mode("compiled"):
            params = _mlp_params()
            for batch in _batches(2):
                loss = executor.step(lambda: _mlp_loss(params, batch),
                                     pre_backward=lambda: _zero_grads(params))
        if release:
            # Both the miss (compile) and hit (replay) paths sever the
            # traversed graph so intermediates free immediately.
            assert loss._backward is None and loss._prev == ()
        else:
            assert loss._prev != ()


class TestStepBenchPayload:
    def test_smoke_payload_and_gate(self):
        from repro.framework.microbench import (
            STEP_BENCH_SCHEMA,
            bench_step,
            gate_step_failures,
        )

        payload = bench_step(smoke=True, repeats=2, warmup=1, identity_steps=3)
        assert payload["schema"] == STEP_BENCH_SCHEMA
        assert payload["checks"]["bit_identical"] is True
        assert payload["checks"]["fallbacks"] == 0
        assert payload["checks"]["hit_rate_after_first"] == 1.0
        for wl in payload["workloads"].values():
            assert wl["bit_identical"] is True
            assert wl["executor"]["plans"] >= 1
        # Timing on a shared test host is noise: gate only the
        # mechanism invariants, exactly as the CI smoke job does.
        assert gate_step_failures(payload, min_speedup=None) == []
        doctored = {
            **payload,
            "checks": {**payload["checks"], "fallbacks": 1},
            "workloads": {
                name: {**wl, "bit_identical": False}
                for name, wl in payload["workloads"].items()
            },
        }
        failures = gate_step_failures(doctored, min_speedup=None)
        assert any("bit-identical" in f for f in failures)
        assert any("fallback" in f for f in failures)
