"""LR schedules and the seeded data pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import (
    ArrayDataset,
    ConstantLR,
    CosineLR,
    DataLoader,
    NoamLR,
    Parameter,
    SGD,
    StepDecayLR,
    WarmupStepLR,
    linear_scaled_lr,
    train_val_split,
)


def make_opt():
    return SGD([Parameter(np.zeros(2))], lr=1.0)


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(make_opt(), lr=0.3)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.3

    def test_step_decay(self):
        sched = StepDecayLR(make_opt(), base_lr=1.0, milestones=[10, 20], gamma=0.1)
        assert sched.lr_at(5) == 1.0
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.01)

    def test_warmup_ramps_linearly(self):
        sched = WarmupStepLR(make_opt(), base_lr=1.0, warmup_steps=10, milestones=[100])
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(4) == pytest.approx(0.5)
        assert sched.lr_at(10) == 1.0

    def test_warmup_then_decay(self):
        sched = WarmupStepLR(make_opt(), base_lr=1.0, warmup_steps=5, milestones=[20], gamma=0.5)
        assert sched.lr_at(20) == pytest.approx(0.5)

    def test_cosine_endpoints(self):
        sched = CosineLR(make_opt(), base_lr=1.0, total_steps=100, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert sched.lr_at(50) == pytest.approx(0.55)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(make_opt(), base_lr=1.0, total_steps=50)
        lrs = [sched.lr_at(s) for s in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_noam_peak_at_warmup(self):
        sched = NoamLR(make_opt(), d_model=64, warmup_steps=100)
        lrs = [sched.lr_at(s) for s in range(1, 400)]
        assert int(np.argmax(lrs)) + 1 == 100

    def test_step_applies_to_optimizer(self):
        opt = make_opt()
        sched = StepDecayLR(opt, base_lr=1.0, milestones=[1], gamma=0.5)
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_linear_scaling_rule(self):
        assert linear_scaled_lr(0.1, 1024, 256) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            linear_scaled_lr(0.1, 0, 256)

    @given(st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_noam_always_positive(self, step):
        sched = NoamLR(make_opt(), d_model=32, warmup_steps=50)
        assert sched.lr_at(step) > 0


class TestArrayDataset:
    def test_length_and_indexing(self):
        x = np.arange(10)
        y = np.arange(10) * 2
        ds = ArrayDataset(x, y)
        assert len(ds) == 10
        xi, yi = ds[np.array([1, 3])]
        np.testing.assert_array_equal(xi, [1, 3])
        np.testing.assert_array_equal(yi, [2, 6])

    def test_single_array(self):
        ds = ArrayDataset(np.arange(5))
        np.testing.assert_array_equal(ds[np.array([0, 4])], [0, 4])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))

    def test_split_partitions(self):
        ds = ArrayDataset(np.arange(100))
        rng = np.random.default_rng(0)
        train, val = train_val_split(ds, 0.2, rng)
        assert len(train) == 80
        assert len(val) == 20
        combined = np.sort(np.concatenate([train.arrays[0], val.arrays[0]]))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_val_split(ArrayDataset(np.arange(4)), 1.5, np.random.default_rng(0))


class TestDataLoader:
    def test_covers_all_samples(self):
        ds = ArrayDataset(np.arange(23))
        loader = DataLoader(ds, batch_size=5, seed=1)
        seen = np.concatenate([b for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(23))

    def test_len(self):
        ds = ArrayDataset(np.arange(23))
        assert len(DataLoader(ds, batch_size=5)) == 5
        assert len(DataLoader(ds, batch_size=5, drop_last=True)) == 4

    def test_drop_last(self):
        ds = ArrayDataset(np.arange(23))
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        batches = list(loader)
        assert all(len(b) == 5 for b in batches)
        assert len(batches) == 4

    def test_same_seed_same_order(self):
        ds = ArrayDataset(np.arange(50))
        a = np.concatenate(list(DataLoader(ds, 10, seed=7)))
        b = np.concatenate(list(DataLoader(ds, 10, seed=7)))
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_order(self):
        ds = ArrayDataset(np.arange(50))
        a = np.concatenate(list(DataLoader(ds, 10, seed=7)))
        b = np.concatenate(list(DataLoader(ds, 10, seed=8)))
        assert not np.array_equal(a, b)

    def test_epochs_reshuffle(self):
        ds = ArrayDataset(np.arange(50))
        loader = DataLoader(ds, 10, seed=7)
        first = np.concatenate(list(loader))
        second = np.concatenate(list(loader))
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        ds = ArrayDataset(np.arange(10))
        loader = DataLoader(ds, 4, shuffle=False)
        batches = list(loader)
        np.testing.assert_array_equal(batches[0], [0, 1, 2, 3])

    def test_augment_runs_per_batch(self):
        calls = []

        def aug(x, rng):
            calls.append(len(x))
            return (x + 100,)

        ds = ArrayDataset(np.arange(8))
        out = list(DataLoader(ds, 4, shuffle=False, augment=aug))
        assert calls == [4, 4]
        assert np.all(out[0] >= 100)


class TestDataLoaderEpochSemantics:
    """A partial traversal must not burn an epoch's shuffle seed."""

    def test_full_pass_advances_epoch(self):
        loader = DataLoader(ArrayDataset(np.arange(10)), 5, seed=1)
        assert loader.epoch == 0
        list(loader)
        assert loader.epoch == 1

    def test_abandoned_iterator_does_not_advance(self):
        ds = ArrayDataset(np.arange(20))
        loader = DataLoader(ds, 5, seed=1)
        for _ in loader:
            break  # peek at one batch, then abandon the pass
        assert loader.epoch == 0
        replay = np.concatenate(list(loader))
        fresh = np.concatenate(list(DataLoader(ds, 5, seed=1)))
        np.testing.assert_array_equal(replay, fresh)

    def test_drop_last_tail_still_completes_epoch(self):
        loader = DataLoader(ArrayDataset(np.arange(23)), 5, seed=1, drop_last=True)
        list(loader)
        assert loader.epoch == 1

    def test_set_epoch_positions_schedule(self):
        ds = ArrayDataset(np.arange(30))
        sequential = DataLoader(ds, 6, seed=9)
        for _ in range(3):
            list(sequential)
        jumped = DataLoader(ds, 6, seed=9)
        jumped.set_epoch(3)
        np.testing.assert_array_equal(
            np.concatenate(list(jumped)), np.concatenate(list(sequential)))

    def test_multi_array_batches(self):
        ds = ArrayDataset(np.arange(6), np.arange(6) * 10)
        x, y = next(iter(DataLoader(ds, 3, shuffle=False)))
        np.testing.assert_array_equal(y, x * 10)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(4)), 0)


class TestDataLoaderPrefetch:
    """Background prefetch must be invisible to batch contents and RNG."""

    def _collect(self, **kwargs):
        ds = ArrayDataset(np.arange(23.0), np.arange(23) % 3)
        loader = DataLoader(ds, batch_size=5, seed=9, **kwargs)
        epochs = []
        for _ in range(2):
            epochs.append([tuple(np.array(a, copy=True) for a in b)
                           for b in loader])
        return epochs

    def test_bit_identical_to_sequential_path(self):
        ref = self._collect()
        got = self._collect(prefetch=1)
        assert len(got) == len(ref)
        for ref_epoch, got_epoch in zip(ref, got):
            assert len(got_epoch) == len(ref_epoch)
            for rb, gb in zip(ref_epoch, got_epoch):
                for ra, ga in zip(rb, gb):
                    np.testing.assert_array_equal(ra, ga)

    def test_bit_identical_with_reuse_buffers(self):
        ref = self._collect(drop_last=True)
        got = self._collect(drop_last=True, reuse_buffers=True, prefetch=2)
        for ref_epoch, got_epoch in zip(ref, got):
            for rb, gb in zip(ref_epoch, got_epoch):
                for ra, ga in zip(rb, gb):
                    np.testing.assert_array_equal(ra, ga)

    def test_bit_identical_with_augment_rng(self):
        def aug(x, y, rng):
            return x + rng.standard_normal(x.shape), y

        ref = self._collect(augment=aug)
        got = self._collect(augment=aug, prefetch=1)
        for ref_epoch, got_epoch in zip(ref, got):
            for rb, gb in zip(ref_epoch, got_epoch):
                np.testing.assert_array_equal(rb[0], gb[0])

    def test_abandonment_does_not_advance_epoch(self):
        ds = ArrayDataset(np.arange(20))
        loader = DataLoader(ds, batch_size=5, seed=3, prefetch=1)
        it = iter(loader)
        first = np.array(next(it), copy=True)
        it.close()  # abandon mid-pass: producer thread is stopped and joined
        assert loader.epoch == 0
        replay = np.array(next(iter(loader)), copy=True)
        np.testing.assert_array_equal(first, replay)

    def test_producer_exception_propagates(self):
        def bad_augment(x, rng):
            raise RuntimeError("augment exploded")

        ds = ArrayDataset(np.arange(10.0))
        loader = DataLoader(ds, batch_size=5, augment=bad_augment, prefetch=1)
        with pytest.raises(RuntimeError, match="augment exploded"):
            list(loader)

    def test_negative_prefetch_rejected(self):
        with pytest.raises(ValueError, match="prefetch"):
            DataLoader(ArrayDataset(np.arange(4)), batch_size=2, prefetch=-1)
