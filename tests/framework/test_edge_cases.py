"""Edge cases across the framework: grad modes, scalar promotion, shapes."""

import numpy as np
import pytest

from repro.framework import (
    Linear,
    Parameter,
    SGD,
    Tensor,
    functional as F,
    no_grad,
)


class TestGradModes:
    def test_no_grad_nests(self):
        from repro.framework import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()  # inner exit restores *outer* state
        assert is_grad_enabled()

    def test_no_grad_exception_safe(self):
        from repro.framework import is_grad_enabled

        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_parameter_created_inside_no_grad_still_trains(self):
        with no_grad():
            p = Parameter(np.ones(3, dtype=np.float32))
        assert p.requires_grad
        (p * 2.0).sum().backward()
        np.testing.assert_allclose(p.grad, 2.0)

    def test_graph_not_built_under_no_grad(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        with no_grad():
            out = p * 3.0
        assert out._backward is None
        assert not out.requires_grad


class TestScalarPromotion:
    def test_float32_stays_float32_with_python_scalars(self):
        x = Tensor(np.ones(4, dtype=np.float32))
        for result in (x + 1e-5, x * 2.0, x - 0.5, x / 3.0, 1.0 - x, 2.0 / (x + 1.0)):
            assert result.dtype == np.float32, result.dtype

    def test_float64_keeps_scalar_precision(self):
        x = Tensor(np.zeros(1, dtype=np.float64))
        y = x + (1.0 / 3.0)
        assert y.dtype == np.float64
        assert y.data[0] == pytest.approx(1.0 / 3.0, abs=1e-16)

    def test_numpy_scalar_operand_promotes(self):
        # np scalars are strongly typed: float64 scalar promotes float32.
        x = Tensor(np.ones(2, dtype=np.float32))
        assert (x + np.float64(1.0)).dtype == np.float64

    def test_mixed_tensor_dtypes_promote(self):
        a = Tensor(np.ones(2, dtype=np.float32))
        b = Tensor(np.ones(2, dtype=np.float64))
        assert (a + b).dtype == np.float64


class TestShapeEdges:
    def test_zero_size_batch_through_linear(self):
        layer = Linear(4, 2, np.random.default_rng(0))
        out = layer(Tensor(np.zeros((0, 4), dtype=np.float32)))
        assert out.shape == (0, 2)

    def test_single_sample_cross_entropy(self):
        logits = Tensor(np.zeros((1, 5)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([2]))
        loss.backward()
        assert logits.grad.shape == (1, 5)

    def test_all_targets_ignored(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        loss = F.cross_entropy(logits, np.full(3, -1), ignore_index=-1)
        assert float(loss.data) == 0.0
        loss.backward()
        np.testing.assert_allclose(logits.grad, 0.0)

    def test_optimizer_on_scalar_parameter(self):
        p = Parameter(np.array(5.0, dtype=np.float32))
        opt = SGD([p], lr=0.5)
        p.grad = np.array(2.0, dtype=np.float32)
        opt.step()
        assert p.data == pytest.approx(4.0)

    def test_reshape_zero_dim(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = x.reshape(6)[0:0]
        assert y.shape == (0,)
