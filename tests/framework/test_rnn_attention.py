"""LSTM and Transformer block behaviour."""

import numpy as np
import pytest

from repro.framework import (
    LSTM,
    LSTMCell,
    MultiHeadAttention,
    Tensor,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    positional_encoding,
)

RNG = np.random.default_rng(5)


class TestLSTMCell:
    def test_shapes(self):
        cell = LSTMCell(6, 8, RNG)
        h, c = cell.zero_state(4)
        x = Tensor(RNG.normal(size=(4, 6)).astype(np.float32))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (4, 8)
        assert c2.shape == (4, 8)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(3, 4, RNG)
        np.testing.assert_allclose(cell.bias.data[4:8], 1.0)

    def test_state_bounded(self):
        cell = LSTMCell(3, 4, RNG)
        state = cell.zero_state(2)
        for _ in range(50):
            x = Tensor(RNG.normal(size=(2, 3)).astype(np.float32) * 10)
            h, c = cell(x, state)
            state = (h, c)
        assert np.all(np.abs(state[0].data) <= 1.0)  # h = o * tanh(c) in [-1,1]

    def test_gradient_flows_through_time(self):
        cell = LSTMCell(3, 4, RNG)
        x0 = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        state = cell.zero_state(2)
        h, c = cell(x0, state)
        for _ in range(5):
            h, c = cell(Tensor(np.zeros((2, 3), dtype=np.float32)), (h, c))
        h.sum().backward()
        assert x0.grad is not None
        assert np.abs(x0.grad).max() > 0


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(5, 7, 2, RNG)
        out, states = lstm(Tensor(RNG.normal(size=(4, 3, 5)).astype(np.float32)))
        assert out.shape == (4, 3, 7)
        assert len(states) == 2

    def test_residual_stacking(self):
        lstm = LSTM(6, 6, 3, RNG, residual=True)
        out, _ = lstm(Tensor(RNG.normal(size=(2, 3, 6)).astype(np.float32)))
        assert out.shape == (2, 3, 6)

    def test_mask_freezes_state(self):
        lstm = LSTM(4, 4, 1, RNG)
        x = Tensor(RNG.normal(size=(3, 2, 4)).astype(np.float32))
        mask = np.array([[True, True], [True, False], [True, False]])
        out, states = lstm(x, mask=mask)
        # For sequence 1, outputs at t=1,2 equal output at t=0 (state frozen).
        np.testing.assert_allclose(out.data[1, 1], out.data[0, 1], atol=1e-6)
        np.testing.assert_allclose(out.data[2, 1], out.data[0, 1], atol=1e-6)

    def test_initial_state_passthrough(self):
        lstm = LSTM(4, 4, 1, RNG)
        x = Tensor(RNG.normal(size=(1, 2, 4)).astype(np.float32))
        _, states = lstm(x)
        out2, _ = lstm(x, states=states)
        out1, _ = lstm(x)
        assert not np.allclose(out1.data, out2.data)


class TestAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4, RNG)
        x = Tensor(RNG.normal(size=(2, 5, 16)).astype(np.float32))
        assert mha(x, x, x).shape == (2, 5, 16)

    def test_bad_head_count_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, RNG)

    def test_causal_mask_blocks_future(self):
        # With a causal mask, output at position t must not depend on inputs > t.
        mha = MultiHeadAttention(8, 2, RNG)
        x = RNG.normal(size=(1, 4, 8)).astype(np.float32)
        mask = causal_mask(4)
        base = mha(Tensor(x), Tensor(x), Tensor(x), mask=mask).data
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb the last position only
        pert = mha(Tensor(x2), Tensor(x2), Tensor(x2), mask=mask).data
        np.testing.assert_allclose(base[0, :3], pert[0, :3], atol=1e-4)
        assert not np.allclose(base[0, 3], pert[0, 3], atol=1e-3)

    def test_cross_attention_shapes(self):
        mha = MultiHeadAttention(8, 2, RNG)
        q = Tensor(RNG.normal(size=(2, 3, 8)).astype(np.float32))
        kv = Tensor(RNG.normal(size=(2, 7, 8)).astype(np.float32))
        assert mha(q, kv, kv).shape == (2, 3, 8)

    def test_key_padding_mask(self):
        # Masked keys must not influence the output.
        mha = MultiHeadAttention(8, 2, RNG)
        q = Tensor(RNG.normal(size=(1, 2, 8)).astype(np.float32))
        kv = RNG.normal(size=(1, 4, 8)).astype(np.float32)
        mask = np.ones((1, 1, 2, 4), dtype=bool)
        mask[..., 3] = False
        base = mha(q, Tensor(kv), Tensor(kv), mask=mask).data
        kv2 = kv.copy()
        kv2[0, 3] += 50.0
        pert = mha(q, Tensor(kv2), Tensor(kv2), mask=mask).data
        np.testing.assert_allclose(base, pert, atol=1e-4)

    def test_gradients_flow(self):
        mha = MultiHeadAttention(8, 2, RNG)
        x = Tensor(RNG.normal(size=(1, 3, 8)).astype(np.float32), requires_grad=True)
        mha(x, x, x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in mha.parameters())


class TestTransformerBlocks:
    def test_encoder_layer_shape(self):
        layer = TransformerEncoderLayer(16, 4, 32, RNG)
        x = Tensor(RNG.normal(size=(2, 5, 16)).astype(np.float32))
        assert layer(x).shape == (2, 5, 16)

    def test_decoder_layer_shape(self):
        layer = TransformerDecoderLayer(16, 4, 32, RNG)
        x = Tensor(RNG.normal(size=(2, 4, 16)).astype(np.float32))
        mem = Tensor(RNG.normal(size=(2, 6, 16)).astype(np.float32))
        assert layer(x, mem, tgt_mask=causal_mask(4)).shape == (2, 4, 16)

    def test_positional_encoding_properties(self):
        enc = positional_encoding(50, 16)
        assert enc.shape == (50, 16)
        assert np.all(np.abs(enc) <= 1.0)
        # distinct positions get distinct encodings
        assert not np.allclose(enc[0], enc[1])

    def test_causal_mask_structure(self):
        m = causal_mask(3)
        expected = np.array([[1, 0, 0], [1, 1, 0], [1, 1, 1]], dtype=bool)
        np.testing.assert_array_equal(m, expected)
