"""Tests for the kernel workspace arena (borrow/release scratch buffers)."""

from __future__ import annotations

import gc
import threading

import numpy as np
import pytest

from repro.framework.workspace import Workspace, arena, record_arena_gauges
from repro.telemetry import Telemetry


class TestTakeRelease:
    def test_take_shape_and_dtype(self):
        ws = Workspace()
        buf = ws.take((3, 4), np.float64)
        assert buf.shape == (3, 4)
        assert buf.dtype == np.float64

    def test_int_shape(self):
        ws = Workspace()
        assert ws.take(7).shape == (7,)

    def test_release_then_take_reuses(self):
        ws = Workspace()
        a = ws.take((4, 6))
        base = a.base if a.base is not None else a
        ws.release(a)
        b = ws.take((4, 6))
        assert (b.base if b.base is not None else b) is base
        assert ws.hits == 1 and ws.misses == 1

    def test_size_keyed_across_shapes(self):
        ws = Workspace()
        a = ws.take((4, 6))
        ws.release(a)
        b = ws.take((24,))  # same element count, different shape
        assert ws.hits == 1

    def test_dtype_keyed(self):
        ws = Workspace()
        a = ws.take((8,), np.float32)
        ws.release(a)
        ws.take((8,), np.float64)
        assert ws.hits == 0 and ws.misses == 2

    def test_live_borrows_never_alias(self):
        ws = Workspace()
        a = ws.take((16,))
        b = ws.take((16,))
        assert not np.shares_memory(a, b)
        ws.release(a)
        c = ws.take((16,))  # a's buffer may come back only after release
        assert not np.shares_memory(b, c)

    def test_double_release_raises(self):
        ws = Workspace()
        buf = ws.take((4,))
        ws.release(buf)
        with pytest.raises(ValueError):
            ws.release(buf)

    def test_foreign_release_raises(self):
        ws = Workspace()
        with pytest.raises(ValueError):
            ws.release(np.zeros(4))

    def test_borrow_contextmanager(self):
        ws = Workspace()
        with ws.borrow((4, 4)) as buf:
            assert buf.shape == (4, 4)
            assert ws.live_count == 1
        assert ws.live_count == 0
        ws.take((4, 4))
        assert ws.hits == 1


class TestReclaimAndStats:
    def test_dead_borrow_is_reclaimed(self):
        ws = Workspace()
        buf = ws.take((32,))
        del buf
        gc.collect()
        assert ws.live_count == 0
        ws.take((32,))
        assert ws.hits == 1

    def test_stats_and_reset(self):
        ws = Workspace()
        a = ws.take((8,), np.float32)
        ws.release(a)
        b = ws.take((8,), np.float32)
        stats = ws.stats()
        assert b.size == 8
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes_allocated"] == 32
        assert stats["live"] == 1
        ws.reset_stats()
        assert ws.hit_rate == 0.0 and ws.bytes_allocated == 0

    def test_clear_drops_pool(self):
        ws = Workspace()
        ws.release(ws.take((8,)))
        assert ws.pooled_bytes > 0
        ws.clear()
        assert ws.pooled_bytes == 0

    def test_arena_is_thread_local(self):
        main_ws = arena()
        other: list[Workspace] = []
        t = threading.Thread(target=lambda: other.append(arena()))
        t.start()
        t.join()
        assert other[0] is not main_ws
        assert arena() is main_ws


class TestTelemetry:
    def test_take_counts_into_ambient_metrics(self):
        telemetry = Telemetry()
        ws = Workspace()
        with telemetry.activate():
            first = ws.take((16,), np.float32)
            ws.release(first)
            ws.take((16,), np.float32)
        metrics = telemetry.metrics
        assert metrics.counter("kernel_arena_misses").value == 1
        assert metrics.counter("kernel_arena_hits").value == 1
        assert metrics.counter("kernel_arena_bytes_allocated").value == 64

    def test_record_arena_gauges(self):
        telemetry = Telemetry()
        with telemetry.activate():
            stats = record_arena_gauges()
        gauge = telemetry.metrics.gauge("kernel_arena_hit_rate")
        assert gauge.value == stats["hit_rate"]
        assert telemetry.metrics.gauge("kernel_arena_live_borrows").value == stats["live"]
