"""Losses and activations: values against closed forms, gradients against FD."""

import numpy as np
import pytest

from repro.framework import Tensor, functional as F
from tests.helpers import check_gradient

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = RNG.normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_softmax_gradient(self):
        w = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda x: F.softmax(x, axis=-1) * w, RNG.normal(size=(3, 4)))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10)

    def test_log_softmax_gradient(self):
        w = Tensor(RNG.normal(size=(3, 5)))
        check_gradient(lambda x: F.log_softmax(x, axis=-1) * w, RNG.normal(size=(3, 5)))

    def test_log_softmax_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = F.log_softmax(x)
        assert np.all(np.isfinite(out.data))


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.arange(4) % 10)
        np.testing.assert_allclose(loss.data, np.log(10), atol=1e-6)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 5), -100.0)
        logits[np.arange(3), [0, 1, 2]] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert loss.data < 1e-6

    def test_gradient(self):
        targets = np.array([1, 0, 3])
        check_gradient(lambda x: F.cross_entropy(x, targets), RNG.normal(size=(3, 4)))

    def test_ignore_index(self):
        logits = RNG.normal(size=(4, 5))
        targets = np.array([1, 2, -1, 3])
        full = F.cross_entropy(Tensor(logits), targets, ignore_index=-1)
        subset = F.cross_entropy(Tensor(logits[[0, 1, 3]]), targets[[0, 1, 3]])
        np.testing.assert_allclose(full.data, subset.data, atol=1e-6)

    def test_ignore_index_zero_grad_on_ignored(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        F.cross_entropy(logits, np.array([0, -1, 2]), ignore_index=-1).backward()
        softmax_row1 = np.exp(logits.data[1]) / np.exp(logits.data[1]).sum()
        # Ignored rows still receive the softmax-sum term? No: grad must be 0.
        np.testing.assert_allclose(logits.grad[1], 0.0, atol=1e-7)
        del softmax_row1

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = np.full((2, 4), -50.0)
        logits[:, 0] = 50.0
        targets = np.zeros(2, dtype=int)
        plain = F.cross_entropy(Tensor(logits), targets).data
        smooth = F.cross_entropy(Tensor(logits), targets, label_smoothing=0.1).data
        assert smooth > plain

    def test_label_smoothing_gradient(self):
        targets = np.array([1, 0, 3])
        check_gradient(
            lambda x: F.cross_entropy(x, targets, label_smoothing=0.1),
            RNG.normal(size=(3, 4)),
        )

    def test_sum_reduction(self):
        logits = RNG.normal(size=(3, 4))
        targets = np.array([0, 1, 2])
        mean = F.cross_entropy(Tensor(logits), targets, reduction="mean").data
        total = F.cross_entropy(Tensor(logits), targets, reduction="sum").data
        np.testing.assert_allclose(total, mean * 3, rtol=1e-6)


class TestBCE:
    def test_matches_naive_formula(self):
        x = RNG.normal(size=(4, 3))
        t = (RNG.random((4, 3)) > 0.5).astype(np.float64)
        loss = F.binary_cross_entropy_with_logits(Tensor(x), t)
        p = 1 / (1 + np.exp(-x))
        expected = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss.data, expected, rtol=1e-6)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([1000.0, -1000.0]))
        loss = F.binary_cross_entropy_with_logits(x, np.array([1.0, 0.0]))
        assert np.isfinite(loss.data)
        assert loss.data < 1e-6

    def test_gradient(self):
        t = (RNG.random((3, 4)) > 0.5).astype(np.float64)
        check_gradient(lambda x: F.binary_cross_entropy_with_logits(x, t), RNG.normal(size=(3, 4)))

    def test_weighted(self):
        x = RNG.normal(size=(4,))
        t = np.array([1.0, 0.0, 1.0, 0.0])
        w = np.array([2.0, 0.0, 1.0, 1.0])
        loss = F.binary_cross_entropy_with_logits(Tensor(x), t, weight=w)
        base = np.maximum(x, 0) - x * t + np.log1p(np.exp(-np.abs(x)))
        np.testing.assert_allclose(loss.data, (base * w).mean(), rtol=1e-6)


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(F.mse_loss(pred, np.array([1.0, 1.0, 1.0])).data, (0 + 1 + 4) / 3)

    def test_mse_gradient(self):
        t = RNG.normal(size=(3, 4))
        check_gradient(lambda x: F.mse_loss(x, t), RNG.normal(size=(3, 4)))

    def test_smooth_l1_quadratic_region(self):
        pred = Tensor(np.array([0.5]))
        loss = F.smooth_l1_loss(pred, np.array([0.0]), beta=1.0)
        np.testing.assert_allclose(loss.data, 0.125)

    def test_smooth_l1_linear_region(self):
        pred = Tensor(np.array([3.0]))
        loss = F.smooth_l1_loss(pred, np.array([0.0]), beta=1.0)
        np.testing.assert_allclose(loss.data, 2.5)

    def test_smooth_l1_gradient(self):
        t = np.zeros((3, 4))
        data = RNG.normal(size=(3, 4)) * 2
        data[np.abs(np.abs(data) - 1.0) < 0.05] += 0.2  # keep away from the kink
        check_gradient(lambda x: F.smooth_l1_loss(x, t), data)


class TestDropoutAndGelu:
    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, RNG, training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        np.testing.assert_allclose(out.data.mean(), 1.0, atol=0.02)

    def test_dropout_zero_p_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)))
        assert F.dropout(x, 0.0, RNG, training=True) is x

    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0]))
        np.testing.assert_allclose(F.gelu(x).data, [0.0], atol=1e-7)
        x = Tensor(np.array([10.0]))
        np.testing.assert_allclose(F.gelu(x).data, [10.0], atol=1e-4)

    def test_gelu_gradient(self):
        check_gradient(F.gelu, RNG.normal(size=(3, 4)))


class TestNLL:
    def test_nll_shape_validation(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(RNG.normal(size=(3, 4))), np.array([0, 1]))

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(RNG.normal(size=(2, 3))), np.array([0, 1]), reduction="bogus")
