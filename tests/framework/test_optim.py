"""Optimizer semantics — including the §2.2.4 momentum-formulation study."""

import numpy as np
import pytest

from repro.framework import LARS, SGD, Adam, Parameter, Tensor, clip_grad_norm


def quadratic_param(value=5.0):
    return Parameter(np.array([value], dtype=np.float64))


def step_quadratic(opt, p, times=1):
    """Take optimizer steps on f(w) = 0.5 w^2 (gradient = w)."""
    for _ in range(times):
        p.grad = p.data.copy()
        opt.step()
        p.grad = None


class TestSGD:
    def test_plain_sgd_update(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1)
        step_quadratic(opt, p)
        np.testing.assert_allclose(p.data, [0.9])

    def test_converges_on_quadratic(self):
        p = quadratic_param(10.0)
        opt = SGD([p], lr=0.1, momentum=0.9)
        step_quadratic(opt, p, times=200)
        assert abs(p.data[0]) < 1e-3

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=p.data.dtype)
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0], rtol=1e-6)

    def test_invalid_style_raises(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum_style="mxnet")

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_momentum_styles_identical_at_constant_lr(self):
        """§2.2.4: the two formulations coincide when lr never changes."""
        p1, p2 = quadratic_param(3.0), quadratic_param(3.0)
        o1 = SGD([p1], lr=0.05, momentum=0.9, momentum_style="caffe")
        o2 = SGD([p2], lr=0.05, momentum=0.9, momentum_style="torch")
        for _ in range(30):
            step_quadratic(o1, p1)
            step_quadratic(o2, p2)
        np.testing.assert_allclose(p1.data, p2.data, rtol=1e-10)

    def test_momentum_styles_diverge_when_lr_changes(self):
        """§2.2.4: they are NOT mathematically identical under lr decay."""
        p1, p2 = quadratic_param(3.0), quadratic_param(3.0)
        o1 = SGD([p1], lr=0.05, momentum=0.9, momentum_style="caffe")
        o2 = SGD([p2], lr=0.05, momentum=0.9, momentum_style="torch")
        for i in range(30):
            if i == 10:
                o1.lr = o2.lr = 0.005  # decay mid-training
            step_quadratic(o1, p1)
            step_quadratic(o2, p2)
        assert not np.allclose(p1.data, p2.data, rtol=1e-4)

    def test_hyperparameters_reported(self):
        opt = SGD([quadratic_param()], lr=0.1, momentum=0.9, momentum_style="caffe")
        hp = opt.hyperparameters()
        assert hp["momentum_style"] == "caffe"
        assert hp["lr"] == 0.1

    def test_none_grad_skipped(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set: parameter unchanged
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param(10.0)
        opt = Adam([p], lr=0.5)
        step_quadratic(opt, p, times=300)
        assert abs(p.data[0]) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr in magnitude.
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        step_quadratic(opt, p)
        np.testing.assert_allclose(p.data, [0.9], atol=1e-6)

    def test_invariant_to_gradient_scale(self):
        p1, p2 = quadratic_param(1.0), quadratic_param(1.0)
        o1, o2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1)
        for _ in range(10):
            p1.grad = p1.data.copy()
            p2.grad = p2.data * 1000.0
            o1.step()
            o2.step()
        np.testing.assert_allclose(p1.data, p2.data, rtol=1e-4)

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0], dtype=p.data.dtype)
        opt.step()
        assert p.data[0] < 2.0


class TestLARS:
    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = LARS([p], lr=1.0, trust_coefficient=0.1)
        step_quadratic(opt, p, times=500)
        assert abs(p.data[0]) < 0.5

    def test_update_ratio_uniform_across_scales(self):
        # LARS normalizes per-layer: relative update size should be similar
        # for a tiny-norm and a large-norm layer given equal-direction grads.
        small = Parameter(np.full(4, 0.01))
        large = Parameter(np.full(4, 100.0))
        opt = LARS([small, large], lr=1.0, momentum=0.0, trust_coefficient=0.01)
        small.grad = np.ones(4, dtype=small.data.dtype)
        large.grad = np.ones(4, dtype=large.data.dtype)
        s0, l0 = np.linalg.norm(small.data), np.linalg.norm(large.data)
        opt.step()
        ds = np.linalg.norm(small.data - np.full(4, 0.01)) / s0
        dl = np.linalg.norm(large.data - np.full(4, 100.0)) / l0
        np.testing.assert_allclose(ds, dl, rtol=1e-6)

    def test_zero_weight_norm_falls_back(self):
        p = Parameter(np.zeros(3))
        opt = LARS([p], lr=0.1)
        p.grad = np.ones(3, dtype=p.data.dtype)
        opt.step()  # must not divide by zero
        assert np.all(np.isfinite(p.data))


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=p.data.dtype)
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 20.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-6)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1, dtype=p.data.dtype)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_handles_none_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], 1.0) == 0.0


class TestTrainingIntegration:
    def test_linear_regression_recovers_weights(self):
        """End-to-end: the framework can fit a known linear model."""
        from repro.framework import Linear

        rng = np.random.default_rng(0)
        true_w = np.array([[2.0, -3.0, 0.5]], dtype=np.float32)
        x = rng.normal(size=(256, 3)).astype(np.float32)
        y = x @ true_w.T + 1.0
        layer = Linear(3, 1, rng)
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(300):
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            layer.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.02)
        np.testing.assert_allclose(layer.bias.data, [1.0], atol=0.02)
