"""Convolution/pooling: im2col vs naive equivalence, gradients, shapes."""

import numpy as np
import pytest

from repro.framework import Tensor, conv2d, conv2d_naive, max_pool2d, avg_pool2d, global_avg_pool2d
from repro.framework.conv import col2im, im2col
from repro.framework.module import Parameter
from tests.helpers import check_gradient

RNG = np.random.default_rng(3)


def _weights(f, c, k):
    return Parameter(RNG.normal(size=(f, c, k, k)))


class TestIm2Col:
    def test_shape(self):
        x = RNG.normal(size=(2, 3, 8, 8))
        col = im2col(x, 3, 3, 1, 1)
        assert col.shape == (2, 3 * 9, 64)

    def test_stride_shape(self):
        x = RNG.normal(size=(1, 1, 8, 8))
        col = im2col(x, 2, 2, 2, 0)
        assert col.shape == (1, 4, 16)

    def test_col2im_is_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> for all x, y (adjoint property).
        x = RNG.normal(size=(2, 3, 6, 6))
        y = RNG.normal(size=(2, 3 * 9, 36))
        lhs = float((im2col(x, 3, 3, 1, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_identity_kernel_roundtrip(self):
        x = RNG.normal(size=(1, 2, 5, 5))
        col = im2col(x, 1, 1, 1, 0)
        np.testing.assert_allclose(col.reshape(1, 2, 5, 5), x)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, stride, pad):
        x = Tensor(RNG.normal(size=(2, 3, 9, 9)))
        w = _weights(4, 3, 3)
        b = Parameter(RNG.normal(size=4))
        fast = conv2d(x, w, b, stride=stride, pad=pad)
        slow = conv2d_naive(x, w, b, stride=stride, pad=pad)
        np.testing.assert_allclose(fast.data, slow.data, rtol=1e-6, atol=1e-8)

    def test_matches_scipy_correlate(self):
        from scipy.signal import correlate2d

        x = RNG.normal(size=(1, 1, 7, 7))
        w = RNG.normal(size=(1, 1, 3, 3))
        out = conv2d(Tensor(x), Parameter(w), None, stride=1, pad=0)
        expected = correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], expected, rtol=1e-8)

    def test_input_gradient(self):
        w = _weights(2, 3, 3)
        check_gradient(lambda x: conv2d(x, w, None, stride=1, pad=1), RNG.normal(size=(1, 3, 5, 5)))

    def test_weight_gradient(self):
        x = Tensor(RNG.normal(size=(2, 2, 5, 5)))
        check_gradient(lambda w: conv2d(x, w, None, stride=1, pad=0), RNG.normal(size=(3, 2, 3, 3)))

    def test_bias_gradient(self):
        x = Tensor(RNG.normal(size=(2, 2, 5, 5)))
        w = _weights(3, 2, 3)
        check_gradient(lambda b: conv2d(x, w, b, stride=1, pad=0), RNG.normal(size=3))

    def test_strided_input_gradient(self):
        w = _weights(2, 1, 3)
        check_gradient(lambda x: conv2d(x, w, None, stride=2, pad=1), RNG.normal(size=(1, 1, 6, 6)))

    def test_channel_mismatch_raises(self):
        x = Tensor(RNG.normal(size=(1, 3, 5, 5)))
        w = _weights(2, 4, 3)
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_naive_gradient_matches_fast(self):
        x1 = Tensor(RNG.normal(size=(1, 2, 5, 5)), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        w1 = Parameter(RNG.normal(size=(2, 2, 3, 3)))
        w2 = Parameter(w1.data.copy())
        conv2d(x1, w1, None, 1, 1).sum().backward()
        conv2d_naive(x2, w2, None, 1, 1).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-6)
        np.testing.assert_allclose(w1.grad, w2.grad, rtol=1e-6)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool_fd_gradient(self):
        data = RNG.normal(size=(1, 2, 6, 6))
        check_gradient(lambda x: max_pool2d(x, 2), data)

    def test_max_pool_overlapping_stride(self):
        data = RNG.normal(size=(1, 1, 5, 5))
        out = max_pool2d(Tensor(data), 3, stride=1)
        assert out.shape == (1, 1, 3, 3)
        check_gradient(lambda x: max_pool2d(x, 3, stride=1), data)

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self):
        check_gradient(lambda x: avg_pool2d(x, 2), RNG.normal(size=(1, 2, 4, 4)))

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))
        check_gradient(global_avg_pool2d, x)


class TestSamePadding:
    """§2.2.4: asymmetric-padding conventions differ across frameworks."""

    def test_output_size_is_ceil(self):
        from repro.framework import conv2d_same

        x = Tensor(RNG.normal(size=(1, 2, 9, 9)))
        w = _weights(4, 2, 3)
        out = conv2d_same(x, w, stride=2)
        assert out.shape == (1, 4, 5, 5)

    def test_conventions_agree_when_padding_symmetric(self):
        from repro.framework import conv2d_same

        # stride 1, odd kernel: SAME padding is symmetric -> identical.
        x = Tensor(RNG.normal(size=(1, 2, 8, 8)))
        w = _weights(3, 2, 3)
        tf = conv2d_same(x, w, stride=1, convention="tf")
        torch_port = conv2d_same(x, w, stride=1, convention="torch_port")
        np.testing.assert_allclose(tf.data, torch_port.data, rtol=1e-6)

    def test_conventions_differ_when_padding_asymmetric(self):
        """Identical weights, different outputs — the porting pitfall."""
        from repro.framework import conv2d_same

        # stride 2 over an even extent with a 3x3 kernel: 1 pixel of
        # padding must land on one side only.
        x = Tensor(RNG.normal(size=(1, 2, 8, 8)))
        w = _weights(3, 2, 3)
        tf = conv2d_same(x, w, stride=2, convention="tf")
        torch_port = conv2d_same(x, w, stride=2, convention="torch_port")
        assert tf.shape == torch_port.shape
        assert not np.allclose(tf.data, torch_port.data, atol=1e-4)

    def test_gradients_flow(self):
        from repro.framework import conv2d_same

        x = Tensor(RNG.normal(size=(1, 2, 8, 8)), requires_grad=True)
        w = _weights(3, 2, 3)
        conv2d_same(x, w, stride=2).sum().backward()
        assert x.grad is not None
        assert w.grad is not None

    def test_unknown_convention(self):
        from repro.framework import conv2d_same

        x = Tensor(RNG.normal(size=(1, 2, 8, 8)))
        w = _weights(3, 2, 3)
        with pytest.raises(ValueError):
            conv2d_same(x, w, convention="mxnet")
