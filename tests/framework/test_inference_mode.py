"""inference_mode: forward-only serving semantics (no tape, bit-identical)."""

import numpy as np
import pytest

from repro.framework import (
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    ReLU,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
)


def _tiny_net(seed: int = 0) -> Module:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 3, rng))


class TestInferenceMode:
    def test_flags_and_nesting(self):
        assert not is_inference_mode()
        with inference_mode():
            assert is_inference_mode()
            assert not is_grad_enabled()
        assert not is_inference_mode()
        assert is_grad_enabled()

    def test_restores_no_grad_state(self):
        # Entering inference_mode inside no_grad must restore no_grad's
        # state on exit, not blindly re-enable grads.
        with no_grad():
            with inference_mode():
                pass
            assert not is_grad_enabled()
            assert not is_inference_mode()

    def test_forward_bit_identical_to_training_mode(self):
        net = _tiny_net()
        x = np.random.default_rng(1).normal(size=(5, 4))
        train_out = net(Tensor(x)).data.copy()
        with inference_mode():
            serve_out = net(Tensor(x)).data
        np.testing.assert_array_equal(serve_out, train_out)

    def test_no_tape_nodes_recorded(self):
        net = _tiny_net()
        x = Tensor(np.ones((2, 4)))
        with inference_mode():
            out = net(x)
        assert out._prev == ()
        assert out._backward is None
        assert not out.requires_grad

    def test_requires_grad_never_propagates(self):
        with inference_mode():
            t = Tensor(np.ones(3), requires_grad=True)
            assert not t.requires_grad
            p = Parameter(np.ones(3))
            assert not p.requires_grad

    def test_parameter_requires_grad_under_plain_no_grad(self):
        # no_grad suppresses taping but Parameters stay trainable weights;
        # only the stronger inference mode flips them off.
        with no_grad():
            assert Parameter(np.ones(2)).requires_grad

    def test_backward_raises(self):
        net = _tiny_net()
        with inference_mode():
            out = net(Tensor(np.ones((2, 4))))
            with pytest.raises(RuntimeError, match="inference_mode"):
                out.sum().backward()

    def test_model_built_inside_mode_stays_gradless_outside(self):
        with inference_mode():
            net = _tiny_net()
        assert all(not p.requires_grad for p in net.parameters())
        out = net(Tensor(np.ones((2, 4))))
        # Nothing requires grad, so the forward graph stays empty even in
        # training mode — a serving model carries no bookkeeping anywhere.
        assert not out.requires_grad
