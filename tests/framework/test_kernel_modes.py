"""Bit-identity of the ``reuse``/``fused`` kernel modes vs the naive path.

The kernel modes are the framework's executable version of §2.2.4: the
arena/fused implementations must be *mathematically identical* to the
reference, not merely close — so every assertion here is ``array_equal``
(bitwise), never ``allclose``.  Shapes are chosen to be awkward on
purpose: stride 2, asymmetric SAME padding, batches that don't divide the
dataset, inputs that aren't square.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import (
    ArrayDataset,
    DataLoader,
    Parameter,
    SGD,
    Tensor,
    avg_pool2d,
    conv2d,
    conv2d_bias_relu,
    conv2d_same,
    kernel_mode,
    linear_bias_act,
    max_pool2d,
    no_grad,
    set_kernel_mode,
    use_kernel_mode,
)
from repro.framework.workspace import arena

RNG = np.random.default_rng(0)

MODES = ("reuse", "fused", "compiled")


def _conv_case(n=5, c=3, f=4, h=9, w=7, k=3, dtype=np.float32):
    x = RNG.normal(size=(n, c, h, w)).astype(dtype)
    wt = (RNG.normal(size=(f, c, k, k)) * 0.2).astype(dtype)
    b = RNG.normal(size=f).astype(dtype)
    return x, wt, b


def _run_conv(mode, fn, x, wt, b, **kwargs):
    with use_kernel_mode(mode):
        xt = Tensor(x.copy(), requires_grad=True)
        wp = Parameter(wt.copy())
        bp = Parameter(b.copy()) if b is not None else None
        out = fn(xt, wp, bp, **kwargs)
        out.backward(np.ones_like(out.data))
        return out.data, xt.grad, wp.grad, None if bp is None else bp.grad


def _assert_identical(ref, got, context):
    for name, a, c in zip(("out", "x.grad", "w.grad", "b.grad"), ref, got):
        if a is None:
            assert c is None
            continue
        assert np.array_equal(a, c), f"{context}: {name} diverged"


class TestConvBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0), (3, 2)])
    def test_conv2d_matches_naive(self, mode, stride, pad):
        x, wt, b = _conv_case()
        ref = _run_conv("naive", conv2d, x, wt, b, stride=stride, pad=pad)
        got = _run_conv(mode, conv2d, x, wt, b, stride=stride, pad=pad)
        _assert_identical(ref, got, f"conv2d[{mode},s{stride},p{pad}]")

    @pytest.mark.parametrize("mode", MODES)
    def test_conv2d_no_bias(self, mode):
        x, wt, _ = _conv_case()
        ref = _run_conv("naive", conv2d, x, wt, None, stride=1, pad=1)
        got = _run_conv(mode, conv2d, x, wt, None, stride=1, pad=1)
        _assert_identical(ref, got, f"conv2d-nobias[{mode}]")

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("convention", ["tf", "torch_port"])
    def test_conv2d_same_asymmetric_pad(self, mode, convention):
        # Stride 2 over even extents forces odd total padding — the
        # asymmetric case that exercises offset bookkeeping hardest.
        x, wt, b = _conv_case(n=3, h=8, w=8)
        ref = _run_conv("naive", conv2d_same, x, wt, b, stride=2,
                        convention=convention)
        got = _run_conv(mode, conv2d_same, x, wt, b, stride=2,
                        convention=convention)
        _assert_identical(ref, got, f"conv2d_same[{mode},{convention}]")

    @pytest.mark.parametrize("mode", MODES)
    def test_conv2d_float64(self, mode):
        x, wt, b = _conv_case(dtype=np.float64)
        ref = _run_conv("naive", conv2d, x, wt, b, stride=1, pad=1)
        got = _run_conv(mode, conv2d, x, wt, b, stride=1, pad=1)
        _assert_identical(ref, got, f"conv2d-f64[{mode}]")

    def test_mixed_dtype_falls_back(self):
        # float32 input with float64 weights: no uniform dtype, so the
        # arena path must defer to the reference (values still agree).
        x, wt, b = _conv_case()
        ref = _run_conv("naive", conv2d, x, wt.astype(np.float64), b, stride=1, pad=1)
        got = _run_conv("fused", conv2d, x, wt.astype(np.float64), b, stride=1, pad=1)
        _assert_identical(ref, got, "conv2d-mixed-dtype")

    @pytest.mark.parametrize("mode", MODES)
    def test_conv2d_bias_relu_matches_composition(self, mode):
        x, wt, b = _conv_case()
        with use_kernel_mode("naive"):
            xt = Tensor(x.copy(), requires_grad=True)
            wp, bp = Parameter(wt.copy()), Parameter(b.copy())
            out = conv2d(xt, wp, bp, stride=1, pad=1).relu()
            out.backward(np.ones_like(out.data))
            ref = (out.data, xt.grad, wp.grad, bp.grad)
        got = _run_conv(mode, conv2d_bias_relu, x, wt, b, stride=1, pad=1)
        _assert_identical(ref, got, f"conv2d_bias_relu[{mode}]")

    def test_eval_mode_releases_all_scratch(self):
        x, wt, b = _conv_case()
        ws = arena()
        with use_kernel_mode("fused"), no_grad():
            before = ws.live_count
            conv2d_bias_relu(Tensor(x), Parameter(wt), Parameter(b), stride=1, pad=1)
            assert ws.live_count == before


class TestPoolBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("kernel,stride", [(2, None), (3, 1), (2, 2)])
    @pytest.mark.parametrize("pool", [max_pool2d, avg_pool2d])
    def test_pool_matches_naive(self, mode, kernel, stride, pool):
        x = RNG.normal(size=(4, 3, 8, 6)).astype(np.float32)
        results = {}
        for m in ("naive", mode):
            with use_kernel_mode(m):
                xt = Tensor(x.copy(), requires_grad=True)
                out = pool(xt, kernel, stride)
                out.backward(np.ones_like(out.data))
                results[m] = (out.data, xt.grad)
        for a, c in zip(results["naive"], results[mode]):
            assert np.array_equal(a, c)


class TestLinearBitIdentity:
    @pytest.mark.parametrize("shape", [(6, 5), (2, 3, 5)])
    @pytest.mark.parametrize("act", ["none", "relu"])
    @pytest.mark.parametrize("use_bias", [True, False])
    def test_linear_bias_act_matches_naive(self, shape, act, use_bias):
        x = RNG.normal(size=shape).astype(np.float64)
        wt = RNG.normal(size=(4, shape[-1])).astype(np.float64)
        b = RNG.normal(size=4).astype(np.float64) if use_bias else None
        g = RNG.normal(size=shape[:-1] + (4,)).astype(np.float64)
        results = {}
        for mode in ("naive", "fused"):
            with use_kernel_mode(mode):
                xt = Tensor(x.copy(), requires_grad=True)
                wp = Parameter(wt.copy())
                bp = Parameter(b.copy()) if use_bias else None
                out = linear_bias_act(xt, wp, bp, act=act)
                out.backward(g.copy())
                results[mode] = (out.data, xt.grad, wp.grad,
                                 None if bp is None else bp.grad)
        _assert_identical(results["naive"], results["fused"],
                          f"linear[{shape},{act},bias={use_bias}]")

    def test_invalid_act_raises(self):
        with pytest.raises(ValueError):
            linear_bias_act(Tensor(np.zeros((2, 3))), Parameter(np.zeros((4, 3))),
                            act="gelu")


class TestSGDBitIdentity:
    @pytest.mark.parametrize("style", ["torch", "caffe"])
    @pytest.mark.parametrize("momentum,wd", [(0.0, 0.0), (0.9, 0.0), (0.9, 1e-3),
                                             (0.0, 1e-3)])
    def test_sgd_matches_naive(self, style, momentum, wd):
        p0 = RNG.normal(size=(7, 5)).astype(np.float32)
        grads = [RNG.normal(size=(7, 5)).astype(np.float32) for _ in range(4)]
        results = {}
        for mode in ("naive", "fused"):
            with use_kernel_mode(mode):
                p = Parameter(p0.copy())
                opt = SGD([p], lr=0.1, momentum=momentum, weight_decay=wd,
                          momentum_style=style)
                for g in grads:
                    p.grad = g.copy()
                    opt.step()
                results[mode] = p.data
        assert np.array_equal(results["naive"], results["fused"])


class TestDataLoaderModes:
    def test_reuse_buffers_same_values(self):
        images = RNG.normal(size=(20, 2, 4, 4)).astype(np.float32)
        labels = np.arange(20)
        ds = ArrayDataset(images, labels)
        with use_kernel_mode("naive"):
            ref = [(x.copy(), y.copy())
                   for x, y in DataLoader(ds, 8, seed=3, drop_last=True)]
        with use_kernel_mode("fused"):
            got = [(x.copy(), y.copy())
                   for x, y in DataLoader(ds, 8, seed=3, drop_last=True,
                                          reuse_buffers=True)]
        for (rx, ry), (gx, gy) in zip(ref, got):
            assert np.array_equal(rx, gx) and np.array_equal(ry, gy)

    def test_reuse_buffers_recycles_storage(self):
        ds = ArrayDataset(np.arange(32, dtype=np.float32))
        with use_kernel_mode("fused"):
            loader = DataLoader(ds, 8, seed=0, reuse_buffers=True)
            batches = list(iter(loader))
        assert all(b is batches[0] for b in batches)

    def test_zero_copy_views_when_sequential(self):
        arr = np.arange(12, dtype=np.float32)
        ds = ArrayDataset(arr)
        with use_kernel_mode("fused"):
            batch = next(iter(DataLoader(ds, 4, shuffle=False)))
        assert np.shares_memory(batch, arr)
        with use_kernel_mode("naive"):
            batch = next(iter(DataLoader(ds, 4, shuffle=False)))
        assert not np.shares_memory(batch, arr)


class TestConfig:
    def test_default_mode_is_valid(self):
        assert kernel_mode() in ("naive", "reuse", "fused", "compiled")

    def test_set_and_restore(self):
        original = kernel_mode()
        previous = set_kernel_mode("naive")
        assert previous == original
        assert kernel_mode() == "naive"
        set_kernel_mode(original)

    def test_use_kernel_mode_restores_on_error(self):
        original = kernel_mode()
        with pytest.raises(RuntimeError):
            with use_kernel_mode("naive"):
                raise RuntimeError("boom")
        assert kernel_mode() == original

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            set_kernel_mode("turbo")
