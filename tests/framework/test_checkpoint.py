"""Checkpointing: exact state capture and bit-exact training resume."""

import numpy as np
import pytest

from repro.framework import Adam, LARS, Linear, ReLU, SGD, Sequential, Tensor, functional as F
from repro.framework.checkpoint import load_checkpoint, save_checkpoint


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 12, rng), ReLU(), Linear(12, 3, rng))


def train_steps(model, opt, steps, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = rng.normal(size=(16, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=16)
        loss = F.cross_entropy(model(Tensor(x)), y)
        model.zero_grad()
        loss.backward()
        opt.step()


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path):
        model = make_model(1)
        path = save_checkpoint(tmp_path / "ckpt", model)
        assert path.suffix == ".npz"
        other = make_model(2)
        load_checkpoint(path, other)
        for (na, pa), (nb, pb) in zip(model.named_parameters(), other.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_metadata_roundtrip(self, tmp_path):
        model = make_model()
        path = save_checkpoint(tmp_path / "c", model, metadata={"epoch": 7, "quality": 0.93})
        meta = load_checkpoint(path, make_model())
        assert int(meta["epoch"]) == 7
        assert float(meta["quality"]) == pytest.approx(0.93)

    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (Adam, {"lr": 1e-3}),
        (LARS, {"lr": 0.1, "momentum": 0.9}),
    ])
    def test_resume_is_bit_exact(self, tmp_path, opt_cls, kwargs):
        """Train 5+5 with a checkpoint at step 5 == train 10 straight."""
        # Straight run.
        model_a = make_model(3)
        opt_a = opt_cls(model_a.parameters(), **kwargs)
        train_steps(model_a, opt_a, 5, seed=10)
        train_steps(model_a, opt_a, 5, seed=11)

        # Checkpointed run.
        model_b = make_model(3)
        opt_b = opt_cls(model_b.parameters(), **kwargs)
        train_steps(model_b, opt_b, 5, seed=10)
        path = save_checkpoint(tmp_path / "mid", model_b, opt_b)

        model_c = make_model(99)  # different init, fully restored below
        opt_c = opt_cls(model_c.parameters(), **kwargs)
        load_checkpoint(path, model_c, opt_c)
        train_steps(model_c, opt_c, 5, seed=11)

        for pa, pc in zip(model_a.parameters(), model_c.parameters()):
            np.testing.assert_array_equal(pa.data, pc.data)

    def test_lr_and_step_count_restored(self, tmp_path):
        model = make_model(4)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        train_steps(model, opt, 3)
        opt.lr = 0.01  # simulate a schedule change
        path = save_checkpoint(tmp_path / "s", model, opt)

        model2 = make_model(4)
        opt2 = SGD(model2.parameters(), lr=999.0, momentum=0.9)
        load_checkpoint(path, model2, opt2)
        assert opt2.lr == pytest.approx(0.01)
        assert opt2.step_count == 3

    def test_shape_mismatch_rejected(self, tmp_path):
        model = make_model()
        path = save_checkpoint(tmp_path / "m", model)
        rng = np.random.default_rng(0)
        wrong = Sequential(Linear(5, 12, rng), ReLU(), Linear(12, 3, rng))
        with pytest.raises(ValueError):
            load_checkpoint(path, wrong)
