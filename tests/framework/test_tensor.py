"""Autograd correctness: every primitive against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.framework import Tensor, no_grad, is_grad_enabled
from tests.helpers import check_gradient

RNG = np.random.default_rng(42)


def randn(*shape):
    return RNG.normal(size=shape)


class TestArithmetic:
    def test_add_same_shape(self):
        b = Tensor(randn(3, 4))
        check_gradient(lambda x: x + b, randn(3, 4))

    def test_add_broadcast(self):
        b = Tensor(randn(4))
        check_gradient(lambda x: x + b, randn(3, 4))

    def test_add_broadcast_grad_into_small(self):
        a = Tensor(randn(3, 4))
        check_gradient(lambda x: a + x, randn(4))

    def test_radd_scalar(self):
        check_gradient(lambda x: 2.0 + x, randn(3))

    def test_sub(self):
        b = Tensor(randn(3, 4))
        check_gradient(lambda x: x - b, randn(3, 4))

    def test_rsub(self):
        check_gradient(lambda x: 1.0 - x, randn(5))

    def test_mul_broadcast(self):
        b = Tensor(randn(1, 4))
        check_gradient(lambda x: x * b, randn(3, 4))

    def test_div(self):
        b = Tensor(np.abs(randn(3, 4)) + 1.0)
        check_gradient(lambda x: x / b, randn(3, 4))

    def test_div_denominator_grad(self):
        a = Tensor(randn(3, 4))
        check_gradient(lambda x: a / x, np.abs(randn(3, 4)) + 1.0)

    def test_rtruediv(self):
        check_gradient(lambda x: 2.0 / x, np.abs(randn(4)) + 1.0)

    def test_neg(self):
        check_gradient(lambda x: -x, randn(3, 4))

    def test_pow(self):
        check_gradient(lambda x: x**3, randn(3, 4))

    def test_pow_fractional(self):
        check_gradient(lambda x: x**0.5, np.abs(randn(3, 4)) + 0.5)


class TestMatmul:
    def test_2d_2d(self):
        b = Tensor(randn(4, 5))
        check_gradient(lambda x: x @ b, randn(3, 4))

    def test_2d_2d_rhs_grad(self):
        a = Tensor(randn(3, 4))
        check_gradient(lambda x: a @ x, randn(4, 5))

    def test_batched(self):
        b = Tensor(randn(2, 4, 5))
        check_gradient(lambda x: x @ b, randn(2, 3, 4))

    def test_batched_broadcast_lhs(self):
        b = Tensor(randn(2, 4, 5))
        check_gradient(lambda x: x @ b, randn(4, 5)[:4, :4].reshape(4, 4)[:, :4])

    def test_vector_dot(self):
        b = Tensor(randn(4))
        check_gradient(lambda x: x @ b, randn(4))

    def test_matrix_vector(self):
        b = Tensor(randn(4))
        check_gradient(lambda x: x @ b, randn(3, 4))

    def test_vector_matrix(self):
        b = Tensor(randn(4, 5))
        check_gradient(lambda x: x @ b, randn(4))

    def test_broadcast_batch_rhs_grad(self):
        a = Tensor(randn(2, 3, 4))
        check_gradient(lambda x: a @ x, randn(4, 5))


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_unary(self, op):
        if op in ("log", "sqrt"):
            data = np.abs(randn(3, 4)) + 0.5
        elif op in ("relu", "abs"):
            data = randn(3, 4) + 0.05  # avoid kink at 0
        else:
            data = randn(3, 4)
        check_gradient(lambda x: getattr(x, op)(), data)

    def test_clip(self):
        data = randn(4, 4) * 2
        data = data[(np.abs(data - 1) > 0.05) & (np.abs(data + 1) > 0.05)][:8]
        check_gradient(lambda x: x.clip(-1.0, 1.0), data)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-500.0, 0.0, 500.0]))
        y = x.sigmoid()
        assert np.all(np.isfinite(y.data))
        np.testing.assert_allclose(y.data, [0.0, 0.5, 1.0], atol=1e-12)


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), randn(3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=1), randn(3, 4))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda x: x.sum(axis=0, keepdims=True), randn(3, 4))

    def test_sum_multi_axis(self):
        check_gradient(lambda x: x.sum(axis=(1, 2)), randn(2, 3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(), randn(3, 4))

    def test_mean_axis(self):
        check_gradient(lambda x: x.mean(axis=-1), randn(3, 4))

    def test_max_all(self):
        data = randn(3, 4)
        check_gradient(lambda x: x.max(), data)

    def test_max_axis(self):
        data = randn(3, 4)
        check_gradient(lambda x: x.max(axis=1), data)

    def test_max_ties_split_evenly(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_var(self):
        check_gradient(lambda x: x.var(axis=1), randn(3, 5))


class TestShapes:
    def test_reshape(self):
        check_gradient(lambda x: x.reshape(2, 6), randn(3, 4))

    def test_reshape_minus_one(self):
        check_gradient(lambda x: x.reshape(-1), randn(3, 4))

    def test_transpose_default(self):
        check_gradient(lambda x: x.T, randn(3, 4))

    def test_transpose_axes(self):
        check_gradient(lambda x: x.transpose(2, 0, 1), randn(2, 3, 4))

    def test_swapaxes(self):
        check_gradient(lambda x: x.swapaxes(0, 2), randn(2, 3, 4))

    def test_getitem_slice(self):
        check_gradient(lambda x: x[1:3], randn(5, 4))

    def test_getitem_int(self):
        check_gradient(lambda x: x[2], randn(5, 4))

    def test_getitem_fancy_duplicates_accumulate(self):
        x = Tensor(randn(4, 2), requires_grad=True)
        y = x[np.array([0, 0, 1])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad[0], [2.0, 2.0])
        np.testing.assert_allclose(x.grad[1], [1.0, 1.0])
        np.testing.assert_allclose(x.grad[2:], 0.0)

    def test_pad(self):
        check_gradient(lambda x: x.pad(((1, 1), (0, 2))), randn(3, 4))

    def test_concat(self):
        b = Tensor(randn(2, 4))
        check_gradient(lambda x: Tensor.concat([x, b], axis=0), randn(3, 4))

    def test_concat_axis1(self):
        b = Tensor(randn(3, 2))
        check_gradient(lambda x: Tensor.concat([b, x], axis=1), randn(3, 4))

    def test_stack(self):
        b = Tensor(randn(3, 4))
        check_gradient(lambda x: Tensor.stack([x, b], axis=1), randn(3, 4))

    def test_where(self):
        cond = randn(3, 4) > 0
        b = Tensor(randn(3, 4))
        check_gradient(lambda x: Tensor.where(cond, x, b), randn(3, 4))

    def test_take_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda x: x.take_rows(idx), randn(3, 4))


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(randn(3)).backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        y.backward()
        first = x.grad.copy()
        y2 = (x * 2.0).sum()
        y2.backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_diamond_graph(self):
        # x used twice: d/dx (x*x + x) = 2x + 1
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain_iterative_toposort(self):
        # Deep graphs must not hit Python's recursion limit.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(randn(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._backward is None

    def test_detach(self):
        x = Tensor(randn(3), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_backward_seed_shape_validated(self):
        x = Tensor(randn(3), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(4))

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_item(self):
        assert Tensor(np.array([2.5])).item() == 2.5


class TestHypothesisProperties:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=30, deadline=None)
    def test_add_grad_is_ones(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        (x + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(
        arrays(np.float64, (3, 4), elements=st.floats(-5, 5)),
        arrays(np.float64, (3, 4), elements=st.floats(-5, 5)),
    )
    @settings(max_examples=30, deadline=None)
    def test_mul_grad_symmetry(self, a_data, b_data):
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_data)
        np.testing.assert_allclose(b.grad, a_data)

    @given(arrays(np.float64, (2, 3), elements=st.floats(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip_grad_identity(self, data):
        x = Tensor(data.copy(), requires_grad=True)
        x.reshape(6).reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays(np.float64, (3, 3), elements=st.floats(-5, 5)))
    @settings(max_examples=30, deadline=None)
    def test_sum_then_max_consistency(self, data):
        # max(x) <= sum over positive part + max: just check forward agrees with numpy
        t = Tensor(data)
        np.testing.assert_allclose(t.max().data, data.max())
        np.testing.assert_allclose(t.sum(axis=0).data, data.sum(axis=0))


class TestGradHooks:
    """register_grad_hook: the attachment point for gradient bucketing."""

    def test_hook_fires_once_with_final_grad(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        seen = []
        x.register_grad_hook(lambda t: seen.append(t.grad.copy()))
        # x is consumed twice; the hook must see the *accumulated* grad.
        ((x * 2.0) + x).sum().backward()
        assert len(seen) == 1
        np.testing.assert_array_equal(seen[0], np.full(3, 3.0))

    def test_remover_detaches_hook(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        seen = []
        remove = x.register_grad_hook(lambda t: seen.append(t))
        remove()
        x.sum().backward()
        assert seen == []

    def test_untraversed_tensor_never_fires(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        other = Tensor(np.arange(3.0), requires_grad=True)
        seen = []
        other.register_grad_hook(lambda t: seen.append(t))
        x.sum().backward()
        assert seen == []
        assert other.grad is None

    def test_fires_every_backward_pass(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        count = []
        x.register_grad_hook(lambda t: count.append(1))
        for _ in range(3):
            x.zero_grad()
            x.sum().backward()
        assert len(count) == 3

    def test_multiple_hooks_fire_in_registration_order(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        order = []
        x.register_grad_hook(lambda t: order.append("a"))
        x.register_grad_hook(lambda t: order.append("b"))
        x.sum().backward()
        assert order == ["a", "b"]
