"""Payload assembly, determinism accounting, and the smoke-gate verdicts."""

from repro.loadgen import (
    LOADGEN_SCHEMA,
    ScenarioResult,
    build_loadgen_payload,
    gate_failures,
    render_loadgen_report,
)


def _result(scenario="server", benchmark="rec", *, valid=True, checksum=111,
            max_qps=200.0, violations=()):
    return ScenarioResult(
        scenario=scenario, benchmark=benchmark, seed=0, timing="virtual",
        query_count=32, measured_count=28,
        percentiles={"p50": 0.002, "p90": 0.003, "p99": 0.004},
        achieved_qps=100.0, valid=valid, violations=list(violations),
        prediction_checksum=checksum,
        max_qps=max_qps if scenario == "server" else None,
    )


class TestBuildPayload:
    def test_checks_block_shape(self):
        payload = build_loadgen_payload(
            {"rec": [_result("single_stream"), _result("server"),
                     _result("offline")]})
        assert payload["schema"] == LOADGEN_SCHEMA
        checks = payload["checks"]
        assert checks["all_valid"] is True
        assert checks["scenario_count"] == 3
        assert checks["min_server_max_qps"] == 200.0
        # No rerun pass supplied -> determinism unproven, not "true".
        assert checks["deterministic"] is None

    def test_invalid_scenario_poisons_all_valid(self):
        payload = build_loadgen_payload(
            {"rec": [_result(valid=False, violations=["p99 too slow"])]})
        assert payload["checks"]["all_valid"] is False

    def test_min_over_server_max_qps(self):
        payload = build_loadgen_payload({
            "rec": [_result("server", max_qps=200.0)],
            "img": [_result("server", benchmark="img", max_qps=80.0)],
        })
        assert payload["checks"]["min_server_max_qps"] == 80.0

    def test_identical_rerun_is_deterministic(self):
        runs = {"rec": [_result("server")]}
        payload = build_loadgen_payload(runs, {"rec": [_result("server")]})
        assert payload["checks"]["deterministic"] is True
        assert payload["benchmarks"]["rec"]["server"]["rerun_identical"]

    def test_checksum_divergence_breaks_determinism(self):
        payload = build_loadgen_payload(
            {"rec": [_result(checksum=111)]},
            {"rec": [_result(checksum=222)]})
        assert payload["checks"]["deterministic"] is False

    def test_wall_timing_tolerates_latency_jitter(self):
        base, rerun = _result(), _result()
        rerun.percentiles = {"p50": 0.0021, "p90": 0.003, "p99": 0.004}
        same_wall = build_loadgen_payload(
            {"rec": [base]}, {"rec": [rerun]}, timing="wall")
        assert same_wall["checks"]["deterministic"] is True  # checksum matched
        same_virtual = build_loadgen_payload(
            {"rec": [base]}, {"rec": [rerun]}, timing="virtual")
        assert same_virtual["checks"]["deterministic"] is False

    def test_rerun_of_unknown_scenario_is_nondeterministic(self):
        payload = build_loadgen_payload(
            {"rec": [_result("server")]}, {"rec": [_result("offline")]})
        assert payload["checks"]["deterministic"] is False


class TestGateFailures:
    def test_clean_payload_passes(self):
        payload = build_loadgen_payload(
            {"rec": [_result("server")]}, {"rec": [_result("server")]})
        assert gate_failures(payload) == []

    def test_violations_surface_with_location(self):
        payload = build_loadgen_payload(
            {"rec": [_result(valid=False, violations=["p99 too slow"])]})
        failures = gate_failures(payload)
        assert any("rec/server: p99 too slow" in f for f in failures)

    def test_nondeterminism_fails_gate(self):
        payload = build_loadgen_payload(
            {"rec": [_result(checksum=1)]}, {"rec": [_result(checksum=2)]})
        assert any("rerun diverged" in f for f in gate_failures(payload))

    def test_zero_max_qps_fails_gate(self):
        payload = build_loadgen_payload({"rec": [_result(max_qps=0.0)]})
        assert any("no sustainable rate" in f for f in gate_failures(payload))


class TestRender:
    def test_table_lists_every_scenario(self):
        payload = build_loadgen_payload(
            {"rec": [_result("single_stream"), _result("server"),
                     _result("offline")]})
        text = render_loadgen_report(payload)
        for scenario in ("single_stream", "server", "offline"):
            assert scenario in text
        assert "VALID" in text
        assert "min_server_max_qps=200.0" in text

    def test_invalid_marked(self):
        payload = build_loadgen_payload({"rec": [_result(valid=False)]})
        assert "INVALID" in render_loadgen_report(payload)
