"""Query streams and percentile math: closed-form checks and determinism."""

import numpy as np
import pytest

from repro.loadgen import (
    ConstraintSpec,
    ScenarioSpec,
    default_scenarios,
    make_queries,
    percentile,
)
from repro.loadgen.scenarios import SCENARIO_NAMES


class TestPercentile:
    """Nearest-rank estimator against known closed forms."""

    def test_uniform_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 90) == 90
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_windows(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0
        # n=4: ceil(.5*4)=2nd, ceil(.9*4)=4th element of the sorted data.
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.0
        assert percentile([4.0, 1.0, 3.0, 2.0], 90) == 4.0

    def test_result_is_always_observed_value(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=37).tolist()
        for p in (1, 25, 50, 75, 90, 99, 100):
            assert percentile(values, p) in values

    def test_tiny_percentile_clamps_to_first_rank(self):
        assert percentile([5.0, 1.0, 3.0], 0.001) == 1.0

    def test_empty_window_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)


class TestMakeQueries:
    def _server_spec(self, n=64, qps=50.0):
        return ScenarioSpec(scenario="server", query_count=n, target_qps=qps)

    def test_same_seed_bit_identical(self):
        spec = self._server_spec()
        a = make_queries(spec, pool_size=100, seed=7)
        b = make_queries(spec, pool_size=100, seed=7)
        assert a == b  # frozen dataclasses: exact index AND arrival equality

    def test_different_seed_differs(self):
        spec = self._server_spec()
        a = make_queries(spec, pool_size=100, seed=7)
        b = make_queries(spec, pool_size=100, seed=8)
        assert a != b

    def test_scenarios_draw_from_distinct_streams(self):
        specs = {
            "single_stream": ScenarioSpec("single_stream", 64),
            "server": self._server_spec(),
            "offline": ScenarioSpec("offline", 64),
        }
        streams = {
            name: [q.index for q in make_queries(spec, 100, seed=0)]
            for name, spec in specs.items()
        }
        assert streams["single_stream"] != streams["server"]
        assert streams["server"] != streams["offline"]

    def test_poisson_arrivals_increase(self):
        queries = make_queries(self._server_spec(n=256, qps=200.0), 10, seed=3)
        arrivals = [q.issue_s for q in queries]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        # Mean inter-arrival ~ 1/qps; generous 3x band just guards units.
        mean_gap = arrivals[-1] / len(arrivals)
        assert 1 / 600.0 < mean_gap < 3 / 200.0

    def test_non_server_arrivals_all_zero(self):
        for scenario in ("single_stream", "offline"):
            spec = ScenarioSpec(scenario=scenario, query_count=16)
            assert all(q.issue_s == 0.0 for q in make_queries(spec, 10, 0))

    def test_indices_stay_in_pool(self):
        queries = make_queries(self._server_spec(n=512), pool_size=3, seed=1)
        assert {q.index for q in queries} <= {0, 1, 2}

    def test_bad_pool_size_raises(self):
        with pytest.raises(ValueError, match="pool_size"):
            make_queries(self._server_spec(), pool_size=0, seed=0)


class TestSpecValidation:
    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSpec(scenario="multistream", query_count=8)

    def test_server_needs_positive_qps(self):
        with pytest.raises(ValueError, match="target_qps"):
            ScenarioSpec(scenario="server", query_count=8)
        with pytest.raises(ValueError, match="target_qps"):
            ScenarioSpec(scenario="server", query_count=8, target_qps=0.0)

    def test_warmup_must_leave_a_window(self):
        with pytest.raises(ValueError, match="warmup"):
            ScenarioSpec(scenario="offline", query_count=8, warmup_queries=8)

    def test_constraint_bounds(self):
        with pytest.raises(ValueError, match="latency_percentile"):
            ConstraintSpec(latency_percentile=0.0)
        with pytest.raises(ValueError, match="latency_bound_s"):
            ConstraintSpec(latency_bound_s=-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            ConstraintSpec(min_qps=-1.0)

    def test_at_qps_retargets_only_rate(self):
        spec = ScenarioSpec(scenario="server", query_count=8, target_qps=10.0)
        probed = spec.at_qps(250.0)
        assert probed.target_qps == 250.0
        assert probed.query_count == spec.query_count
        assert probed.constraint == spec.constraint

    def test_default_scenarios_cover_all_three(self):
        specs = default_scenarios(query_count=32, warmup_queries=2)
        assert set(specs) == set(SCENARIO_NAMES)
        assert specs["single_stream"].constraint.latency_percentile == 90.0
        assert specs["server"].constraint.latency_percentile == 99.0
        assert specs["offline"].constraint.latency_bound_s is None
        assert all(s.query_count == 32 for s in specs.values())
