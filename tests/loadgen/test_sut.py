"""SUT rehydration from artifacts, the serving pool, and end-to-end serving."""

import numpy as np
import pytest

from repro.core import BenchmarkRunner, FakeClock
from repro.core.artifacts import save_run_result
from repro.loadgen import (
    ScenarioSpec,
    ServingPool,
    load_sut,
    run_scenario,
    train_and_save,
    virtual_service_times,
)
from repro.loadgen.sut import InferenceAdapter, serving_pool_available
from tests.core.fakes import FakeBenchmark


@pytest.fixture(scope="module")
def rec_artifact(tmp_path_factory):
    """One short trained recommendation run, shared across this module."""
    path = tmp_path_factory.mktemp("serve") / "result_0.txt"
    return train_and_save("recommendation", path, seed=0, max_epochs=1)


class TestVirtualServiceTimes:
    def test_same_seed_bit_identical(self):
        np.testing.assert_array_equal(virtual_service_times(64, 3),
                                      virtual_service_times(64, 3))

    def test_streams_and_salts_decorrelate(self):
        base = virtual_service_times(64, 3)
        assert not np.array_equal(base, virtual_service_times(64, 4))
        assert not np.array_equal(base, virtual_service_times(64, 3, stream=1))
        assert not np.array_equal(base, virtual_service_times(64, 3, salt=9))

    def test_positive_and_scaled(self):
        times = virtual_service_times(4096, 0, base_s=1e-3, sigma=0.1)
        assert (times > 0).all()
        assert 0.5e-3 < float(np.median(times)) < 2e-3


class TestLoadSut:
    def test_rehydrated_model_serves(self, rec_artifact):
        with load_sut(rec_artifact) as sut:
            assert sut.info.benchmark == "recommendation"
            assert sut.pool_size > 0
            out = sut.predict(np.arange(8))
            assert out.shape == (8,)
            assert out.dtype == np.float64

    def test_predictions_reproduce_across_loads(self, rec_artifact):
        with load_sut(rec_artifact) as a, load_sut(rec_artifact) as b:
            idx = np.arange(16)
            np.testing.assert_array_equal(a.predict(idx), b.predict(idx))

    def test_serving_params_carry_no_grad(self, rec_artifact):
        with load_sut(rec_artifact) as sut:
            model = sut._session.model
            assert all(not p.requires_grad for p in model.parameters())

    def test_artifact_without_params_rejected(self, rec_artifact, tmp_path):
        from repro.core.artifacts import load_run_result

        result = load_run_result(rec_artifact)
        result.model_state = None
        bare = save_run_result(tmp_path / "result_bare.txt", result)
        with pytest.raises(ValueError, match="no trained parameters"):
            load_sut(bare)

    def test_benchmark_without_adapter_rejected(self, tmp_path):
        clock = FakeClock()
        run = BenchmarkRunner(clock=clock).run(FakeBenchmark(clock=clock),
                                               seed=0)
        run.model_state = {"w": np.ones(3)}
        path = save_run_result(tmp_path / "result_fake.txt", run)
        with pytest.raises(ValueError, match="no serving adapter"):
            load_sut(path)


class TestEndToEndServing:
    def test_same_seed_serving_runs_bit_identical(self, rec_artifact):
        spec = ScenarioSpec(scenario="server", query_count=32,
                            warmup_queries=4, target_qps=100.0)
        payloads = []
        for _ in range(2):  # fresh SUT each pass: covers load+serve
            with load_sut(rec_artifact) as sut:
                payloads.append(
                    run_scenario(sut, spec, seed=0,
                                 timing="virtual").to_payload())
        assert payloads[0] == payloads[1]

    def test_all_scenarios_produce_percentiles(self, rec_artifact):
        with load_sut(rec_artifact) as sut:
            for scenario in ("single_stream", "server", "offline"):
                spec = ScenarioSpec(
                    scenario=scenario, query_count=16,
                    target_qps=100.0 if scenario == "server" else None)
                result = run_scenario(sut, spec, timing="virtual")
                assert {"p50", "p90", "p99"} <= set(result.percentiles)
                assert result.prediction_checksum != 0


class _DoublingAdapter(InferenceAdapter):
    def __init__(self, pool_size=100):
        self.pool_size = pool_size

    def predict(self, indices):
        return np.asarray(indices, dtype=np.float64) * 2.0


class _FailingAdapter(InferenceAdapter):
    pool_size = 10

    def predict(self, indices):
        raise RuntimeError("adapter exploded")


needs_fork = pytest.mark.skipif(not serving_pool_available(),
                                reason="requires the fork start method")


@needs_fork
class TestServingPool:
    def test_matches_inline_adapter(self):
        adapter = _DoublingAdapter()
        pool = ServingPool(adapter, num_workers=2, capacity=64)
        try:
            idx = np.arange(11, dtype=np.int64)
            np.testing.assert_array_equal(pool.predict(idx),
                                          adapter.predict(idx))
        finally:
            pool.close()

    def test_empty_batch(self):
        pool = ServingPool(_DoublingAdapter(), num_workers=2, capacity=8)
        try:
            assert pool.predict(np.zeros(0, dtype=np.int64)).shape == (0,)
        finally:
            pool.close()

    def test_oversized_batch_rejected(self):
        pool = ServingPool(_DoublingAdapter(), num_workers=2, capacity=4)
        try:
            with pytest.raises(ValueError, match="exceeds pool capacity"):
                pool.predict(np.zeros(9, dtype=np.int64))
        finally:
            pool.close()

    def test_worker_error_surfaces_in_parent(self):
        pool = ServingPool(_FailingAdapter(), num_workers=1, capacity=8)
        with pytest.raises(RuntimeError, match="adapter exploded"):
            pool.predict(np.arange(4, dtype=np.int64))

    def test_predict_after_close_rejected(self):
        pool = ServingPool(_DoublingAdapter(), num_workers=1, capacity=8)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.predict(np.arange(2, dtype=np.int64))
