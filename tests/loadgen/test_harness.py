"""Harness replay, constraint verdicts, and the max-QPS binary search."""

import zlib

import numpy as np
import pytest

from repro.loadgen import (
    ConstraintSpec,
    ScenarioSpec,
    find_max_qps,
    run_scenario,
    percentile,
    virtual_service_times,
)
from repro.loadgen.harness import _verdict
from repro.loadgen.scenarios import SCENARIO_NAMES
from repro.loadgen.sut import SUTInfo


class StubSUT:
    """Just enough SUT surface for the harness: pool, predict, provenance."""

    def __init__(self, benchmark="stub", pool_size=64, workers=1):
        self.info = SUTInfo(benchmark=benchmark, seed=0, quality=1.0,
                            epochs=1, source="<memory>")
        self.pool_size = pool_size
        self.workers = workers

    def predict(self, indices):
        return np.asarray(indices, dtype=np.float64) * 2.0


class TestVerdict:
    def _spec(self, **constraint):
        return ScenarioSpec(scenario="offline", query_count=8,
                            constraint=ConstraintSpec(**constraint))

    def test_exactly_at_bound_is_valid(self):
        spec = self._spec(latency_percentile=99.0, latency_bound_s=0.05)
        valid, violations, pcts = _verdict(spec, [0.05] * 10, achieved_qps=100.0)
        assert valid and not violations
        assert pcts["p99"] == 0.05

    def test_just_over_bound_is_invalid(self):
        spec = self._spec(latency_percentile=99.0, latency_bound_s=0.05)
        valid, violations, _ = _verdict(spec, [0.05] * 9 + [0.0500001], 100.0)
        assert not valid
        assert any("exceeds" in v for v in violations)

    def test_empty_window_is_invalid(self):
        valid, violations, pcts = _verdict(self._spec(), [], achieved_qps=0.0)
        assert not valid
        assert pcts == {}
        assert any("empty measurement window" in v for v in violations)

    def test_min_qps_boundary(self):
        spec = self._spec(min_qps=50.0)
        assert _verdict(spec, [0.01] * 4, achieved_qps=50.0)[0]
        valid, violations, _ = _verdict(spec, [0.01] * 4, achieved_qps=49.9)
        assert not valid and any("below minimum" in v for v in violations)

    def test_min_queries(self):
        spec = self._spec(min_queries=5)
        assert _verdict(spec, [0.01] * 5, 1.0)[0]
        valid, violations, _ = _verdict(spec, [0.01] * 4, 1.0)
        assert not valid and any("constraint requires" in v for v in violations)

    def test_violations_accumulate(self):
        spec = self._spec(latency_percentile=50.0, latency_bound_s=0.001,
                          min_qps=1e6, min_queries=100)
        valid, violations, _ = _verdict(spec, [1.0] * 3, achieved_qps=3.0)
        assert not valid and len(violations) == 3


class TestRunScenario:
    def test_single_stream_latency_equals_service_time(self):
        sut = StubSUT()
        spec = ScenarioSpec(scenario="single_stream", query_count=32,
                            warmup_queries=4)
        result = run_scenario(sut, spec, seed=5, timing="virtual")
        service = virtual_service_times(
            32, 5, stream=SCENARIO_NAMES.index("single_stream"),
            salt=zlib.crc32(b"stub"))
        window = service[4:].tolist()
        assert result.measured_count == 28
        # latency = (arrival + s) - arrival: equal to s up to one rounding.
        for p in (50, 90, 99):
            assert result.percentiles[f"p{p}"] == pytest.approx(
                percentile(window, p), rel=1e-12)

    def test_same_seed_rerun_bit_identical(self):
        spec = ScenarioSpec(scenario="server", query_count=48,
                            warmup_queries=4, target_qps=120.0,
                            constraint=ConstraintSpec(latency_bound_s=0.1))
        a = run_scenario(StubSUT(), spec, seed=11, timing="virtual")
        b = run_scenario(StubSUT(), spec, seed=11, timing="virtual")
        assert a.to_payload() == b.to_payload()

    def test_different_benchmark_decorrelates_latencies(self):
        spec = ScenarioSpec(scenario="offline", query_count=32)
        a = run_scenario(StubSUT(benchmark="alpha"), spec, timing="virtual")
        b = run_scenario(StubSUT(benchmark="beta"), spec, timing="virtual")
        assert a.percentiles != b.percentiles

    def test_checksum_tracks_predictions(self):
        class OtherSUT(StubSUT):
            def predict(self, indices):
                return np.asarray(indices, dtype=np.float64) * 3.0

        spec = ScenarioSpec(scenario="offline", query_count=16)
        a = run_scenario(StubSUT(), spec, timing="virtual")
        b = run_scenario(OtherSUT(), spec, timing="virtual")
        assert a.prediction_checksum != b.prediction_checksum

    def test_wall_timing_measures_real_clock(self):
        spec = ScenarioSpec(scenario="offline", query_count=8)
        result = run_scenario(StubSUT(), spec, timing="wall")
        assert result.measured_count == 8
        assert all(v >= 0.0 for v in result.percentiles.values())

    def test_unknown_timing_mode_raises(self):
        spec = ScenarioSpec(scenario="offline", query_count=8)
        with pytest.raises(ValueError, match="timing"):
            run_scenario(StubSUT(), spec, timing="cpu")

    def test_warmup_discarded_from_window(self):
        spec = ScenarioSpec(scenario="offline", query_count=20,
                            warmup_queries=15)
        result = run_scenario(StubSUT(), spec, timing="virtual")
        assert result.query_count == 20
        assert result.measured_count == 5


class TestFindMaxQps:
    def _spec(self, bound=0.05, n=64):
        return ScenarioSpec(
            scenario="server", query_count=n, warmup_queries=4,
            target_qps=50.0,
            constraint=ConstraintSpec(latency_percentile=99.0,
                                      latency_bound_s=bound,
                                      min_queries=n // 2))

    def test_deterministic_same_seed(self):
        a = find_max_qps(StubSUT(), self._spec(), seed=2, timing="virtual")
        b = find_max_qps(StubSUT(), self._spec(), seed=2, timing="virtual")
        assert a == b
        assert a > 0.0

    def test_tighter_bound_lower_qps(self):
        loose = find_max_qps(StubSUT(), self._spec(bound=0.05), timing="virtual")
        tight = find_max_qps(StubSUT(), self._spec(bound=0.004), timing="virtual")
        assert tight < loose

    def test_found_rate_is_actually_sustainable(self):
        spec = self._spec(bound=0.01)
        qps = find_max_qps(StubSUT(), spec, timing="virtual")
        result = run_scenario(StubSUT(), spec.at_qps(qps), timing="virtual")
        assert result.valid, result.violations

    def test_unbounded_constraint_saturates_cap(self):
        spec = ScenarioSpec(
            scenario="server", query_count=32, target_qps=10.0,
            constraint=ConstraintSpec(latency_bound_s=None, min_queries=1))
        assert find_max_qps(StubSUT(), spec, timing="virtual",
                            hi_qps=500.0) == 500.0
