"""Trace-analysis engine: critical path, overlap, gaps, folded stacks."""

import json

import pytest

from repro.telemetry import (
    TraceAnalysis,
    analyze_campaign_dir,
    analyze_trace,
    chrome_trace_from_intervals,
    dedupe_metadata_events,
    metadata_events,
    spans_from_events,
)
from repro.telemetry.analyze import (
    TraceSpan,
    align_span_origins,
    critical_path,
    critical_path_shares,
    folded_stacks,
    overlap_stats,
    spans_from_campaign_events,
    top_gaps,
    top_spans,
)


def _span(name, start, end, pid=0, tid=0, **args):
    return TraceSpan(name=name, pid=pid, tid=tid,
                     start_us=float(start), end_us=float(end), args=args)


def _x_event(name, ts, dur, pid=0, tid=0):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": {}}


class TestSpanExtraction:
    def test_metadata_and_instants_are_skipped(self):
        events = (metadata_events(1, "worker-1", "main")
                  + [_x_event("epoch", 0, 100),
                     {"name": "mark", "ph": "i", "ts": 5, "pid": 0, "tid": 0}])
        spans = spans_from_events(events)
        assert [s.name for s in spans] == ["epoch"]

    def test_origin_alignment_shifts_each_pid_to_zero(self):
        spans = [_span("run", 1000, 1100, pid=0), _span("run", 5000, 5120, pid=1)]
        aligned = align_span_origins(spans)
        assert [(s.start_us, s.end_us) for s in aligned] == [(0, 100), (0, 120)]


class TestCriticalPath:
    def test_straggler_and_deepest_active_decomposition(self):
        spans = [
            _span("run", 0, 100, pid=0),
            # pid 1 ends latest -> the straggler.
            _span("run", 0, 120, pid=1),
            _span("epoch", 10, 60, pid=1),
            _span("step", 20, 40, pid=1),
        ]
        path = critical_path(spans)
        assert all(seg["pid"] == 1 for seg in path)
        # Segments tile [0, 120] exactly once: no double counting.
        assert sum(seg["dur_us"] for seg in path) == pytest.approx(120.0)
        shares = critical_path_shares(path)
        # run covers [0,10)+[60,120] = 70, epoch [10,20)+[40,60) = 30, step 20.
        assert shares["run"] == pytest.approx(70 / 120)
        assert shares["epoch"] == pytest.approx(30 / 120)
        assert shares["step"] == pytest.approx(20 / 120)

    def test_gap_between_roots_is_charged_to_gap(self):
        spans = [_span("a", 0, 10), _span("b", 30, 40)]
        path = critical_path(spans)
        assert [seg["name"] for seg in path] == ["a", "(gap)", "b"]
        assert path[1]["dur_us"] == pytest.approx(20.0)

    def test_path_is_deterministic(self):
        spans = [_span("run", 0, 100, pid=p) for p in (3, 1, 2)]
        spans += [_span("epoch", 10, 50, pid=2), _span("epoch", 20, 80, pid=1)]
        assert critical_path(spans) == critical_path(list(reversed(spans)))


class TestOverlap:
    def test_fraction_measures_hidden_comms(self):
        spans = [
            _span("worker_grad", 0, 30, pid=0),
            # 10 of the 30us of all_reduce overlap compute.
            _span("all_reduce", 20, 50, pid=0),
        ]
        stats = overlap_stats(spans)
        assert stats["comms_us"] == pytest.approx(30.0)
        assert stats["overlap_us"] == pytest.approx(10.0)
        assert stats["fraction"] == pytest.approx(1 / 3)

    def test_enclosing_phases_do_not_count_as_compute(self):
        # An epoch span always contains its all_reduce; only leaf compute
        # (worker_grad/forward/backward) may claim the overlap.
        spans = [_span("epoch", 0, 100), _span("all_reduce", 10, 20)]
        assert overlap_stats(spans)["fraction"] == 0.0

    def test_no_comms_means_no_fraction(self):
        assert overlap_stats([_span("forward", 0, 5)])["fraction"] is None


class TestAggregates:
    def test_top_spans_ranked_by_total(self):
        spans = [_span("epoch", 0, 50), _span("epoch", 50, 90),
                 _span("eval", 90, 100)]
        rows = top_spans(spans, k=2)
        assert [r["name"] for r in rows] == ["epoch", "eval"]
        assert rows[0]["calls"] == 2 and rows[0]["total_us"] == 90
        assert rows[0]["share_of_wall"] == pytest.approx(0.9)

    def test_top_gaps_finds_idle_between_siblings(self):
        spans = [_span("epoch", 0, 100), _span("step", 10, 20),
                 _span("step", 45, 55)]
        gaps = top_gaps(spans)
        assert len(gaps) == 1
        assert gaps[0]["parent"] == "epoch"
        assert gaps[0]["dur_us"] == pytest.approx(25.0)

    def test_folded_stacks_format_and_self_time(self):
        spans = [_span("run", 0, 100), _span("epoch", 10, 60)]
        lines = folded_stacks(spans)
        assert lines == ["pid0;run 50", "pid0;run;epoch 50"]


class TestAnalyzeTrace:
    def _doc(self):
        events = []
        for pid in (0, 1):
            base = pid * 10_000  # disjoint per-pid clocks -> auto-align
            events.append(_x_event("run", base, 100 + 20 * pid, pid=pid))
            events.append(_x_event("epoch", base + 10, 50, pid=pid))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def test_analysis_is_deterministic_and_serializable(self):
        a = analyze_trace(self._doc(), top=5)
        b = analyze_trace(self._doc(), top=5)
        assert isinstance(a, TraceAnalysis)
        assert json.dumps(a.to_payload(), sort_keys=True) == \
            json.dumps(b.to_payload(), sort_keys=True)
        payload = a.to_payload()
        assert payload["schema"] == "repro.trace_analysis.v1"
        assert payload["aligned"] is True
        assert payload["span_count"] == 4

    def test_straggler_is_the_slower_pid_after_alignment(self):
        analysis = analyze_trace(self._doc())
        assert analysis.critical_path[0]["pid"] == 1
        assert analysis.wall_us == pytest.approx(120.0)

    def test_render_mentions_key_sections(self):
        text = analyze_trace(self._doc()).render()
        assert "critical path" in text and "top spans" in text
        assert "comms/compute overlap" in text


class TestCampaignAnalysis:
    class _Event:
        def __init__(self, name, pid, time_s, **args):
            self.name, self.pid, self.time_s, self.args = name, pid, time_s, args

    def test_spans_reconstructed_from_lifecycle_events(self):
        events = [
            self._Event("run_start", 0, 100.0, benchmark="ncf", seed=3),
            self._Event("epoch", 0, 101.5, epoch=1, epoch_seconds=1.5),
            self._Event("run_stop", 0, 102.0, status="success"),
            self._Event("run_start", 1, 100.0, benchmark="ncf", seed=4),
            self._Event("epoch", 1, 103.0, epoch=1, epoch_seconds=3.0),
        ]
        spans = spans_from_campaign_events(events)
        by_name = {(s.name, s.pid): s for s in spans}
        run0 = by_name[("run:ncf", 0)]
        assert run0.dur_us == pytest.approx(2e6)
        assert "truncated" not in run0.args
        # pid 1 never stopped: closed at its last event, flagged truncated.
        run1 = by_name[("run:ncf", 1)]
        assert run1.args["truncated"] is True
        assert run1.end_us == pytest.approx(103.0 * 1e6)

    def test_campaign_dir_without_streams_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze_campaign_dir(tmp_path)

    def test_campaign_dir_end_to_end(self, tmp_path):
        events_dir = tmp_path / "events"
        events_dir.mkdir()
        lines = [
            {"name": "run_start", "pid": 0, "time_s": 10.0,
             "args": {"benchmark": "fake", "seed": 0}},
            {"name": "epoch", "pid": 0, "time_s": 11.0,
             "args": {"epoch": 1, "epoch_seconds": 1.0}},
            {"name": "run_stop", "pid": 0, "time_s": 11.5,
             "args": {"status": "success"}},
        ]
        (events_dir / "job0.jsonl").write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n")
        analysis = analyze_campaign_dir(tmp_path)
        assert analysis.span_count == 2
        # Deepest-active: epoch covers [10, 11], the run tail [11, 11.5].
        assert [seg["name"] for seg in analysis.critical_path] == \
            ["epoch", "run:fake"]


class TestMetadataCollisions:
    def test_pid_reuse_across_attempts_merges_labels(self):
        # Two attempts of the same cell share pid=3; the merged trace must
        # keep both identities on the one process row, not let merge order
        # decide which label survives.
        merged = (metadata_events(3, "ncf/0 attempt0")
                  + [_x_event("run", 0, 10, pid=3)]
                  + metadata_events(3, "ncf/0 attempt1")
                  + [_x_event("run", 20, 10, pid=3)])
        deduped = dedupe_metadata_events(merged)
        meta = [e for e in deduped if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "ncf/0 attempt0 | ncf/0 attempt1"
        # Non-metadata events all survive, in order.
        assert [e["ts"] for e in deduped if e["ph"] == "X"] == [0, 20]

    def test_exact_duplicates_collapse_without_suffix(self):
        events = metadata_events(1, "worker") + metadata_events(1, "worker")
        deduped = dedupe_metadata_events(events)
        assert len(deduped) == 1
        assert deduped[0]["args"]["name"] == "worker"

    def test_distinct_rows_are_untouched(self):
        events = (metadata_events(1, "a", "t", tid=0)
                  + metadata_events(2, "b", "t", tid=0))
        assert len(dedupe_metadata_events(events)) == 4

    def test_intervals_trace_carries_metadata(self):
        doc = chrome_trace_from_intervals(
            [("epoch", 0.0, 1.0, {})], pid=7, process_name="ncf/0")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["pid"] == 7
        assert meta[0]["args"]["name"] == "ncf/0"
        assert [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"] == ["epoch"]
