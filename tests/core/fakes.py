"""A fast, deterministic fake benchmark for exercising the harness."""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.suite.base import Benchmark, BenchmarkSpec, TrainingSession
from repro.telemetry import current_metrics, current_tracer

FAKE_SPEC = BenchmarkSpec(
    name="fake_benchmark",
    area="vision",
    dataset="FakeData",
    model="FakeNet",
    quality_metric="accuracy",
    quality_threshold=0.8,
    required_runs=5,
    max_epochs=50,
    default_hyperparameters={
        "batch_size": 32,
        "base_lr": 0.1,
        "momentum": 0.9,
        "learning_speed": 0.1,
    },
    modifiable_hyperparameters=frozenset({"batch_size", "base_lr"}),
)


class FakeSession(TrainingSession):
    """Quality follows a noisy saturating curve; optionally burns fake time."""

    def __init__(self, seed: int, hp: Mapping[str, Any], clock=None, epoch_cost_s: float = 1.0):
        self.rng = np.random.default_rng(seed)
        self.quality = 0.0
        self.speed = hp["learning_speed"]
        self.clock = clock
        self.epoch_cost_s = epoch_cost_s

    def run_epoch(self, epoch: int) -> None:
        with current_tracer().span("train_step", batch=32):
            gain = self.speed * (1.0 + 0.3 * self.rng.standard_normal())
            self.quality = min(self.quality + max(gain, 0.0), 1.0)
            if self.clock is not None:
                self.clock.advance(self.epoch_cost_s)
        current_metrics().counter("samples_seen").inc(32)

    def evaluate(self) -> float:
        return self.quality

    def eval_details(self) -> dict[str, float]:
        return {"aux_metric": self.quality / 2}


class FakeBenchmark(Benchmark):
    spec = FAKE_SPEC

    def __init__(self, clock=None, epoch_cost_s: float = 1.0):
        self.prepared = 0
        self.clock = clock
        self.epoch_cost_s = epoch_cost_s

    def prepare_data(self) -> None:
        self.prepared += 1

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        return FakeSession(seed, hyperparameters, clock=self.clock, epoch_cost_s=self.epoch_cost_s)
