"""Per-run sampled series: recording, round-trip, and the stats table."""

from repro.telemetry import RunSeries, RunTelemetry, render_series_table
from repro.telemetry.timeseries import _sparkline


class TestRunSeries:
    def test_record_and_query(self):
        series = RunSeries()
        assert not series
        series.record("eval_quality", 0.4, t_s=1.0, epoch=1)
        series.record("eval_quality", 0.8, t_s=2.0, epoch=2)
        series.record("epoch_seconds", 1.0, t_s=1.0, epoch=1)
        assert series
        assert "eval_quality" in series
        assert "missing" not in series
        assert series.names() == ["epoch_seconds", "eval_quality"]
        points = series.points("eval_quality")
        assert [(p.t_s, p.epoch, p.value) for p in points] == [
            (1.0, 1, 0.4), (2.0, 2, 0.8)]

    def test_payload_round_trip(self):
        series = RunSeries()
        series.record("examples_per_second", 320.0, t_s=1.5, epoch=1)
        series.record("examples_per_second", 340.0, t_s=3.0, epoch=2)
        payload = series.to_payload()
        assert payload == {"examples_per_second": [[1.5, 1, 320.0], [3.0, 2, 340.0]]}
        clone = RunSeries.from_payload(payload)
        assert clone.to_payload() == payload
        assert RunSeries.from_payload(None).to_payload() == {}

    def test_sparkline_shape(self):
        assert _sparkline([]) == ""
        flat = _sparkline([1.0, 1.0, 1.0])
        assert len(flat) == 3 and len(set(flat)) == 1
        rising = _sparkline([0.0, 0.5, 1.0])
        assert rising[0] == " " and rising[-1] == "@"
        assert len(_sparkline(list(range(100)))) == 16  # downsampled


class _FakeRun:
    def __init__(self, seed, series_payload):
        self.seed = seed
        self.telemetry = RunTelemetry(series=series_payload)


class TestSeriesTable:
    def test_empty(self):
        assert "no per-run series" in render_series_table({})
        # Runs without series contribute nothing.
        assert "no per-run series" in render_series_table(
            {"fake": [_FakeRun(0, {})]})

    def test_table_rows_and_ordering(self):
        run = _FakeRun(3, {
            "zzz_custom": [[1.0, 1, 5.0]],
            "eval_quality": [[1.0, 1, 0.4], [2.0, 2, 0.8]],
            "examples_per_second": [[1.0, 1, 320.0]],
        })
        table = render_series_table({"fake": [run]})
        lines = [line for line in table.splitlines() if line.startswith("fake")]
        # Standard series lead, in canonical order; extras sort after.
        names = [line.split()[2] for line in lines]
        assert names == ["examples_per_second", "eval_quality", "zzz_custom"]
        quality_row = lines[1]
        assert "0.4" in quality_row and "0.8" in quality_row
