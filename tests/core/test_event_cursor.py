"""EventCursor / HeartbeatCache: incremental tailing without re-reads.

The tentpole property pinned here: a poller (monitor --watch, the
observability server) never re-reads already-consumed JSONL bytes, never
drops or duplicates an event across truncated tails, rotations, and
atomic replaces — the crash shapes real campaign writers produce.
"""

import json
import os

import pytest

from repro.core.timing import FakeClock
from repro.telemetry import (
    Event,
    EventCursor,
    EventLog,
    HeartbeatCache,
    HeartbeatWriter,
    read_events,
)


def _event(i, t=0.0):
    return Event(name="epoch", time_s=t + i, pid=1, args={"epoch": i})


class TestIncrementalTailing:
    def test_polls_consume_only_new_events(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        cursor = EventCursor(path)
        assert cursor.poll() == []  # missing file is an empty stream

        with EventLog(path) as log:
            for i in range(3):
                log.write(_event(i))
            got = cursor.poll()
            assert [e.args["epoch"] for e in got] == [0, 1, 2]

            for i in range(3, 5):
                log.write(_event(i))
            got = cursor.poll()
            assert [e.args["epoch"] for e in got] == [3, 4]

    def test_zero_reread_of_consumed_bytes(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventLog(path) as log:
            for i in range(10):
                log.write(_event(i))
        cursor = EventCursor(path)
        cursor.poll()
        size = os.path.getsize(path)
        assert cursor.consumed_bytes == size
        # A static file costs stat calls only: consumed_bytes never grows.
        for _ in range(50):
            assert cursor.poll() == []
        assert cursor.consumed_bytes == size
        assert cursor.polls == 51

    def test_tail_matches_full_read(self, tmp_path):
        """Accumulated tail == read_events, regardless of poll cadence."""
        path = tmp_path / "stream.jsonl"
        cursor = EventCursor(path)
        seen = []
        with EventLog(path) as log:
            for i in range(23):
                log.write(_event(i))
                if i % 3 == 0:
                    seen.extend(cursor.poll())
        seen.extend(cursor.poll())
        assert seen == read_events(path)
        assert cursor.consumed_bytes == os.path.getsize(path)


class TestTruncatedTail:
    def test_partial_record_is_not_consumed_then_read_once(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        line = _event(0).to_json() + "\n"
        half = _event(1).to_json()  # no trailing newline: writer mid-record
        path.write_text(line + half[: len(half) // 2])

        cursor = EventCursor(path)
        got = cursor.poll()
        assert [e.args["epoch"] for e in got] == [0]
        assert cursor.consumed_bytes == len(line.encode())

        # The writer finishes the record; exactly one new event appears —
        # no duplicate of event 0, no drop of event 1.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(half[len(half) // 2:] + "\n")
        got = cursor.poll()
        assert [e.args["epoch"] for e in got] == [1]
        assert cursor.poll() == []

    def test_complete_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(_event(0).to_json() + "\n{not json}\n")
        cursor = EventCursor(path)
        with pytest.raises(ValueError, match="corrupt event line"):
            cursor.poll()


class TestRotation:
    def test_resume_after_truncation(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventLog(path) as log:
            for i in range(4):
                log.write(_event(i))
        cursor = EventCursor(path)
        assert len(cursor.poll()) == 4
        # Truncate-and-restart (size < offset): read from the top again.
        with EventLog(path, mode="w") as log:
            log.write(_event(99))
        got = cursor.poll()
        assert [e.args["epoch"] for e in got] == [99]

    def test_resume_after_atomic_replace(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventLog(path) as log:
            log.write(_event(0))
        cursor = EventCursor(path)
        assert len(cursor.poll()) == 1
        # os.replace gives the path a new inode; even at identical size
        # the cursor must notice and restart from byte 0.
        tmp = tmp_path / "new.jsonl"
        with EventLog(tmp, mode="w") as log:
            log.write(_event(7))
        os.replace(tmp, path)
        got = cursor.poll()
        assert [e.args["epoch"] for e in got] == [7]

    def test_deleted_then_recreated_file(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventLog(path) as log:
            log.write(_event(0))
        cursor = EventCursor(path)
        assert len(cursor.poll()) == 1
        path.unlink()
        assert cursor.poll() == []
        with EventLog(path, mode="w") as log:
            log.write(_event(1))
        assert [e.args["epoch"] for e in cursor.poll()] == [1]


class TestConcurrentWriterAndReader:
    def test_no_duplicate_or_dropped_events_under_interleaving(self, tmp_path):
        """Byte-level interleaving: the reader polls between arbitrary
        partial writes, including mid-record, and still sees the exact
        event sequence exactly once."""
        path = tmp_path / "stream.jsonl"
        payload = "".join(_event(i).to_json() + "\n" for i in range(40))
        raw = payload.encode()

        cursor = EventCursor(path)
        seen = []
        # Feed the file in awkward chunk sizes (prime-ish strides) so most
        # polls land mid-record.
        with open(path, "wb") as fh:
            pos = 0
            for stride in (1, 7, 13, 3, 31, 5) * 200:
                if pos >= len(raw):
                    break
                fh.write(raw[pos: pos + stride])
                fh.flush()
                pos += stride
                seen.extend(cursor.poll())
        seen.extend(cursor.poll())
        assert [e.args["epoch"] for e in seen] == list(range(40))
        assert cursor.consumed_bytes == len(raw)


class TestHeartbeatCache:
    def test_reparses_only_on_change(self, tmp_path):
        clock = FakeClock(start=100.0)
        path = tmp_path / "beat.json"
        writer = HeartbeatWriter(path, pid=1, benchmark="b", seed=0,
                                 clock=clock.now)
        writer.beat(status="running")
        cache = HeartbeatCache()
        first = cache.read(path)
        assert first is not None and first.time_s == 100.0
        # Unchanged file: the same parsed object comes back (no re-parse).
        assert cache.read(path) is first

        clock.advance(5.0)
        writer.beat(epoch=2)
        second = cache.read(path)
        assert second is not first and second.epoch == 2

    def test_missing_file_is_none_and_evicts(self, tmp_path):
        path = tmp_path / "beat.json"
        cache = HeartbeatCache()
        assert cache.read(path) is None
        path.write_text(json.dumps({"pid": 1, "benchmark": "b", "seed": 0,
                                    "time_s": 1.0}))
        beat = cache.read(path)
        assert beat is not None and beat.key == "b/0"
        path.unlink()
        assert cache.read(path) is None
