"""Submission artifacts: save/load roundtrip, directory review, log lint."""

import json

import numpy as np
import pytest

from repro.core import (
    BenchmarkRunner,
    Category,
    Division,
    FakeClock,
    Keys,
    Submission,
    SystemDescription,
    SystemType,
)
from repro.core.artifacts import (
    check_log_text,
    load_submission,
    review_directory,
    save_submission,
)
from tests.core.fakes import FAKE_SPEC, FakeBenchmark


@pytest.fixture()
def submission():
    clock = FakeClock()
    bench = FakeBenchmark(clock=clock)
    runner = BenchmarkRunner(clock=clock)
    runs = [runner.run(bench, seed=s) for s in range(5)]
    system = SystemDescription(
        submitter="acme",
        system_name="acme-8x",
        system_type=SystemType.CLOUD,
        num_nodes=2,
        processors_per_node=2,
        processor_type="cpu-x",
        accelerators_per_node=8,
        accelerator_type="gpu-large",
        host_memory_gb=256.0,
        interconnect="100GbE",
        software_stack={"framework": "repro"},
    )
    sub = Submission(system, Division.CLOSED, Category.AVAILABLE,
                     code_url="https://example.com/acme")
    sub.add_runs(FAKE_SPEC.name, runs)
    return sub


class TestModelStateSidecar:
    """Trained parameters round-trip through the .params.npz sidecar."""

    def _run_with_state(self):
        clock = FakeClock()
        run = BenchmarkRunner(clock=clock).run(FakeBenchmark(clock=clock), seed=3)
        run.model_state = {
            "fc.weight": np.arange(6, dtype=np.float64).reshape(2, 3),
            "fc.bias": np.array([0.5, -0.5]),
        }
        return run

    def test_roundtrip_restores_parameters(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_state()
        path = save_run_result(tmp_path / "result_0.txt", run)
        assert (tmp_path / "result_0.params.npz").exists()
        back = load_run_result(path)  # benchmark name comes from the header
        assert back.benchmark == FAKE_SPEC.name
        assert set(back.model_state) == set(run.model_state)
        for name, arr in run.model_state.items():
            np.testing.assert_array_equal(back.model_state[name], arr)

    def test_no_state_writes_no_sidecar(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_state()
        run.model_state = None
        path = save_run_result(tmp_path / "result_0.txt", run)
        assert not (tmp_path / "result_0.params.npz").exists()
        assert load_run_result(FAKE_SPEC.name, path).model_state is None

    def test_missing_sidecar_still_loads(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_state()
        path = save_run_result(tmp_path / "result_0.txt", run)
        (tmp_path / "result_0.params.npz").unlink()
        assert load_run_result(path).model_state is None

    def test_headerless_benchmark_requires_explicit_name(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_state()
        path = save_run_result(tmp_path / "result_0.txt", run)
        first, _, rest = path.read_text().partition("\n")
        header = json.loads(first[len("# repro-run "):])
        del header["benchmark"]
        path.write_text(f"# repro-run {json.dumps(header, sort_keys=True)}\n" + rest)
        with pytest.raises(ValueError, match="no benchmark name"):
            load_run_result(path)
        assert load_run_result(FAKE_SPEC.name, path).benchmark == FAKE_SPEC.name


class TestSaveLoad:
    def test_directory_layout(self, submission, tmp_path):
        base = save_submission(submission, tmp_path)
        assert (base / "systems" / "acme-8x.json").exists()
        results = base / "results" / "acme-8x" / FAKE_SPEC.name
        assert len(list(results.glob("result_*.txt"))) == 5
        assert (base / "code" / "README.md").exists()

    def test_roundtrip_preserves_submission(self, submission, tmp_path):
        base = save_submission(submission, tmp_path)
        loaded = load_submission(base)
        assert loaded.system == submission.system
        assert loaded.division == submission.division
        assert loaded.category == submission.category
        assert loaded.code_url == submission.code_url
        orig = submission.runs[FAKE_SPEC.name]
        back = loaded.runs[FAKE_SPEC.name]
        assert len(back) == len(orig)
        for a, b in zip(orig, back):
            assert a.seed == b.seed
            assert a.epochs == b.epochs
            assert a.time_to_train_s == pytest.approx(b.time_to_train_s)
            assert a.quality == pytest.approx(b.quality)
            assert a.log_lines == b.log_lines
            np.testing.assert_allclose(a.quality_history, b.quality_history)

    def test_loaded_submission_passes_review(self, submission, tmp_path):
        base = save_submission(submission, tmp_path)
        report = review_directory(base, {FAKE_SPEC.name: FAKE_SPEC})
        assert report.compliant, str(report)

    def test_tampered_file_fails_review(self, submission, tmp_path):
        base = save_submission(submission, tmp_path)
        victim = next((base / "results" / "acme-8x" / FAKE_SPEC.name).glob("result_0.txt"))
        text = victim.read_text()
        victim.write_text("\n".join(
            line for line in text.splitlines() if "eval_accuracy" not in line
        ) + "\n")
        report = review_directory(base, {FAKE_SPEC.name: FAKE_SPEC})
        assert not report.compliant

    def test_missing_system_file_rejected(self, tmp_path):
        (tmp_path / "ghost" / "systems").mkdir(parents=True)
        with pytest.raises(FileNotFoundError):
            load_submission(tmp_path / "ghost")

    def test_result_file_human_readable_header(self, submission, tmp_path):
        base = save_submission(submission, tmp_path)
        text = next((base / "results" / "acme-8x" / FAKE_SPEC.name).glob("*.txt")).read_text()
        header = json.loads(text.splitlines()[0][len("# repro-run "):])
        assert {"seed", "hyperparameters", "time_to_train_s"} <= set(header)


class TestCheckLogText:
    def good_log(self):
        clock = FakeClock()
        bench = FakeBenchmark(clock=clock)
        run = BenchmarkRunner(clock=clock).run(bench, seed=0)
        return "\n".join(run.log_lines)

    def test_clean_log_passes(self):
        assert check_log_text(self.good_log(), FAKE_SPEC) == []

    def test_empty_text(self):
        assert check_log_text("nothing here", FAKE_SPEC) == ["no MLLOG events found"]

    def test_missing_run_stop_reported(self):
        text = "\n".join(l for l in self.good_log().splitlines() if "run_stop" not in l)
        problems = check_log_text(text, FAKE_SPEC)
        assert any("run_stop" in p for p in problems)

    def test_wrong_benchmark_reported(self):
        from repro.suite import create_benchmark

        other = create_benchmark("recommendation").spec
        problems = check_log_text(self.good_log(), other)
        assert any("mismatch" in p for p in problems)

    def test_low_quality_reported(self):
        import dataclasses

        strict = dataclasses.replace(FAKE_SPEC, quality_threshold=2.0)
        problems = check_log_text(self.good_log(), strict)
        assert any("below target" in p for p in problems)


class TestRunResultMetricsRoundtrip:
    """The metrics snapshot rides in the result header for `repro stats`."""

    def _run_with_metrics(self):
        from repro.telemetry import Telemetry

        clock = FakeClock()
        bench = FakeBenchmark(clock=clock)
        runner = BenchmarkRunner(clock=clock)
        telemetry = Telemetry(clock=clock)
        with telemetry.activate():
            telemetry.metrics.counter("allreduce_elements").inc(1000)
            telemetry.metrics.counter("allreduce_bytes").inc(8000)
            return runner.run(bench, seed=0, telemetry=telemetry)

    def test_metrics_survive_save_load(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_metrics()
        path = save_run_result(tmp_path / "result_0.txt", run)
        loaded = load_run_result(run.benchmark, path)
        assert loaded.telemetry is not None
        assert loaded.telemetry.metrics["allreduce_elements"]["value"] == 1000
        assert loaded.telemetry.metrics["allreduce_bytes"]["value"] == 8000

    def test_runs_without_telemetry_load_as_none(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        clock = FakeClock()
        runner = BenchmarkRunner(clock=clock)
        run = runner.run(FakeBenchmark(clock=clock), seed=0)
        path = save_run_result(tmp_path / "result_0.txt", run)
        assert load_run_result(run.benchmark, path).telemetry is None


class TestRunResultSeriesRoundtrip:
    """Per-run sampled series persist in the header for `stats --series`."""

    def _run_with_telemetry(self):
        from repro.telemetry import Telemetry

        clock = FakeClock()
        bench = FakeBenchmark(clock=clock)
        runner = BenchmarkRunner(clock=clock)
        telemetry = Telemetry(clock=clock, events_clock=clock.now)
        return runner.run(bench, seed=0, telemetry=telemetry)

    def test_series_survive_save_load(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_telemetry()
        assert run.telemetry is not None and run.telemetry.series
        assert "eval_quality" in run.telemetry.series
        assert "epoch_seconds" in run.telemetry.series
        path = save_run_result(tmp_path / "result_0.txt", run)
        loaded = load_run_result(run.benchmark, path)
        assert loaded.telemetry.series == run.telemetry.series

    def test_truncated_final_log_line_tolerated(self, tmp_path):
        from repro.core.artifacts import load_run_result, save_run_result

        run = self._run_with_telemetry()
        path = save_run_result(tmp_path / "result_0.txt", run)
        # Simulate the writer dying mid-line on the last record.
        text = path.read_text().rstrip("\n")
        path.write_text(text[: len(text) - 15])
        loaded = load_run_result(run.benchmark, path)
        assert loaded.quality == run.quality
        assert loaded.quality_history  # earlier evals still parsed
