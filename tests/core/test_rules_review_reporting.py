"""Division rules, peer review, reporting, and the cloud scale metric."""

import numpy as np
import pytest

from repro.core import (
    ACCELERATOR_WEIGHTS,
    BenchmarkRunner,
    Category,
    Division,
    FakeClock,
    ResultsReport,
    RuleViolation,
    Submission,
    SummaryScoreRefused,
    SystemDescription,
    SystemType,
    borrow_hyperparameters,
    build_report,
    check_hyperparameters,
    cloud_scale,
    correlation_with_cost,
    review_submission,
    summary_score,
    system_cloud_scale,
)
from tests.core.fakes import FAKE_SPEC, FakeBenchmark


def make_system(**overrides):
    defaults = dict(
        submitter="acme",
        system_name="acme-8x",
        system_type=SystemType.ON_PREMISE,
        num_nodes=1,
        processors_per_node=2,
        processor_type="cpu-x",
        accelerators_per_node=8,
        accelerator_type="gpu-large",
        host_memory_gb=256.0,
        interconnect="100GbE",
    )
    defaults.update(overrides)
    return SystemDescription(**defaults)


def run_fake_benchmark(n_runs=5, **hp_overrides):
    clock = FakeClock()
    bench = FakeBenchmark(clock=clock)
    runner = BenchmarkRunner(clock=clock)
    return [
        runner.run(bench, seed=s, hyperparameter_overrides=hp_overrides or None)
        for s in range(n_runs)
    ]


class TestHyperparameterRules:
    def test_defaults_compliant(self):
        hp = dict(FAKE_SPEC.default_hyperparameters)
        assert check_hyperparameters(FAKE_SPEC, hp, Division.CLOSED) == []

    def test_modifiable_change_allowed(self):
        hp = dict(FAKE_SPEC.default_hyperparameters, batch_size=128)
        assert check_hyperparameters(FAKE_SPEC, hp, Division.CLOSED) == []

    def test_fixed_change_rejected_closed(self):
        hp = dict(FAKE_SPEC.default_hyperparameters, momentum=0.5)
        violations = check_hyperparameters(FAKE_SPEC, hp, Division.CLOSED)
        assert len(violations) == 1
        assert violations[0].rule == "fixed_hyperparameter_changed"

    def test_fixed_change_allowed_open(self):
        hp = dict(FAKE_SPEC.default_hyperparameters, momentum=0.5)
        assert check_hyperparameters(FAKE_SPEC, hp, Division.OPEN) == []

    def test_lr_scaling_allowed_with_batch_change(self):
        """The Goyal et al. rule: lr may move when batch size moves."""
        hp = dict(FAKE_SPEC.default_hyperparameters, batch_size=128, base_lr=0.4)
        assert check_hyperparameters(FAKE_SPEC, hp, Division.CLOSED) == []

    def test_unknown_hp_rejected_in_both_divisions(self):
        hp = dict(FAKE_SPEC.default_hyperparameters, secret_knob=1)
        for division in (Division.CLOSED, Division.OPEN):
            violations = check_hyperparameters(FAKE_SPEC, hp, division)
            assert any(v.rule == "unknown_hyperparameter" for v in violations)

    def test_violation_str(self):
        v = RuleViolation("b", "r", "m")
        assert "b" in str(v) and "r" in str(v)


class TestReview:
    def specs(self):
        return {FAKE_SPEC.name: FAKE_SPEC}

    def test_compliant_submission(self):
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        report = review_submission(sub, self.specs())
        assert report.compliant, str(report)

    def test_run_count_enforced(self):
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, run_fake_benchmark(3))
        report = review_submission(sub, self.specs())
        assert any(v.rule == "run_count" for v in report.violations)

    def test_duplicate_seeds_flagged(self):
        runs = run_fake_benchmark(5)
        runs[1] = runs[0]
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, self.specs())
        assert any(v.rule == "duplicate_seeds" for v in report.violations)

    def test_inconsistent_hps_flagged(self):
        runs = run_fake_benchmark(3) + run_fake_benchmark(2, batch_size=128)
        # fix seeds to be distinct
        for i, r in enumerate(runs):
            r.seed = i
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, self.specs())
        assert any(v.rule == "inconsistent_hyperparameters" for v in report.violations)

    def test_noncompliant_hp_flagged_from_runs(self):
        runs = run_fake_benchmark(5, momentum=0.1)
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, self.specs())
        assert any(v.rule == "fixed_hyperparameter_changed" for v in report.violations)

    def test_unknown_benchmark_flagged(self):
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs("made_up", run_fake_benchmark(5))
        report = review_submission(sub, self.specs())
        assert any(v.rule == "unknown_benchmark" for v in report.violations)

    def test_tampered_log_quality_flagged(self):
        runs = run_fake_benchmark(5)
        # Tamper: strip eval events from one run's log.
        runs[0].log_lines = [l for l in runs[0].log_lines if "eval_accuracy" not in l]
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, self.specs())
        assert any(v.rule == "missing_evals" for v in report.violations)

    def test_available_category_requires_availability(self):
        system = make_system(hardware_available=False)
        sub = Submission(system, Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        report = review_submission(sub, self.specs())
        assert any(v.rule == "category" for v in report.violations)

    def test_research_category_no_availability_requirement(self):
        system = make_system(hardware_available=False)
        sub = Submission(system, Division.CLOSED, Category.RESEARCH)
        sub.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        report = review_submission(sub, self.specs())
        assert report.compliant

    def test_report_str(self):
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        assert "COMPLIANT" in str(review_submission(sub, self.specs()))


class TestBorrowing:
    def test_borrows_modifiable_only(self):
        borrower = dict(FAKE_SPEC.default_hyperparameters)
        lender = dict(FAKE_SPEC.default_hyperparameters,
                      batch_size=512, base_lr=1.6, momentum=0.99)
        adopted = borrow_hyperparameters(borrower, lender, FAKE_SPEC)
        assert adopted["batch_size"] == 512
        assert adopted["base_lr"] == 1.6
        assert adopted["momentum"] == borrower["momentum"]  # fixed: not borrowed

    def test_borrowed_hps_are_compliant(self):
        lender = dict(FAKE_SPEC.default_hyperparameters, batch_size=512, base_lr=1.6)
        adopted = borrow_hyperparameters(dict(FAKE_SPEC.default_hyperparameters),
                                         lender, FAKE_SPEC)
        assert check_hyperparameters(FAKE_SPEC, adopted, Division.CLOSED) == []


class TestReporting:
    def build(self):
        sub1 = Submission(make_system(submitter="acme"), Division.CLOSED, Category.AVAILABLE)
        sub1.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        sub2 = Submission(
            make_system(submitter="zeta", system_name="zeta-c", num_nodes=2,
                        system_type=SystemType.CLOUD),
            Division.CLOSED,
            Category.AVAILABLE,
        )
        sub2.add_runs(FAKE_SPEC.name, run_fake_benchmark(5))
        return build_report([sub1, sub2])

    def test_one_row_per_system_benchmark(self):
        report = self.build()
        assert len(report.rows) == 2

    def test_fastest_lookup(self):
        report = self.build()
        fastest = report.fastest(FAKE_SPEC.name)
        assert fastest is not None
        assert fastest.time_to_train_s == min(r.time_to_train_s for r in report.rows)

    def test_cloud_scale_only_for_cloud(self):
        report = self.build()
        by_submitter = {r.submitter: r for r in report.rows}
        assert by_submitter["acme"].scale.cloud_scale is None
        assert by_submitter["zeta"].scale.cloud_scale is not None

    def test_render_contains_rows(self):
        text = self.build().render()
        assert "acme" in text and "zeta" in text and FAKE_SPEC.name in text

    def test_no_summary_score_by_design(self):
        """§4.2.4: the refusal itself is the behaviour under test."""
        with pytest.raises(SummaryScoreRefused, match="per-benchmark"):
            summary_score(self.build())

    def test_empty_benchmark_lookup(self):
        assert ResultsReport().fastest("nothing") is None


class TestCloudScale:
    def test_more_accelerators_higher_scale(self):
        a = cloud_scale(8, 64, 1, "gpu-small")
        b = cloud_scale(8, 64, 8, "gpu-small")
        assert b > a

    def test_accelerator_type_weighting(self):
        small = cloud_scale(8, 64, 4, "gpu-small")
        large = cloud_scale(8, 64, 4, "gpu-large")
        assert large > small

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            cloud_scale(8, 64, 4, "quantum")

    def test_system_cloud_scale_requires_cloud(self):
        with pytest.raises(ValueError):
            system_cloud_scale(make_system())

    def test_correlation(self):
        scales = [1.0, 2.0, 3.0, 4.0]
        prices = [10.0, 19.0, 33.0, 41.0]
        assert correlation_with_cost(scales, prices) > 0.95

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            correlation_with_cost([1.0], [2.0])

    def test_weights_cover_none(self):
        assert ACCELERATOR_WEIGHTS["none"] == 0.0


class TestTimingIntegrity:
    def test_underreported_time_flagged(self):
        runs = run_fake_benchmark(5)
        runs[0].time_to_train_s = 0.001  # claims faster than the log shows
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, {FAKE_SPEC.name: FAKE_SPEC})
        assert any(v.rule == "timing_integrity" for v in report.violations)

    def test_honest_time_passes(self):
        runs = run_fake_benchmark(5)
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, {FAKE_SPEC.name: FAKE_SPEC})
        assert not any(v.rule == "timing_integrity" for v in report.violations)

    def test_overreported_time_allowed(self):
        # Model-creation overflow may legitimately add to the run duration.
        runs = run_fake_benchmark(5)
        runs[0].time_to_train_s += 5.0
        sub = Submission(make_system(), Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(FAKE_SPEC.name, runs)
        report = review_submission(sub, {FAKE_SPEC.name: FAKE_SPEC})
        assert not any(v.rule == "timing_integrity" for v in report.violations)
