"""Structured logging and timing rules."""

import numpy as np
import pytest

from repro.core import (
    FakeClock,
    Keys,
    LogEvent,
    MLLogger,
    TrainingTimer,
    parse_log_lines,
)


class TestMLLogger:
    def test_events_timestamped_in_ms(self):
        clock = FakeClock()
        logger = MLLogger(clock)
        clock.advance(1.5)
        e = logger.event(Keys.RUN_START)
        assert e.time_ms == pytest.approx(1500.0)

    def test_roundtrip_through_text(self):
        clock = FakeClock()
        logger = MLLogger(clock)
        logger.event(Keys.SUBMISSION_BENCHMARK, "recommendation")
        logger.event(Keys.EVAL_ACCURACY, 0.61, epoch_num=3)
        lines = logger.to_lines()
        assert all(line.startswith(":::MLLOG ") for line in lines)
        parsed = MLLogger.from_lines(lines)
        assert parsed.events[0].value == "recommendation"
        assert parsed.events[1].metadata["epoch_num"] == 3
        assert parsed.events[1].value == pytest.approx(0.61)

    def test_hyperparameters_logged_sorted(self):
        logger = MLLogger(FakeClock())
        logger.hyperparameters({"b": 2, "a": (1, 2)})
        events = logger.find(Keys.HYPERPARAMETER)
        assert [e.metadata["name"] for e in events] == ["a", "b"]
        assert events[0].value == [1, 2]  # tuples scrubbed to lists

    def test_numpy_values_serializable(self):
        logger = MLLogger(FakeClock())
        logger.event(Keys.EVAL_ACCURACY, np.float64(0.5))
        assert "0.5" in logger.to_lines()[0]

    def test_find_first_last(self):
        clock = FakeClock()
        logger = MLLogger(clock)
        logger.event(Keys.EPOCH_START, 1)
        clock.advance(1)
        logger.event(Keys.EPOCH_START, 2)
        assert logger.first(Keys.EPOCH_START).value == 1
        assert logger.last(Keys.EPOCH_START).value == 2
        assert logger.first(Keys.RUN_STOP) is None

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            LogEvent.from_line("not a log line")

    def test_parse_log_lines_skips_noise(self):
        logger = MLLogger(FakeClock())
        logger.event(Keys.RUN_START)
        text = "random stderr\n" + logger.to_lines()[0] + "\nmore noise"
        events = parse_log_lines(text)
        assert len(events) == 1
        assert events[0].key == Keys.RUN_START


class TestTrainingTimer:
    def make(self, cap=1.0):
        clock = FakeClock()
        return clock, TrainingTimer(clock, model_creation_cap_s=cap)

    def run_phases(self, clock, timer, init=5.0, creation=0.5, run=10.0):
        timer.init_start()
        clock.advance(init)
        timer.init_stop()
        timer.model_creation_start()
        clock.advance(creation)
        timer.model_creation_stop()
        timer.run_start()
        clock.advance(run)
        timer.run_stop()

    def test_init_excluded(self):
        clock, timer = self.make()
        self.run_phases(clock, timer, init=100.0, creation=0.1, run=7.0)
        assert timer.time_to_train() == pytest.approx(7.0)

    def test_model_creation_under_cap_excluded(self):
        clock, timer = self.make(cap=1.0)
        self.run_phases(clock, timer, creation=0.9, run=5.0)
        assert timer.time_to_train() == pytest.approx(5.0)

    def test_model_creation_overflow_counted(self):
        """§3.2.1: only up to the cap may be excluded."""
        clock, timer = self.make(cap=1.0)
        self.run_phases(clock, timer, creation=3.0, run=5.0)
        assert timer.time_to_train() == pytest.approx(5.0 + 2.0)

    def test_breakdown(self):
        clock, timer = self.make(cap=1.0)
        self.run_phases(clock, timer, init=2.0, creation=1.5, run=4.0)
        b = timer.breakdown()
        assert b.init_seconds == pytest.approx(2.0)
        assert b.model_creation_seconds == pytest.approx(1.5)
        assert b.excluded_model_creation_seconds == pytest.approx(1.0)
        assert b.run_seconds == pytest.approx(4.0)
        assert b.time_to_train_seconds == pytest.approx(4.5)

    def test_phase_order_enforced(self):
        _, timer = self.make()
        with pytest.raises(RuntimeError):
            timer.run_start()  # before init

    def test_double_init_rejected(self):
        _, timer = self.make()
        timer.init_start()
        with pytest.raises(RuntimeError):
            timer.init_start()

    def test_ttt_before_stop_rejected(self):
        clock, timer = self.make()
        timer.init_start()
        clock.advance(1)
        timer.init_stop()
        with pytest.raises(RuntimeError):
            timer.time_to_train()

    def test_fake_clock_rejects_reverse(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestStreamingParse:
    """iter_log_lines / iter_log_file: tolerant of exactly one truncated tail."""

    def _lines(self):
        clock = FakeClock()
        logger = MLLogger(clock)
        logger.event(Keys.RUN_START)
        clock.advance(1.0)
        logger.event(Keys.EVAL_ACCURACY, 0.5, epoch_num=1)
        return logger.to_lines()

    def test_matches_batch_parser_on_clean_input(self):
        from repro.core.mllog import iter_log_lines

        lines = self._lines() + ["free-text launcher chatter", ""]
        streamed = list(iter_log_lines(lines))
        assert streamed == parse_log_lines("\n".join(lines))

    def test_truncated_final_line_is_dropped(self):
        from repro.core.mllog import iter_log_lines

        lines = self._lines()
        lines.append(lines[-1][: len(lines[-1]) // 2])  # killed mid-write
        events = list(iter_log_lines(lines))
        assert [e.key for e in events] == [Keys.RUN_START, Keys.EVAL_ACCURACY]

    def test_mid_stream_corruption_raises(self):
        from repro.core.mllog import iter_log_lines

        lines = self._lines()
        lines.insert(1, ":::MLLOG {broken json")
        with pytest.raises(Exception):
            list(iter_log_lines(lines))

    def test_iter_log_file(self, tmp_path):
        from repro.core.mllog import iter_log_file

        assert list(iter_log_file(tmp_path / "absent.log")) == []
        path = tmp_path / "run.log"
        lines = self._lines()
        path.write_text("\n".join(lines) + "\n" + lines[-1][:20])
        events = list(iter_log_file(path))
        assert [e.key for e in events] == [Keys.RUN_START, Keys.EVAL_ACCURACY]
