"""The streaming layer: event bus, JSONL logs, crash tolerance, heartbeats."""

import json

import pytest

from repro.core.timing import FakeClock
from repro.telemetry import (
    Event,
    EventBus,
    EventLog,
    HeartbeatWriter,
    NULL_EVENTS,
    Telemetry,
    current_events,
    merge_event_streams,
    read_events,
    read_heartbeat,
)


class TestEventBus:
    def test_publish_stamps_clock_and_pid(self):
        clock = FakeClock(start=100.0)
        bus = EventBus(clock=clock.now, pid=7)
        seen = []
        bus.subscribe(seen.append)
        clock.advance(2.5)
        event = bus.publish("epoch", epoch=3)
        assert seen == [event]
        assert event.name == "epoch"
        assert event.time_s == 102.5
        assert event.pid == 7
        assert event.args == {"epoch": 3}

    def test_unsubscribe(self):
        bus = EventBus(clock=lambda: 0.0)
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish("a")
        unsubscribe()
        bus.publish("b")
        assert [e.name for e in seen] == ["a"]
        unsubscribe()  # idempotent

    def test_disabled_bus_is_a_no_op(self):
        seen = []
        NULL_EVENTS.subscribe(seen.append)
        assert NULL_EVENTS.publish("anything", x=1) is None
        assert seen == []

    def test_ambient_bus_default_is_disabled(self):
        assert current_events().enabled is False

    def test_telemetry_session_activates_its_bus(self):
        clock = FakeClock(start=5.0)
        session = Telemetry(clock=clock, events_clock=clock.now)
        seen = []
        session.events.subscribe(seen.append)
        with session.activate():
            current_events().publish("run_start", seed=0)
        assert [e.name for e in seen] == ["run_start"]
        assert seen[0].time_s == 5.0


class TestEventLog:
    def test_round_trip(self, tmp_path):
        clock = FakeClock(start=10.0)
        bus = EventBus(clock=clock.now, pid=1)
        path = tmp_path / "streams" / "job.jsonl"  # parents created on open
        with EventLog(path) as log:
            bus.subscribe(log.write)
            bus.publish("run_start", seed=0)
            clock.advance(1.0)
            bus.publish("epoch", epoch=1, samples=32)
        events = read_events(path)
        assert [e.name for e in events] == ["run_start", "epoch"]
        assert events[1].time_s == 11.0
        assert events[1].args == {"epoch": 1, "samples": 32}

    def test_append_mode_extends_prior_stream(self, tmp_path):
        path = tmp_path / "job.jsonl"
        with EventLog(path) as log:
            log.write(Event("first", 1.0))
        with EventLog(path) as log:
            log.write(Event("second", 2.0))
        assert [e.name for e in read_events(path)] == ["first", "second"]

    def test_missing_file_is_empty_stream(self, tmp_path):
        assert read_events(tmp_path / "never_written.jsonl") == []

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "job.jsonl"
        with EventLog(path) as log:
            log.write(Event("run_start", 1.0))
            log.write(Event("epoch", 2.0, args={"epoch": 1}))
        # A killed writer leaves a partial final line.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "epoch", "time_s": 3.0, "pi')
        events = read_events(path)
        assert [e.name for e in events] == ["run_start", "epoch"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "job.jsonl"
        path.write_text(
            Event("ok", 1.0).to_json() + "\n"
            + "GARBAGE NOT JSON\n"
            + Event("later", 2.0).to_json() + "\n"
        )
        with pytest.raises(ValueError, match="corrupt event line"):
            read_events(path)

    def test_merge_orders_streams_by_time_then_pid(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with EventLog(a) as log:
            log.write(Event("a1", 1.0, pid=1))
            log.write(Event("a2", 3.0, pid=1))
        with EventLog(b) as log:
            log.write(Event("b1", 2.0, pid=0))
            log.write(Event("b2", 3.0, pid=0))
        merged = merge_event_streams([a, b])
        assert [(e.name, e.pid) for e in merged] == [
            ("a1", 1), ("b1", 0), ("b2", 0), ("a2", 1)]


class TestHeartbeat:
    def test_beat_round_trip(self, tmp_path):
        clock = FakeClock(start=50.0)
        path = tmp_path / "hb" / "job.json"
        writer = HeartbeatWriter(path, pid=2, benchmark="fake", seed=1,
                                 attempt=1, clock=clock.now)
        clock.advance(3.0)
        writer.beat(status="running", epoch=4, step=128.0)
        beat = read_heartbeat(path)
        assert beat is not None
        assert (beat.pid, beat.benchmark, beat.seed, beat.attempt) == (2, "fake", 1, 1)
        assert beat.status == "running"
        assert (beat.epoch, beat.step) == (4, 128.0)
        assert beat.time_s == 53.0
        assert beat.age_s(60.0) == 7.0
        assert beat.key == "fake/1"

    def test_beat_rejects_unknown_field(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "job.json", pid=0,
                                 benchmark="fake", seed=0, clock=lambda: 0.0)
        with pytest.raises(AttributeError):
            writer.beat(not_a_field=1)

    def test_on_event_folds_progress(self, tmp_path):
        clock = FakeClock(start=0.0)
        bus = EventBus(clock=clock.now)
        path = tmp_path / "job.json"
        writer = HeartbeatWriter(path, pid=0, benchmark="fake", seed=0,
                                 clock=clock.now)
        bus.subscribe(writer.on_event)
        bus.publish("epoch", epoch=1, samples_total=32)
        bus.publish("epoch", epoch=2, samples_total=64)
        bus.publish("eval", epoch=2, quality=0.5)
        beat = read_heartbeat(path)
        assert (beat.epoch, beat.step, beat.quality) == (2, 64.0, 0.5)

    def test_missing_or_corrupt_file_reads_as_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_heartbeat(bad) is None

    def test_beat_leaves_no_temp_file(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "job.json", pid=0,
                                 benchmark="fake", seed=0, clock=lambda: 1.0)
        writer.beat(epoch=1)
        assert [p.name for p in tmp_path.iterdir()] == ["job.json"]
        payload = json.loads((tmp_path / "job.json").read_text())
        assert payload["epoch"] == 1
