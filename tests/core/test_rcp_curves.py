"""RCP convergence-plausibility checks and learning-curve utilities."""

import numpy as np
import pytest

from repro.core import BenchmarkRunner, FakeClock
from repro.core.rcp import (
    ReferenceConvergencePoints,
    check_convergence,
    collect_reference_points,
)
from repro.metrics.curves import (
    area_under_curve,
    curve_spread,
    epochs_to_reach,
    interpolated_time_to_quality,
)
from tests.core.fakes import FakeBenchmark


def make_rcp(epochs=(8, 9, 10), batch=32):
    return ReferenceConvergencePoints("fake_benchmark", batch, tuple(epochs))


def fake_runs(epochs_list, batch=32, reached=True):
    from repro.core.runner import RunResult

    return [
        RunResult(
            benchmark="fake_benchmark",
            seed=i,
            hyperparameters={"batch_size": batch},
            reached_target=reached,
            quality=0.9,
            epochs=e,
            time_to_train_s=float(e),
        )
        for i, e in enumerate(epochs_list)
    ]


class TestRCP:
    def test_collect_from_reference(self):
        clock = FakeClock()
        bench = FakeBenchmark(clock=clock)
        rcp = collect_reference_points(bench, seeds=range(5),
                                       runner=BenchmarkRunner(clock=clock))
        assert rcp.benchmark == "fake_benchmark"
        assert len(rcp.epochs) == 5
        assert rcp.min_epochs <= rcp.mean_epochs

    def test_plausible_submission_passes(self):
        rcp = make_rcp((8, 9, 10))
        assert check_convergence(fake_runs([8, 9, 8]), rcp) == []

    def test_slower_submission_always_passes(self):
        rcp = make_rcp((8, 9, 10))
        assert check_convergence(fake_runs([20, 25, 30]), rcp) == []

    def test_implausibly_fast_flagged(self):
        rcp = make_rcp((8, 9, 10))
        violations = check_convergence(fake_runs([2, 3, 2]), rcp)
        assert len(violations) == 1
        assert violations[0].rule == "convergence_plausibility"

    def test_different_batch_size_not_compared(self):
        rcp = make_rcp((8, 9, 10), batch=32)
        assert check_convergence(fake_runs([1, 1, 1], batch=256), rcp) == []

    def test_tolerance_controls_floor(self):
        rcp = make_rcp((10,))
        runs = fake_runs([6, 6, 6])
        assert check_convergence(runs, rcp, tolerance=0.5) == []
        assert len(check_convergence(runs, rcp, tolerance=0.9)) == 1

    def test_empty_runs(self):
        assert check_convergence([], make_rcp()) == []


class TestCurves:
    def test_epochs_to_reach(self):
        assert epochs_to_reach([0.1, 0.5, 0.9], 0.8) == 3
        assert epochs_to_reach([0.1, 0.9, 0.5], 0.8) == 2
        assert epochs_to_reach([0.1, 0.2], 0.8) is None

    def test_interpolated_crossing(self):
        # quality 0.4 at epoch 1, 0.8 at epoch 2: 0.6 crossed halfway.
        t = interpolated_time_to_quality([0.4, 0.8], 0.6, seconds_per_epoch=10.0)
        assert t == pytest.approx(15.0)

    def test_interpolated_first_epoch(self):
        assert interpolated_time_to_quality([0.9], 0.5) == pytest.approx(1.0)

    def test_interpolated_never(self):
        assert interpolated_time_to_quality([0.1, 0.2], 0.9) is None

    def test_interpolated_validation(self):
        with pytest.raises(ValueError):
            interpolated_time_to_quality([0.5], 0.4, seconds_per_epoch=0.0)

    def test_auc(self):
        assert area_under_curve([0.0, 1.0]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            area_under_curve([])

    def test_spread(self):
        curves = [[0.1, 0.5, 0.9], [0.3, 0.4, 0.9]]
        np.testing.assert_allclose(curve_spread(curves), [0.2, 0.1, 0.0])
        with pytest.raises(ValueError):
            curve_spread([[0.1, 0.2]])

    def test_spread_matches_fig3_statistic(self):
        """Sanity: noisier early epochs show larger spread."""
        rng = np.random.default_rng(0)
        curves = np.clip(
            np.linspace(0.1, 0.95, 10)[None, :]
            + rng.normal(0, 0.1, size=(5, 10)) * np.linspace(1.0, 0.05, 10)[None, :],
            0, 1,
        )
        spread = curve_spread(curves)
        assert spread[:3].mean() > spread[-3:].mean()
