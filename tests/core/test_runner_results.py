"""Run orchestration and §3.2.2 score aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BenchmarkRunner,
    FakeClock,
    Keys,
    MLLogger,
    olympic_mean,
    score_runs,
)
from repro.core.runner import RunResult
from tests.core.fakes import FakeBenchmark


def make_runner(epoch_cost=1.0):
    clock = FakeClock()
    bench = FakeBenchmark(clock=clock, epoch_cost_s=epoch_cost)
    return BenchmarkRunner(clock=clock), bench


class TestBenchmarkRunner:
    def test_reaches_target(self):
        runner, bench = make_runner()
        result = runner.run(bench, seed=0)
        assert result.reached_target
        assert result.quality >= bench.spec.quality_threshold
        assert result.epochs >= 1

    def test_time_to_train_counts_epochs_only(self):
        runner, bench = make_runner(epoch_cost=2.0)
        result = runner.run(bench, seed=0)
        assert result.time_to_train_s == pytest.approx(result.epochs * 2.0)

    def test_seed_changes_epochs(self):
        runner, bench = make_runner()
        epochs = {runner.run(bench, seed=s).epochs for s in range(8)}
        assert len(epochs) > 1  # §2.2.3 run-to-run variation

    def test_same_seed_reproducible(self):
        runner, bench = make_runner()
        a = runner.run(bench, seed=3)
        b = runner.run(bench, seed=3)
        assert a.epochs == b.epochs
        assert a.quality == pytest.approx(b.quality)

    def test_log_contains_required_structure(self):
        runner, bench = make_runner()
        result = runner.run(bench, seed=0)
        log = MLLogger.from_lines(result.log_lines)
        for key in (Keys.SUBMISSION_BENCHMARK, Keys.SEED, Keys.INIT_START,
                    Keys.INIT_STOP, Keys.RUN_START, Keys.RUN_STOP,
                    Keys.EVAL_ACCURACY, Keys.TARGET_REACHED):
            assert log.first(key) is not None, key

    def test_eval_details_logged(self):
        runner, bench = make_runner()
        result = runner.run(bench, seed=0)
        log = MLLogger.from_lines(result.log_lines)
        evals = log.find(Keys.EVAL_ACCURACY)
        assert "aux_metric" in evals[-1].metadata

    def test_hyperparameter_overrides_applied_and_logged(self):
        runner, bench = make_runner()
        result = runner.run(bench, seed=0, hyperparameter_overrides={"base_lr": 0.5})
        assert result.hyperparameters["base_lr"] == 0.5
        log = MLLogger.from_lines(result.log_lines)
        hp_events = {e.metadata["name"]: e.value for e in log.find(Keys.HYPERPARAMETER)}
        assert hp_events["base_lr"] == 0.5

    def test_unknown_override_rejected(self):
        runner, bench = make_runner()
        with pytest.raises(KeyError):
            runner.run(bench, seed=0, hyperparameter_overrides={"bogus": 1})

    def test_max_epochs_abort(self):
        runner, bench = make_runner()
        result = runner.run(bench, seed=0, hyperparameter_overrides={"learning_speed": 0.001},
                            max_epochs=5)
        assert not result.reached_target
        assert result.epochs == 5
        assert result.epochs_to_target is None

    def test_eval_every(self):
        clock = FakeClock()
        bench = FakeBenchmark(clock=clock)
        runner = BenchmarkRunner(clock=clock, eval_every=3)
        result = runner.run(bench, seed=0)
        log = MLLogger.from_lines(result.log_lines)
        eval_epochs = [e.metadata["epoch_num"] for e in log.find(Keys.EVAL_ACCURACY)]
        assert all(ep % 3 == 0 for ep in eval_epochs[:-1])

    def test_prepare_data_called(self):
        runner, bench = make_runner()
        runner.run(bench, seed=0)
        assert bench.prepared == 1


class TestOlympicMean:
    def test_drops_extremes(self):
        assert olympic_mean([1.0, 10.0, 11.0, 12.0, 100.0]) == pytest.approx(11.0)

    def test_minimum_three(self):
        with pytest.raises(ValueError):
            olympic_mean([1.0, 2.0])

    def test_three_values_keeps_middle(self):
        assert olympic_mean([5.0, 7.0, 100.0]) == 7.0

    def test_ties_drop_one_each(self):
        assert olympic_mean([1.0, 1.0, 1.0, 9.0, 9.0]) == pytest.approx((1 + 1 + 9) / 3)

    @given(st.lists(st.floats(0.1, 1e6), min_size=3, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_remaining_extremes(self, values):
        m = olympic_mean(values)
        s = sorted(values)
        assert s[1] - 1e-9 <= m <= s[-2] + 1e-9

    @given(st.lists(st.floats(0.1, 1e6), min_size=3, max_size=20), st.floats(0.5, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_scale_equivariance(self, values, factor):
        assert olympic_mean([v * factor for v in values]) == pytest.approx(
            olympic_mean(values) * factor, rel=1e-9
        )


def fake_run(benchmark="fake", seed=0, time_s=10.0, reached=True, epochs=5):
    return RunResult(
        benchmark=benchmark,
        seed=seed,
        hyperparameters={"batch_size": 32},
        reached_target=reached,
        quality=0.9,
        epochs=epochs,
        time_to_train_s=time_s,
    )


class TestScoreRuns:
    def test_olympic_scoring(self):
        runs = [fake_run(seed=i, time_s=t) for i, t in enumerate([8.0, 10.0, 11.0, 12.0, 50.0])]
        score = score_runs(runs)
        assert score.time_to_train_s == pytest.approx(11.0)
        assert score.dropped_fastest_s == 8.0
        assert score.dropped_slowest_s == 50.0
        assert score.num_runs == 5

    def test_failed_run_rejected(self):
        runs = [fake_run(seed=i) for i in range(4)] + [fake_run(seed=4, reached=False)]
        with pytest.raises(ValueError, match="did not reach"):
            score_runs(runs)

    def test_mixed_benchmarks_rejected(self):
        runs = [fake_run(benchmark="a"), fake_run(benchmark="b"), fake_run(benchmark="a")]
        with pytest.raises(ValueError, match="multiple benchmarks"):
            score_runs(runs)

    def test_required_count_enforced(self):
        runs = [fake_run(seed=i) for i in range(4)]
        with pytest.raises(ValueError, match="exactly 5"):
            score_runs(runs, required_runs=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            score_runs([])

    def test_mean_epochs(self):
        runs = [fake_run(seed=i, epochs=e) for i, e in enumerate([4, 5, 6])]
        assert score_runs(runs).mean_epochs == pytest.approx(5.0)
