"""The alert-rules engine: declarative rules, lifecycle, determinism.

The acceptance bar: identical event streams produce bit-identical
``alerts.jsonl`` files under FakeClock, every rule kind fires and
resolves on the conditions its name promises, and configuration errors
surface at parse time.
"""

import pytest

from repro.core.timing import FakeClock
from repro.telemetry import (
    AlertEngine,
    Event,
    EventBus,
    StreamFold,
    default_rules,
    parse_rules,
    replay_alerts,
)
from repro.telemetry.alerts import RULE_KINDS, load_rules_file


def _stream(specs):
    """Build a timeline from (t, name, pid, args) tuples."""
    return [Event(name=name, time_s=float(t), pid=pid, args=args)
            for t, name, pid, args in specs]


def _run_events(*, start=1000.0, epoch_gap=1.0, epochs=4, quality=0.9,
                target=0.8, pid=1):
    """A healthy run: start, epochs with throughput, eval, stop."""
    t = start
    out = [(t, "run_start", pid,
            {"benchmark": "b", "seed": 0, "target": target})]
    for i in range(epochs):
        t += epoch_gap
        out.append((t, "epoch", pid,
                    {"epoch": i, "epoch_seconds": epoch_gap, "samples": 32,
                     "samples_total": 32 * (i + 1)}))
    t += 0.5
    out.append((t, "eval", pid, {"epoch": epochs - 1, "quality": quality}))
    t += 0.5
    out.append((t, "run_stop", pid,
                {"benchmark": "b", "seed": 0, "status": "reached",
                 "epochs": epochs, "quality": quality}))
    return _stream(out)


class TestRuleParsing:
    def test_defaults_cover_every_kind(self):
        rules = default_rules()
        assert sorted(r.kind for r in rules) == sorted(RULE_KINDS)

    def test_parse_overrides_and_names(self):
        rules = parse_rules([
            {"rule": "job_stall", "stall_after_s": 45, "name": "slow",
             "severity": "critical"},
            {"rule": "quality_regression", "min_fraction": 0.95},
        ])
        assert rules[0].name == "slow" and rules[0].severity == "critical"
        assert rules[0].param("stall_after_s") == 45.0
        assert rules[1].param("min_fraction") == 0.95
        assert rules[1].param("min_evals") == 2  # untouched default

    @pytest.mark.parametrize("doc,match", [
        ([{"rule": "nope"}], "unknown alert rule kind"),
        ([{"rule": "job_stall", "bogus": 1}], "unknown parameter"),
        ([{"rule": "job_stall", "severity": "mild"}], "unknown severity"),
        ([{"no_rule": 1}], "expected an object"),
        ({"rule": "job_stall"}, "JSON list"),
        ([{"rule": "job_stall"}, {"rule": "job_stall"}], "duplicate rule"),
    ])
    def test_parse_errors(self, doc, match):
        with pytest.raises(ValueError, match=match):
            parse_rules(doc)

    def test_load_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('[{"rule": "heartbeat_loss", "loss_after_s": 9}]')
        rules = load_rules_file(path)
        assert rules[0].param("loss_after_s") == 9.0
        path.write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_rules_file(path)


class TestRuleLifecycle:
    def test_healthy_run_fires_nothing(self):
        engine, transitions = replay_alerts(_run_events())
        assert transitions == []
        assert engine.active() == []

    def test_job_stall_fires_on_gap_and_resolves_on_recovery(self):
        events = _run_events(epoch_gap=1.0)
        # Inject a 100s silent gap before the last epoch by shifting the
        # tail of the timeline.
        shifted = [e if e.time_s < 1004.0 else
                   Event(e.name, e.time_s + 100.0, e.pid, e.args)
                   for e in events]
        shifted.sort(key=lambda e: (e.time_s, e.pid))
        _, transitions = replay_alerts(shifted)
        names = [(t.name, t.args["rule"]) for t in transitions]
        assert ("alert_firing", "job_stall") in names
        assert ("alert_resolved", "job_stall") in names
        fired = next(t for t in transitions if t.name == "alert_firing"
                     and t.args["rule"] == "job_stall")
        resolved = next(t for t in transitions if t.name == "alert_resolved"
                        and t.args["rule"] == "job_stall")
        # Both stamp the instant the silence ended (event-stream time).
        assert fired.time_s == resolved.time_s == 1104.0

    def test_stream_ending_while_active_fires_stall_at_now(self):
        events = _run_events()[:-1]  # drop run_stop: job died silently
        _, transitions = replay_alerts(events, now_s=events[-1].time_s + 500)
        rules = {t.args["rule"] for t in transitions
                 if t.name == "alert_firing"}
        assert {"job_stall", "heartbeat_loss"} <= rules

    def test_quality_regression_persists_after_run_end(self):
        # Two evals below 0.9 * target(0.8) = 0.72; run ends quality_miss.
        events = _run_events(quality=0.5)
        extra_eval = Event("eval", 1003.7, 1, {"epoch": 2, "quality": 0.4})
        events = sorted(events + [extra_eval],
                        key=lambda e: (e.time_s, e.pid))
        # Make the stop a miss, not reached.
        events = [Event(e.name, e.time_s, e.pid,
                        dict(e.args, status="quality_miss"))
                  if e.name == "run_stop" else e for e in events]
        engine, transitions = replay_alerts(events)
        assert any(t.name == "alert_firing"
                   and t.args["rule"] == "quality_regression"
                   for t in transitions)
        assert [a.rule for a in engine.active()] == ["quality_regression"]

    def test_quality_regression_resolves_when_target_reached(self):
        # Early eval is bad, final eval recovers and the run reaches.
        bad = Event("eval", 1001.5, 1, {"epoch": 0, "quality": 0.3})
        worse = Event("eval", 1002.5, 1, {"epoch": 1, "quality": 0.2})
        events = sorted(_run_events(quality=0.9) + [bad, worse],
                        key=lambda e: (e.time_s, e.pid))
        engine, transitions = replay_alerts(events)
        kinds = [(t.name, t.args["rule"]) for t in transitions]
        assert ("alert_firing", "quality_regression") in kinds
        assert ("alert_resolved", "quality_regression") in kinds
        assert engine.active() == []

    def test_throughput_drop_fires_on_collapse(self):
        t = 1000.0
        specs = [(t, "run_start", 1, {"benchmark": "b", "seed": 0})]
        # Steady 32 samples/s, then one epoch at a tenth of that.
        for i in range(4):
            specs.append((t + 1 + i, "epoch", 1,
                          {"epoch": i, "epoch_seconds": 1.0, "samples": 32}))
        specs.append((t + 15, "epoch", 1,
                      {"epoch": 4, "epoch_seconds": 10.0, "samples": 32}))
        _, transitions = replay_alerts(_stream(specs))
        assert any(t.name == "alert_firing"
                   and t.args["rule"] == "throughput_drop"
                   for t in transitions)

    def test_arena_hit_rate_drop(self):
        specs = [
            (1000.0, "run_start", 1, {"benchmark": "b", "seed": 0}),
            (1001.0, "arena_stats", 1, {"hit_rate": 0.95}),
            (1002.0, "arena_stats", 1, {"hit_rate": 0.4}),
            (1003.0, "arena_stats", 1, {"hit_rate": 0.92}),
        ]
        _, transitions = replay_alerts(_stream(specs))
        kinds = [(t.name, t.args["rule"]) for t in transitions]
        assert kinds.count(("alert_firing", "arena_hit_rate_drop")) == 1
        assert kinds.count(("alert_resolved", "arena_hit_rate_drop")) == 1

    def test_subject_vanishing_resolves(self):
        """A run that ends while a stall alert fires resolves the alert."""
        events = _run_events()[:-1]
        _, _ = replay_alerts(events)  # sanity: replay works
        engine = AlertEngine()
        fold = StreamFold()
        fold.apply_all(events)
        engine.evaluate(fold.context(events[-1].time_s + 500))
        assert engine.active()  # stall + loss firing
        fold.apply(Event("run_stop", events[-1].time_s + 501, 1,
                         {"benchmark": "b", "seed": 0, "status": "fault"}))
        out = engine.evaluate(fold.context(events[-1].time_s + 501))
        assert engine.active() == []
        assert all(t.name == "alert_resolved" for t in out)


class TestDeterminism:
    def test_replay_is_bit_identical(self):
        # A stream with a mid-run stall gap AND tail silence, so both
        # firing and resolved transitions appear in the log.
        events = [e if e.time_s < 1004.0 else
                  Event(e.name, e.time_s + 100.0, e.pid, e.args)
                  for e in _run_events()[:-1]]
        events.sort(key=lambda e: (e.time_s, e.pid))
        _, first = replay_alerts(events, now_s=2000.0)
        _, second = replay_alerts(events, now_s=2000.0)
        assert [t.to_json() for t in first] == [t.to_json() for t in second]
        assert first  # the stream does produce transitions

    def test_transitions_are_ordinary_events(self):
        """alerts.jsonl parses with the standard event tooling."""
        from repro.telemetry import EventLog, read_events

        events = _run_events()[:-1]
        _, transitions = replay_alerts(events, now_s=5000.0)
        assert transitions

    def test_engine_stamps_context_time_never_wall_clock(self):
        clock = FakeClock(start=123.0)
        bus = EventBus(clock=clock.now, pid=1)
        captured = []
        bus.subscribe(captured.append)
        bus.publish("run_start", benchmark="b", seed=0)
        engine = AlertEngine()
        fold = StreamFold()
        fold.apply_all(captured)
        out = engine.evaluate(fold.context(clock.now() + 1000.0))
        assert out and all(t.time_s == 1123.0 for t in out)
