"""Property tests on the timing rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FakeClock, TrainingTimer

durations = st.floats(0.0, 1000.0)


def run_session(init, creation, run, cap=1.2):
    clock = FakeClock()
    timer = TrainingTimer(clock, model_creation_cap_s=cap)
    timer.init_start()
    clock.advance(init)
    timer.init_stop()
    timer.model_creation_start()
    clock.advance(creation)
    timer.model_creation_stop()
    timer.run_start()
    clock.advance(run)
    timer.run_stop()
    return timer


class TestTimingProperties:
    @given(durations, durations, durations)
    @settings(max_examples=60, deadline=None)
    def test_init_never_counts(self, init, creation, run):
        """Time-to-train is independent of initialization duration."""
        a = run_session(init, creation, run).time_to_train()
        b = run_session(init + 500.0, creation, run).time_to_train()
        assert a == pytest.approx(b)

    @given(durations, durations)
    @settings(max_examples=60, deadline=None)
    def test_ttt_at_least_run_time(self, creation, run):
        t = run_session(1.0, creation, run).time_to_train()
        assert t >= run - 1e-9

    @given(durations, durations, st.floats(0.1, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_exclusion_bounded_by_cap(self, creation, run, cap):
        """Excluded creation time never exceeds the cap (§3.2.1)."""
        timer = run_session(1.0, creation, run, cap=cap)
        breakdown = timer.breakdown()
        assert breakdown.excluded_model_creation_seconds <= cap + 1e-9
        assert breakdown.time_to_train_seconds == pytest.approx(
            run + max(creation - cap, 0.0), abs=1e-6
        )

    @given(durations, durations, durations)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_run_time(self, creation, run, extra):
        a = run_session(1.0, creation, run).time_to_train()
        b = run_session(1.0, creation, run + extra).time_to_train()
        assert b >= a - 1e-9

    @given(durations, durations)
    @settings(max_examples=60, deadline=None)
    def test_creation_overflow_monotone(self, run, extra):
        """More model-creation time never reduces the scored time."""
        a = run_session(1.0, 0.5, run).time_to_train()
        b = run_session(1.0, 0.5 + extra, run).time_to_train()
        assert b >= a - 1e-9
