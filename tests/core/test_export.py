"""Prometheus exposition + the interpolated-quantile satellite.

The quantile cross-check: :meth:`Histogram.quantile` (bucket
interpolation) must agree with loadgen's exact nearest-rank
``percentile`` to within one bucket width — the estimator's documented
error bound.
"""

import numpy as np

from repro.loadgen.scenarios import percentile
from repro.telemetry import MetricsRegistry, snapshot_lines
from repro.telemetry.export import (
    EXPOSITION_CONTENT_TYPE,
    alert_lines,
    format_labels,
    render_exposition,
    sanitize_metric_name,
    view_lines,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.monitor import JobView, MonitorView


class TestQuantile:
    def test_empty_histogram_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_single_value(self):
        h = Histogram("h", (1.0, 2.0))
        h.observe(1.5)
        assert h.quantile(0.0) == h.quantile(1.0) == 1.5

    def test_matches_nearest_rank_within_bucket_width(self):
        rng = np.random.default_rng(7)
        values = np.concatenate([
            rng.uniform(0.0, 1.0, 400),        # bulk
            rng.uniform(2.0, 4.0, 50),         # heavy tail
        ])
        buckets = tuple(np.round(np.arange(0.05, 4.05, 0.05), 2))
        width = 0.05
        h = Histogram("lat", buckets)
        for v in values:
            h.observe(float(v))
        latencies = [float(v) for v in values]
        for q in (0.5, 0.9, 0.99):
            exact = percentile(latencies, q * 100.0)
            estimate = h.quantile(q)
            assert abs(estimate - exact) <= width + 1e-9, (q, exact, estimate)

    def test_extremes_clamped_to_observed_range(self):
        h = Histogram("h", (10.0, 20.0))
        for v in (0.5, 12.0, 15.0):
            h.observe(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max


class TestExposition:
    def test_names_and_labels(self):
        assert sanitize_metric_name("epoch.seconds") == "repro_epoch_seconds"
        assert sanitize_metric_name("9lives") == "repro_9lives"
        assert format_labels({}) == ""
        assert format_labels({"b": 'x"y', "a": "z"}) == '{a="z",b="x\\"y"}'

    def test_counter_gauge_histogram_families(self):
        registry = MetricsRegistry()
        registry.counter("samples_seen").inc(64)
        registry.gauge("replay_depth").set(3.5)
        hist = registry.histogram("epoch_seconds", (1.0, 5.0))
        for v in (0.5, 2.0, 7.0):
            hist.observe(v)
        lines = snapshot_lines(registry.snapshot(), labels={"campaign": "c1"})
        text = render_exposition([lines])
        assert text.endswith("\n")
        assert "# TYPE repro_samples_seen counter" in text
        assert 'repro_samples_seen{campaign="c1"} 64' in text
        assert 'repro_replay_depth{campaign="c1"} 3.5' in text
        # Cumulative le buckets plus the +Inf catch-all and exact count.
        assert 'repro_epoch_seconds_bucket{campaign="c1",le="1"} 1' in text
        assert 'repro_epoch_seconds_bucket{campaign="c1",le="5"} 2' in text
        assert 'repro_epoch_seconds_bucket{campaign="c1",le="+Inf"} 3' in text
        assert 'repro_epoch_seconds_count{campaign="c1"} 3' in text
        # Interpolated quantile gauges ride along.
        assert 'repro_epoch_seconds_q{campaign="c1",quantile="0.5"}' in text

    def test_content_type_is_prometheus_text(self):
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE

    def test_view_lines_dense_job_states(self):
        view = MonitorView(jobs=[
            JobView(benchmark="b", seed=0, status="reached",
                    time_to_train_s=4.0),
            JobView(benchmark="b", seed=1, status="running"),
        ], now_s=10.0)
        text = "\n".join(view_lines(view, "c1"))
        # Every state exports, zeros included, so scrape series stay dense.
        assert 'repro_campaign_jobs{campaign="c1",status="reached"} 1' in text
        assert 'repro_campaign_jobs{campaign="c1",status="fault"} 0' in text
        assert 'repro_campaign_cells{campaign="c1"} 2' in text
        assert 'repro_campaign_settled_fraction{campaign="c1"} 0.5' in text

    def test_alert_lines(self):
        from repro.telemetry import ActiveAlert

        active = [ActiveAlert(rule="job_stall", kind="job_stall", key="b/0",
                              severity="warning", since_s=5.0, value=40.0,
                              detail="no progress")]
        text = "\n".join(alert_lines(active, "c1"))
        assert ('repro_alert_firing{campaign="c1",key="b/0",'
                'rule="job_stall",severity="warning"} 1') in text
        assert 'repro_alerts_firing_total{campaign="c1"} 1' in text
        empty = "\n".join(alert_lines([], "c1"))
        assert 'repro_alerts_firing_total{campaign="c1"} 0' in empty
