"""Scale → hyperparameter recommendation tables (§6 future work)."""

import pytest

from repro.core import Division, check_hyperparameters
from repro.core.hp_table import (
    recommend_hyperparameters,
    recommendation_table,
    render_table,
)
from repro.suite import all_specs, create_benchmark


@pytest.fixture(scope="module")
def ic_spec():
    return create_benchmark("image_classification").spec


class TestRecommendations:
    def test_single_chip_is_reference(self, ic_spec):
        rec = recommend_hyperparameters(ic_spec, num_chips=2, per_chip_batch=32)
        # 2 chips x 32 = 64 = reference batch: no overrides needed.
        assert rec.hyperparameters["batch_size"] == 64
        assert "base_lr" not in rec.hyperparameters

    def test_lr_scales_linearly(self, ic_spec):
        rec = recommend_hyperparameters(ic_spec, num_chips=8, per_chip_batch=32)
        base = ic_spec.default_hyperparameters["base_lr"]
        assert rec.hyperparameters["base_lr"] == pytest.approx(base * 256 / 64)

    def test_lars_recommended_at_large_scale(self, ic_spec):
        rec = recommend_hyperparameters(ic_spec, num_chips=64, per_chip_batch=32)
        assert rec.hyperparameters["optimizer"] == "lars"
        assert "LARS" in rec.notes

    def test_no_lars_for_benchmarks_without_it(self):
        spec = create_benchmark("recommendation").spec
        rec = recommend_hyperparameters(spec, num_chips=64, per_chip_batch=32)
        assert "optimizer" not in rec.hyperparameters

    def test_all_recommendations_closed_legal(self):
        """The table never suggests an illegal configuration."""
        for spec in all_specs():
            for chips in (1, 4, 16, 64):
                rec = recommend_hyperparameters(spec, chips)
                merged = spec.resolve_hyperparameters(rec.hyperparameters)
                assert check_hyperparameters(spec, merged, Division.CLOSED) == []

    def test_batch_cap_respected(self, ic_spec):
        rec = recommend_hyperparameters(ic_spec, num_chips=64, per_chip_batch=32,
                                        max_global_batch=512)
        assert rec.hyperparameters["batch_size"] == 512

    def test_invalid_chips(self, ic_spec):
        with pytest.raises(ValueError):
            recommend_hyperparameters(ic_spec, num_chips=0)


class TestTable:
    def test_full_table_shape(self):
        rows = recommendation_table(all_specs(), chip_counts=(1, 16), precisions=("float32",))
        assert len(rows) == 7 * 2

    def test_render(self):
        rows = recommendation_table([create_benchmark("image_classification").spec],
                                    chip_counts=(1, 64), precisions=("float32",))
        text = render_table(rows)
        assert "image_classification" in text
        assert "lars" in text  # the 64-chip row
