"""Op-level profiler: sampling, nesting, memory accounting, overhead bench."""

import numpy as np
import pytest

from repro.framework.fused import conv2d_bias_relu, linear_bias_act
from repro.framework.microbench import bench_profile, gate_profile_failures
from repro.framework.module import Parameter
from repro.framework.optim import SGD
from repro.framework.tensor import Tensor
from repro.telemetry import Telemetry, merge_op_profiles, render_op_profile
from repro.telemetry.opprof import OpProfiler, profile_mode_from_env


def _train_step(seed=0):
    """One conv + linear forward/backward plus an SGD update."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32),
               requires_grad=True)
    wc = Parameter((rng.standard_normal((4, 3, 3, 3)) * 0.1).astype(np.float32))
    bc = Parameter(rng.standard_normal(4).astype(np.float32))
    out = conv2d_bias_relu(x, wc, bc, stride=1, pad=1)
    out.backward(rng.standard_normal(out.shape).astype(np.float32))
    y = Tensor(rng.standard_normal((8, 16)).astype(np.float32),
               requires_grad=True)
    wl = Parameter((rng.standard_normal((16, 16)) * 0.1).astype(np.float32))
    bl = Parameter(rng.standard_normal(16).astype(np.float32))
    out2 = linear_bias_act(y, wl, bl, act="relu")
    out2.backward(rng.standard_normal((8, 16)).astype(np.float32))
    opt = SGD([wc, bc, wl, bl], lr=0.1)
    opt.step()
    return wc.data.copy(), bc.data.copy(), wl.data.copy(), bl.data.copy()


class TestOpProfilerCore:
    def test_off_mode_records_nothing_and_snapshot_is_empty(self):
        prof = OpProfiler(mode="off")
        assert prof.active is False
        prof.step()
        with prof.op("gemm"):
            pass
        prof.note_alloc(1024)
        assert prof.snapshot() == {}

    def test_env_mode_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "sampled")
        assert profile_mode_from_env() == "sampled"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            profile_mode_from_env()

    def test_disabled_session_never_reads_env(self, monkeypatch):
        # Telemetry.disabled() is built at import time in some paths; a
        # bad env value must not detonate a disabled profiler.
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        prof = OpProfiler(enabled=False)
        assert prof.mode == "off"

    def test_sampled_mode_windows(self):
        prof = OpProfiler(mode="sampled", sample_every=4)
        assert prof.active  # window 0 always sampled
        states = []
        for _ in range(8):
            prof.step()
            states.append(prof.active)
        assert states == [False, False, False, True] * 2
        assert prof.steps_total == 8
        assert prof.steps_sampled == 3  # window 0 + steps 4 and 8

    def test_full_mode_counts_every_step(self):
        prof = OpProfiler(mode="full")
        for _ in range(5):
            prof.step()
        assert prof.active and prof.steps_sampled == 6

    def test_nested_ops_attribute_self_time(self):
        t = [0]

        def clock():
            return t[0]

        prof = OpProfiler(mode="full", clock_ns=clock)
        prof.begin()           # outer (linear)
        prof.begin()           # inner (gemm)
        prof.end("gemm", 300)
        prof.end("linear", 1000)
        ops = prof.snapshot()["ops"]["forward"]
        assert ops["gemm"]["self_ns"] == 300
        assert ops["linear"]["total_ns"] == 1000
        assert ops["linear"]["self_ns"] == 700  # child time removed

    def test_cancel_discards_the_open_level(self):
        prof = OpProfiler(mode="full")
        prof.begin()
        prof.cancel()
        assert prof.snapshot()["ops"] == {}

    def test_explicit_op_span_phases_and_bytes(self):
        prof = OpProfiler(mode="full")
        with prof.op("all_reduce", phase="comms", nbytes=100) as span:
            span.add_bytes(28)
        stat = prof.snapshot()["ops"]["comms"]["all_reduce"]
        assert stat["calls"] == 1 and stat["bytes_moved"] == 128

    def test_note_alloc_buckets_by_phase(self):
        prof = OpProfiler(mode="full")
        prof.note_alloc(64)
        prof.phase = "backward"
        prof.note_alloc(32)
        mem = prof.snapshot()["memory"]
        assert mem["forward"] == {"tensor_allocs": 1, "tensor_bytes": 64}
        assert mem["backward"] == {"tensor_allocs": 1, "tensor_bytes": 32}


class TestFrameworkIntegration:
    def test_full_profile_records_every_op_family(self):
        tele = Telemetry(profile="full")
        with tele.activate():
            _train_step()
        ops = tele.profiler.snapshot()["ops"]
        assert {"forward", "backward", "update"} <= set(ops)
        assert "conv2d_bias_relu" in ops["forward"]
        assert "linear" in ops["forward"]
        assert "conv2d_bias_relu" in ops["backward"]
        assert "optimizer_step" in ops["update"]
        for phase_ops in ops.values():
            for stat in phase_ops.values():
                assert stat["calls"] >= 1
                assert stat["total_ns"] >= stat["self_ns"] >= 0
                assert stat["bytes_moved"] > 0

    def test_off_mode_is_bit_identical_to_no_profiler(self):
        plain = _train_step()
        tele = Telemetry(profile="off")
        with tele.activate():
            profiled = _train_step()
        for a, b in zip(plain, profiled):
            np.testing.assert_array_equal(a, b)
        assert tele.profiler.snapshot() == {}

    def test_full_mode_is_bit_identical_too(self):
        plain = _train_step()
        with Telemetry(profile="full").activate():
            profiled = _train_step()
        for a, b in zip(plain, profiled):
            np.testing.assert_array_equal(a, b)

    def test_profile_counts_are_deterministic(self):
        def run():
            tele = Telemetry(profile="full")
            with tele.activate():
                _train_step()
            snap = tele.profiler.snapshot()
            return {phase: {name: (s["calls"], s["bytes_moved"])
                            for name, s in ops.items()}
                    for phase, ops in snap["ops"].items()}

        assert run() == run()

    def test_alloc_tracker_uninstalled_after_activate(self):
        from repro.framework.tensor import set_alloc_tracker

        with Telemetry(profile="full").activate():
            pass
        # Restore returns the previous tracker; after exit it must be None.
        assert set_alloc_tracker(None) is None

    def test_backward_restores_phase_on_completion(self):
        tele = Telemetry(profile="full")
        with tele.activate():
            _train_step()
            assert tele.profiler.phase == "forward"


class TestMergeAndRender:
    def test_merge_sums_counters_and_keeps_peaks(self):
        a = {"schema": "repro.op_profile.v1", "mode": "full", "sample_every": 8,
             "steps_total": 2, "steps_sampled": 3,
             "ops": {"forward": {"gemm": {"calls": 1, "total_ns": 10,
                                          "self_ns": 10, "bytes_moved": 4}}},
             "memory": {"forward": {"tensor_allocs": 1, "tensor_bytes": 8}},
             "arena": {"peak_live_bytes": 100, "bytes_saved": 50}}
        b = {"schema": "repro.op_profile.v1", "mode": "full", "sample_every": 8,
             "steps_total": 3, "steps_sampled": 4,
             "ops": {"forward": {"gemm": {"calls": 2, "total_ns": 20,
                                          "self_ns": 20, "bytes_moved": 8}}},
             "memory": {"forward": {"tensor_allocs": 2, "tensor_bytes": 16}},
             "arena": {"peak_live_bytes": 80, "bytes_saved": 70}}
        merged = merge_op_profiles([a, None, b])
        assert merged["steps_total"] == 5
        assert merged["ops"]["forward"]["gemm"] == {
            "calls": 3, "total_ns": 30, "self_ns": 30, "bytes_moved": 12}
        assert merged["memory"]["forward"]["tensor_allocs"] == 3
        assert merged["arena"]["peak_live_bytes"] == 100  # max, not sum
        assert merged["arena"]["bytes_saved"] == 120  # counter: sum

    def test_merge_of_nothing_is_empty(self):
        assert merge_op_profiles([None, {}]) == {}

    def test_render_handles_empty_and_full(self):
        assert "REPRO_PROFILE=off" in render_op_profile({})
        tele = Telemetry(profile="full")
        with tele.activate():
            _train_step()
        text = render_op_profile(tele.profiler.snapshot())
        assert "conv2d_bias_relu" in text and "optimizer_step" in text
        assert "Share" in text and "arena:" in text


class TestBenchProfile:
    def test_smoke_bench_payload_and_gate(self):
        payload = bench_profile(smoke=True, steps=2, repeats=1)
        assert payload["schema"] == "repro.bench_profile.v1"
        checks = payload["checks"]
        assert checks["ops_recorded"] == 5
        assert checks["bit_identical"]
        assert checks["off_overhead"] >= 0.0
        assert payload["op_profile"]["ops"]["update"]["optimizer_step"]["calls"] == 2
        assert gate_profile_failures(payload) == []

    def test_gate_flags_excess_overhead_and_missing_ops(self):
        payload = {"checks": {"ops_recorded": 2, "sampled_overhead": 0.5,
                              "bit_identical": False,
                              "bit_identical_by_mode": {"full": False}}}
        failures = gate_profile_failures(payload)
        assert len(failures) == 3
        assert any("overhead" in f for f in failures)
        assert any("changed training results" in f for f in failures)
        assert any("instrumentation hole" in f for f in failures)
