"""The bench regression gate: tolerance bands, directions, schema safety."""

from pathlib import Path

import pytest

from repro.telemetry import (
    MetricSpec,
    attribute_regression,
    compare_reports,
    load_report,
)

REPORTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "reports"

BASELINES = sorted(REPORTS_DIR.glob("BENCH_*.json"))


class TestMetricSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetricSpec("x", "sideways")
        with pytest.raises(ValueError):
            MetricSpec("x", "higher", rel_tol=-0.1)

    def test_bounds(self):
        assert MetricSpec("x", "higher", rel_tol=0.5).bound(2.0) == 1.0
        assert MetricSpec("x", "lower", abs_tol=2).bound(1.0) == 3.0
        assert MetricSpec("x", "exact").bound(7.0) == 7.0


class TestCompareReports:
    def test_committed_baselines_self_compare_clean(self):
        # The exact check CI runs: every committed report must gate green
        # against itself, or the gate is wrong before any PR touches it.
        assert BASELINES, "no committed BENCH_*.json baselines found"
        for path in BASELINES:
            payload = load_report(path)
            report = compare_reports(payload, payload)
            assert report.ok, f"{path.name}: {report.render()}"
            assert report.rows  # something actually gated

    def test_injected_kernel_regression_fails(self):
        baseline = load_report(REPORTS_DIR / "BENCH_kernels.json")
        current = {**baseline, "checks": dict(baseline["checks"]),
                   "arena": dict(baseline["arena"])}
        current["checks"]["bit_identical"] = False
        current["arena"]["hit_rate"] = baseline["arena"]["hit_rate"] - 0.5
        report = compare_reports(current, baseline)
        assert not report.ok
        regressed = {row.path for row in report.regressions}
        assert regressed == {"checks.bit_identical", "arena.hit_rate"}
        rendered = report.render()
        assert "REGRESSED" in rendered and "2 regression(s)" in rendered

    def test_within_band_drift_passes(self):
        baseline = load_report(REPORTS_DIR / "BENCH_campaign.json")
        current = dict(baseline)
        current["speedup"] = baseline["speedup"] * 0.6  # inside rel_tol=0.5
        current["retries"] = baseline["retries"] + 2  # inside abs_tol=2
        assert compare_reports(current, baseline).ok

    def test_schema_mismatch_raises(self):
        kernels = load_report(REPORTS_DIR / "BENCH_kernels.json")
        comms = load_report(REPORTS_DIR / "BENCH_comms.json")
        with pytest.raises(ValueError, match="schema mismatch"):
            compare_reports(kernels, comms)

    def test_unknown_schema_raises(self):
        payload = {"schema": "nobody/0"}
        with pytest.raises(ValueError, match="no regression gates"):
            compare_reports(payload, payload)

    def test_report_without_schema_field_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"speedup": 2.0}')
        with pytest.raises(ValueError, match="no 'schema' field"):
            load_report(bad)

    def test_tolerance_override_loosens_one_metric(self):
        baseline = load_report(REPORTS_DIR / "BENCH_campaign.json")
        current = dict(baseline)
        current["speedup"] = baseline["speedup"] * 0.3  # outside rel_tol=0.5
        assert not compare_reports(current, baseline).ok
        assert compare_reports(
            current, baseline, tolerance_overrides={"speedup": 0.9}).ok
        with pytest.raises(ValueError, match="ungated metric"):
            compare_reports(current, baseline,
                            tolerance_overrides={"nonsense": 0.5})

    def test_missing_values(self):
        baseline = load_report(REPORTS_DIR / "BENCH_campaign.json")
        # Metric absent from the baseline: informational, not a failure.
        older = {k: v for k, v in baseline.items() if k != "speedup"}
        report = compare_reports(baseline, older)
        row = next(r for r in report.rows if r.path == "speedup")
        assert row.ok and row.note == "no baseline value"
        # Metric absent from the fresh report: that IS a regression.
        report = compare_reports(older, baseline)
        row = next(r for r in report.rows if r.path == "speedup")
        assert not row.ok and row.note == "missing from report"


class TestAttribution:
    def _kernels_payload(self, conv_ns):
        return {
            "schema": "repro.bench_kernels.v1",
            "checks": {"bit_identical": True, "conv_speedup": 2.0},
            "arena": {"hit_rate": 0.95, "steady_state_bytes_allocated": 0},
            "kernels": {
                "conv2d_fwd_bwd": {"ns_per_op": conv_ns},
                "linear_fwd_bwd": {"ns_per_op": 2_000_000},
                "sgd_momentum_step": {"ns_per_op": 1_000_000},
            },
        }

    def test_injected_slowdown_attributed_to_the_right_op(self):
        baseline = self._kernels_payload(conv_ns=2_000_000)
        current = self._kernels_payload(conv_ns=8_000_000)  # 4x slower conv
        current["checks"]["conv_speedup"] = 0.5  # trips the gate
        report = compare_reports(current, baseline)
        assert not report.ok
        assert report.attribution, "regression produced no attribution"
        top = report.attribution[0]
        assert top.op == "conv2d_fwd_bwd"
        assert top.delta_share > 0.3  # 40% -> 72.7% of recorded time
        # Only the regressed op crosses the noise floor.
        assert [row.op for row in report.attribution] == ["conv2d_fwd_bwd"]

    def test_uniform_slowdown_attributes_nothing(self):
        # A 3x-slower machine keeps every op's share constant; attribution
        # must stay silent rather than blame the largest kernel.
        baseline = self._kernels_payload(conv_ns=2_000_000)
        current = self._kernels_payload(conv_ns=6_000_000)
        current["kernels"]["linear_fwd_bwd"]["ns_per_op"] *= 3
        current["kernels"]["sgd_momentum_step"]["ns_per_op"] *= 3
        assert attribute_regression(current, baseline) == []

    def test_op_profile_takes_precedence_over_kernels_table(self):
        def payload(conv_self_ns):
            return {"op_profile": {"ops": {
                "forward": {"conv2d": {"self_ns": conv_self_ns,
                                       "total_ns": conv_self_ns},
                            "linear": {"self_ns": 1_000}},
            }}}
        rows = attribute_regression(payload(9_000), payload(1_000))
        assert rows[0].op == "forward/conv2d"

    def test_passing_report_carries_no_attribution(self):
        baseline = self._kernels_payload(conv_ns=2_000_000)
        report = compare_reports(baseline, baseline)
        assert report.ok and report.attribution == []

    def test_payload_shape_round_trips_to_json(self):
        import json

        baseline = self._kernels_payload(conv_ns=2_000_000)
        current = self._kernels_payload(conv_ns=8_000_000)
        current["checks"]["bit_identical"] = False
        report = compare_reports(current, baseline)
        payload = json.loads(json.dumps(report.to_payload()))
        assert payload["ok"] is False
        assert payload["regressions"] == ["checks.bit_identical"]
        assert payload["attribution"][0]["op"] == "conv2d_fwd_bwd"
        assert {"baseline_share", "current_share", "delta_share"} <= \
            set(payload["attribution"][0])

    def test_attribution_unavailable_without_op_tables(self):
        assert attribute_regression({"schema": "x"}, {"schema": "x"}) == []
