"""Suite versioning: typed spec changes between rounds."""

import pytest

from repro.core.versioning import SpecChange, SuiteVersion, V06_CHANGES, apply_version
from repro.suite import create_benchmark


@pytest.fixture()
def specs():
    return {name: create_benchmark(name).spec
            for name in ("image_classification", "translation_recurrent")}


class TestSpecChange:
    def test_raise_threshold(self, specs):
        change = SpecChange("image_classification", "raise_threshold",
                            "raise", new_threshold=0.95)
        new = change.apply(specs["image_classification"])
        assert new.quality_threshold == 0.95
        # original untouched (immutability)
        assert specs["image_classification"].quality_threshold == 0.90

    def test_threshold_may_only_rise(self, specs):
        change = SpecChange("image_classification", "raise_threshold",
                            "lower?!", new_threshold=0.5)
        with pytest.raises(ValueError, match="only raise"):
            change.apply(specs["image_classification"])

    def test_allow_hyperparameter(self, specs):
        spec = specs["image_classification"]
        assert "momentum" not in spec.modifiable_hyperparameters
        change = SpecChange("image_classification", "allow_hyperparameter",
                            "open momentum", hyperparameter="momentum")
        new = change.apply(spec)
        assert "momentum" in new.modifiable_hyperparameters

    def test_allow_unknown_hp_rejected(self, specs):
        change = SpecChange("image_classification", "allow_hyperparameter",
                            "?", hyperparameter="nonexistent")
        with pytest.raises(ValueError):
            change.apply(specs["image_classification"])

    def test_change_default(self, specs):
        change = SpecChange("image_classification", "change_default",
                            "bigger batches", hyperparameter="batch_size", new_default=128)
        new = change.apply(specs["image_classification"])
        assert new.default_hyperparameters["batch_size"] == 128

    def test_wrong_benchmark_rejected(self, specs):
        change = SpecChange("recommendation", "raise_threshold", "x", new_threshold=1.0)
        with pytest.raises(ValueError, match="targets"):
            change.apply(specs["image_classification"])

    def test_unknown_kind(self, specs):
        change = SpecChange("image_classification", "teleport", "x")
        with pytest.raises(ValueError, match="unknown change kind"):
            change.apply(specs["image_classification"])


class TestSuiteVersion:
    def test_v06_applies(self, specs):
        updated = apply_version(specs, V06_CHANGES)
        assert updated["image_classification"].quality_threshold == 0.91
        assert updated["translation_recurrent"].quality_threshold == 40.0

    def test_old_submission_fails_new_round(self, specs):
        """A run that met v0.5's target may miss v0.6's raised target."""
        old = specs["translation_recurrent"]
        new = apply_version(specs, V06_CHANGES)["translation_recurrent"]
        borderline_quality = 39.0
        assert borderline_quality >= old.quality_threshold
        assert borderline_quality < new.quality_threshold

    def test_unknown_benchmark_in_version(self, specs):
        version = SuiteVersion("vX", (SpecChange("bogus", "raise_threshold", "x",
                                                 new_threshold=1.0),))
        with pytest.raises(KeyError):
            apply_version(specs, version)

    def test_changelog_renders(self):
        text = V06_CHANGES.changelog()
        assert "v0.6-mini" in text
        assert "LARS" in text
