"""Telemetry primitives: spans, metrics, exporters — deterministic via FakeClock."""

import json

import numpy as np
import pytest

from repro.core import FakeClock
from repro.core.mllog import Keys, LogEvent
from repro.framework.module import Module, Parameter
from repro.framework.tensor import Tensor
from repro.telemetry import (
    NULL_METRICS,
    NULL_SPAN,
    Instrumented,
    MetricsRegistry,
    Telemetry,
    Tracer,
    current_metrics,
    current_tracer,
    decompose_log_events,
    merge_snapshots,
    trace_from_log_events,
)


class TestTracer:
    def test_span_records_deterministic_times(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner", detail=7):
                clock.advance(0.5)
            clock.advance(0.25)
        outer, inner = tracer.spans
        assert outer.name == "outer" and outer.depth == 0
        assert inner.name == "inner" and inner.depth == 1
        assert inner.start_s == 1.0 and inner.duration_s == 0.5
        assert outer.duration_s == pytest.approx(1.75)
        assert inner.args == {"detail": 7}

    def test_span_set_attaches_args(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work") as span:
            span.set(items=3)
        assert tracer.spans[0].args["items"] == 3

    def test_exception_closes_span_and_tags_error(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                clock.advance(2.0)
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.end_s == 2.0
        assert span.args["error"] == "ValueError"
        assert tracer.open_spans == []

    def test_instant_event(self):
        clock = FakeClock(5.0)
        tracer = Tracer(clock=clock)
        tracer.instant("marker", note="x")
        (span,) = tracer.spans
        assert span.start_s == span.end_s == 5.0

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(clock=FakeClock(), enabled=False)
        cm = tracer.span("anything", a=1)
        assert cm is NULL_SPAN  # one shared object, no allocation per span
        with cm as span:
            span.set(b=2)
        tracer.instant("marker")
        assert tracer.spans == []

    def test_chrome_export_shape(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, pid=3)
        with tracer.span("run"):
            clock.advance(2.0)
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == 2e6  # trace_event times are microseconds
        assert event["pid"] == 3
        json.loads(tracer.to_json())  # valid JSON document

    def test_open_spans_not_exported(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        cm = tracer.span("open")
        cm.__enter__()
        assert tracer.chrome_events() == []


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("samples").inc(64)
        reg.counter("samples").inc(36)
        assert reg.counter("samples").value == 100
        with pytest.raises(ValueError):
            reg.counter("samples").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("eps").set(123.5)
        assert reg.gauge("eps").value == 123.5

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # one per bucket incl. overflow
        assert h.count == 4
        assert h.mean == pytest.approx(55.55 / 4)
        assert h.min == 0.05 and h.max == 50.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.3)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"] == {"type": "counter", "value": 1.0}
        assert snap["g"]["value"] == 2.0
        assert snap["h"]["count"] == 1

    def test_render_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("samples_seen").inc(5)
        reg.histogram("epoch_seconds").observe(1.5)
        text = reg.render()
        assert "samples_seen" in text and "counter" in text
        assert "epoch_seconds" in text and "n=1" in text

    def test_null_registry_is_noop(self):
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(2.0)
        assert NULL_METRICS.snapshot() == {}
        assert "x" not in NULL_METRICS


class TestMergeSnapshots:
    def test_null_type_instruments_are_skipped(self):
        # A disabled session snapshots instruments as {"type": "null"};
        # merging must drop them rather than poison real aggregates.
        real = {"samples": {"type": "counter", "value": 10.0}}
        nulled = {"samples": {"type": "null"},
                  "other": {"type": "null"}}
        merged = merge_snapshots([nulled, real, nulled])
        assert merged == {"samples": {"type": "counter", "value": 10.0}}

    def test_mismatched_histogram_buckets_raise(self):
        a_reg, b_reg = MetricsRegistry(), MetricsRegistry()
        a_reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        b_reg.histogram("lat", buckets=(0.1, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="mismatched bucket layouts"):
            merge_snapshots([a_reg.snapshot(), b_reg.snapshot()])

    def test_gauge_last_write_across_three_sessions(self):
        sessions = []
        for value in (1.0, 2.0, 3.0):
            reg = MetricsRegistry()
            reg.gauge("eps").set(value)
            sessions.append(reg.snapshot())
        # Merge order = session order: the last session's value wins.
        assert merge_snapshots(sessions)["eps"]["value"] == 3.0
        assert merge_snapshots(reversed(sessions))["eps"]["value"] == 1.0


class TestAmbientContext:
    def test_default_is_disabled(self):
        assert not current_tracer().enabled
        assert not current_metrics().enabled

    def test_activation_scopes_the_session(self):
        tele = Telemetry(clock=FakeClock())
        with tele.activate():
            assert current_tracer() is tele.tracer
            current_metrics().counter("k").inc()
        assert not current_tracer().enabled
        assert tele.metrics.counter("k").value == 1

    def test_disabled_singleton_shared(self):
        assert Telemetry.disabled() is Telemetry.disabled()
        assert not Telemetry.disabled().enabled


class _Scale(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.array([2.0]))

    def forward(self, x: Tensor) -> Tensor:
        return x * self.w


class TestInstrumented:
    def test_forward_and_backward_spans(self):
        clock = FakeClock()
        tele = Telemetry(clock=clock)
        model = Instrumented(_Scale(), label="scale")
        with tele.activate():
            out = model(Tensor(np.array([3.0])))
            loss = out.sum()
            model.backward(loss)
        names = [s.name for s in tele.tracer.spans]
        assert "forward/scale" in names and "backward/scale" in names
        assert tele.metrics.counter("scale.forward_calls").value == 1
        assert model.inner.w.grad is not None  # backward actually ran

    def test_transparent_without_telemetry(self):
        model = Instrumented(_Scale())
        out = model(Tensor(np.array([3.0])))
        assert float(out.data[0]) == 6.0
        assert len(model.parameters()) == 1

    def test_forward_hook_fires_and_removes(self):
        model = _Scale()
        seen = []
        remove = model.register_forward_hook(lambda m, args, out: seen.append(out))
        model(Tensor(np.array([1.0])))
        assert len(seen) == 1
        remove()
        model(Tensor(np.array([1.0])))
        assert len(seen) == 1


def _interval_log(pairs):
    events = []
    for key, t_ms, meta in pairs:
        events.append(LogEvent(key=key, value=None, time_ms=t_ms, metadata=meta))
    return events


class TestLogDerivedTelemetry:
    EVENTS = _interval_log([
        (Keys.INIT_START, 0.0, {}),
        (Keys.INIT_STOP, 100.0, {}),
        (Keys.MODEL_CREATION_START, 100.0, {}),
        (Keys.MODEL_CREATION_STOP, 300.0, {}),
        (Keys.RUN_START, 300.0, {}),
        (Keys.EPOCH_START, 300.0, {"epoch_num": 1}),
        (Keys.EPOCH_STOP, 1300.0, {"epoch_num": 1}),
        (Keys.EVAL_START, 1300.0, {"epoch_num": 1}),
        (Keys.EVAL_STOP, 1500.0, {"epoch_num": 1}),
        (Keys.RUN_STOP, 1600.0, {}),
    ])

    def test_decompose_log_events(self):
        phases = decompose_log_events(self.EVENTS)
        assert phases.init_s == pytest.approx(0.1)
        assert phases.model_creation_s == pytest.approx(0.2)
        assert phases.run_s == pytest.approx(1.3)
        assert phases.train_s == pytest.approx(1.0)
        assert phases.eval_s == pytest.approx(0.2)
        assert phases.other_s == pytest.approx(0.1)
        assert phases.epochs == 1 and phases.evals == 1

    def test_trace_from_log_events(self):
        events = self.EVENTS + [
            LogEvent(key=Keys.EVAL_ACCURACY, value=0.9, time_ms=1500.0,
                     metadata={"epoch_num": 1})
        ]
        doc = trace_from_log_events(events, pid=2)
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"init", "model_creation", "run", "epoch 1", "eval 1"} <= names
        accuracy = [e for e in doc["traceEvents"] if e["name"] == "eval_accuracy"]
        assert accuracy and accuracy[0]["ph"] == "i"
        run_event = next(e for e in doc["traceEvents"] if e["name"] == "run")
        assert run_event["ts"] == pytest.approx(300.0 * 1000)  # µs
        assert run_event["dur"] == pytest.approx(1300.0 * 1000)
        json.dumps(doc)  # Chrome-loadable

    def test_unbalanced_stop_tolerated(self):
        events = _interval_log([(Keys.EPOCH_STOP, 10.0, {"epoch_num": 1})])
        assert decompose_log_events(events).epochs == 0
