"""Runner-level observability: breakdown, abort, trace structure, log keys."""

import json

import numpy as np
import pytest

from repro.core import (
    BenchmarkRunner,
    FakeClock,
    Keys,
    MLLogger,
    RunFailure,
    TrainingTimer,
    parse_log_lines,
)
from repro.core.mllog import LogEvent
from repro.telemetry import Telemetry
from tests.core.fakes import FakeBenchmark, FakeSession


def run_with_telemetry(epoch_cost=1.0, seed=0):
    clock = FakeClock()
    bench = FakeBenchmark(clock=clock, epoch_cost_s=epoch_cost)
    tele = Telemetry(clock=clock, pid=seed)
    runner = BenchmarkRunner(clock=clock)
    result = runner.run(bench, seed=seed, telemetry=tele)
    return result, tele


class TestRunResultBreakdown:
    def test_breakdown_attached_and_consistent(self):
        """Regression: the breakdown must sum consistently with the score."""
        result, _ = run_with_telemetry(epoch_cost=2.0)
        b = result.breakdown
        assert b is not None and not b.aborted
        assert b.time_to_train_seconds == pytest.approx(result.time_to_train_s)
        overflow = b.model_creation_seconds - b.excluded_model_creation_seconds
        assert b.run_seconds + overflow == pytest.approx(result.time_to_train_s)

    def test_breakdown_present_without_telemetry(self):
        clock = FakeClock()
        runner = BenchmarkRunner(clock=clock)
        result = runner.run(FakeBenchmark(clock=clock, epoch_cost_s=1.0), seed=0)
        assert result.breakdown is not None
        assert result.telemetry is None  # telemetry only when a session is attached


class TestRunTrace:
    def test_nested_spans_for_every_phase(self):
        result, tele = run_with_telemetry()
        spans = tele.tracer.spans
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name.split(":")[0], []).append(s)
        assert len(by_name["run"]) == 1
        assert len(by_name["init"]) == 1
        assert len(by_name["model_creation"]) == 1
        assert len(by_name["epoch"]) == result.epochs
        assert len(by_name["eval"]) == len(result.quality_history)
        assert len(by_name["train_step"]) == result.epochs  # from the session
        # Nesting: every epoch span lies inside the run span.
        (run_span,) = by_name["run"]
        for epoch_span in by_name["epoch"]:
            assert run_span.start_s <= epoch_span.start_s
            assert epoch_span.end_s <= run_span.end_s
            assert epoch_span.depth == run_span.depth + 1

    def test_trace_deterministic_under_fake_clock(self):
        _, a = run_with_telemetry(seed=3)
        _, b = run_with_telemetry(seed=3)
        assert a.tracer.chrome_events() == b.tracer.chrome_events()

    def test_chrome_snapshot_on_result(self):
        result, _ = run_with_telemetry()
        doc = result.telemetry.to_chrome_trace()
        json.dumps(doc)
        assert {e["name"] for e in doc["traceEvents"]} >= {"init", "model_creation",
                                                           "epoch", "eval"}

    def test_metrics_snapshot_on_result(self):
        result, _ = run_with_telemetry(epoch_cost=2.0)
        metrics = result.telemetry.metrics
        assert metrics["samples_seen"]["value"] == 32 * result.epochs
        assert metrics["epoch_seconds"]["count"] == result.epochs
        assert metrics["examples_per_second"]["value"] == pytest.approx(16.0)


class TestThroughputLogKeys:
    def test_tracked_stats_and_throughput_round_trip(self):
        result, _ = run_with_telemetry(epoch_cost=2.0)
        events = parse_log_lines("\n".join(result.log_lines))
        tracked = [e for e in events if e.key == Keys.TRACKED_STATS]
        assert len(tracked) == result.epochs
        assert tracked[0].value == {"epoch_seconds": 2.0, "samples": 32}
        assert tracked[0].metadata["epoch_num"] == 1
        throughput = [e for e in events if e.key == Keys.THROUGHPUT]
        assert len(throughput) == result.epochs
        assert throughput[0].value == pytest.approx(16.0)

    def test_tracked_stats_without_samples_counter(self):
        # Telemetry disabled: the null counter never moves, but epoch
        # seconds still land in the log.
        clock = FakeClock()
        runner = BenchmarkRunner(clock=clock)
        result = runner.run(FakeBenchmark(clock=clock, epoch_cost_s=1.0), seed=0)
        events = parse_log_lines("\n".join(result.log_lines))
        tracked = [e for e in events if e.key == Keys.TRACKED_STATS]
        assert tracked and tracked[0].value == {"epoch_seconds": 1.0}


class _ExplodingSession(FakeSession):
    def __init__(self, *args, fail_at_epoch=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_at_epoch = fail_at_epoch

    def run_epoch(self, epoch: int) -> None:
        if epoch + 1 == self.fail_at_epoch:
            raise ArithmeticError("loss is NaN")
        super().run_epoch(epoch)


class _ExplodingBenchmark(FakeBenchmark):
    def create_session(self, seed, hyperparameters):
        return _ExplodingSession(seed, hyperparameters, clock=self.clock,
                                 epoch_cost_s=self.epoch_cost_s)


class TestAbort:
    def test_timer_abort_finalizes_mid_run(self):
        clock = FakeClock()
        timer = TrainingTimer(clock)
        timer.init_start(); timer.init_stop()
        timer.model_creation_start(); timer.model_creation_stop()
        timer.run_start()
        clock.advance(3.0)
        timer.abort()
        assert timer.state == "aborted"
        assert timer.time_to_train() == pytest.approx(3.0)
        assert timer.breakdown().aborted

    def test_timer_abort_from_early_phase(self):
        clock = FakeClock()
        timer = TrainingTimer(clock)
        timer.init_start()
        clock.advance(1.0)
        timer.abort()
        b = timer.breakdown()
        assert b.aborted and b.init_seconds == pytest.approx(1.0)
        assert b.run_seconds == 0.0

    def test_abort_after_stop_rejected(self):
        clock = FakeClock()
        timer = TrainingTimer(clock)
        timer.init_start(); timer.init_stop()
        timer.model_creation_start(); timer.model_creation_stop()
        timer.run_start(); timer.run_stop()
        with pytest.raises(RuntimeError):
            timer.abort()
        with pytest.raises(RuntimeError):
            timer.abort()  # still rejected once aborted/stopped

    def test_runner_logs_error_run_stop(self):
        clock = FakeClock()
        bench = _ExplodingBenchmark(clock=clock, epoch_cost_s=1.0)
        runner = BenchmarkRunner(clock=clock)
        with pytest.raises(RunFailure) as excinfo:
            runner.run(bench, seed=0)
        failure = excinfo.value
        assert isinstance(failure.__cause__, ArithmeticError)
        log = MLLogger.from_lines(failure.log_lines)
        stop = log.last(Keys.RUN_STOP)
        assert stop is not None
        assert stop.metadata["status"] == "error"
        assert stop.metadata["error"] == "ArithmeticError"
        # Timing was finalized, not left stuck: one epoch ran before the blast.
        assert failure.breakdown.aborted
        assert failure.breakdown.time_to_train_seconds == pytest.approx(1.0)

    def test_failed_run_trace_spans_closed(self):
        clock = FakeClock()
        bench = _ExplodingBenchmark(clock=clock, epoch_cost_s=1.0)
        tele = Telemetry(clock=clock)
        runner = BenchmarkRunner(clock=clock)
        with pytest.raises(RunFailure) as excinfo:
            runner.run(bench, seed=0, telemetry=tele)
        assert tele.tracer.open_spans == []
        failed = [s for s in tele.tracer.spans if s.args.get("error")]
        assert failed  # the failing epoch span carries the error tag
        assert excinfo.value.telemetry is not None

    def test_failure_telemetry_is_a_loadable_partial_trace(self):
        # Satellite: the snapshot riding on RunFailure must already hold
        # the exported (closed) spans, so the CLI can write a trace file
        # without touching the live tracer again.
        clock = FakeClock()
        bench = _ExplodingBenchmark(clock=clock, epoch_cost_s=1.0)
        tele = Telemetry(clock=clock, profile="full")
        runner = BenchmarkRunner(clock=clock)
        with pytest.raises(RunFailure) as excinfo:
            runner.run(bench, seed=0, telemetry=tele)
        snap = excinfo.value.telemetry
        names = {e["name"] for e in snap.trace_events if e.get("ph") == "X"}
        assert "epoch" in names  # aborted spans exported anyway
        assert any(n.startswith("run:") for n in names)
        tagged = [e for e in snap.trace_events
                  if e.get("args", {}).get("error") == "ArithmeticError"]
        assert tagged  # the unwound spans carry the failure tag
        json.dumps(snap.trace_events)  # serializable as-is
        # The profiler snapshot flushed too: one sampled window ran
        # before the blast.
        assert snap.op_profile.get("mode") == "full"
        assert snap.op_profile.get("steps_sampled", 0) >= 1


class TestMLLogParsing:
    JUNK = [
        "launcher: starting up",
        "",
        '  :::MLLOG {"key": "seed", "value": 1, "time_ms": 0.5, "metadata": {}}',
        "Traceback (most recent call last):",
        ':::MLLOG {"key": "run_start", "value": null, "time_ms": 1.0, "metadata": {}}',
    ]

    def test_from_lines_skips_non_mllog_lines(self):
        log = MLLogger.from_lines(self.JUNK)
        assert [e.key for e in log.events] == ["seed", "run_start"]

    def test_parse_log_lines_matches_from_lines(self):
        text = "\n".join(self.JUNK)
        assert ([e.key for e in parse_log_lines(text)]
                == [e.key for e in MLLogger.from_lines(self.JUNK).events])

    def test_jsonify_numpy_array(self):
        event = LogEvent(key="tracked_stats", value=np.array([1.5, 2.5]),
                         time_ms=0.0, metadata={"shape": np.array([2])})
        parsed = LogEvent.from_line(event.to_line())
        assert parsed.value == [1.5, 2.5]
        assert parsed.metadata["shape"] == [2]

    def test_jsonify_numpy_scalar_still_works(self):
        event = LogEvent(key="eval_accuracy", value=np.float64(0.75), time_ms=0.0)
        assert LogEvent.from_line(event.to_line()).value == 0.75
