"""End-to-end integration: a real benchmark through the whole harness.

Uses the recommendation benchmark (sub-second runs) to exercise the full
pipeline exactly as a submitter would: timed runs → structured logs →
compliance review → scoring → published report.
"""

import numpy as np
import pytest

from repro.core import (
    BenchmarkRunner,
    Category,
    Division,
    Keys,
    MLLogger,
    Submission,
    SystemDescription,
    SystemType,
    build_report,
    review_submission,
    score_runs,
)
from repro.suite import create_benchmark


@pytest.fixture(scope="module")
def scored_submission():
    bench = create_benchmark("recommendation")
    runner = BenchmarkRunner()
    runs = [runner.run(bench, seed=s) for s in range(bench.spec.required_runs)]
    system = SystemDescription(
        submitter="integration",
        system_name="ci-box",
        system_type=SystemType.CLOUD,
        num_nodes=1,
        processors_per_node=1,
        processor_type="cpu",
        accelerators_per_node=0,
        accelerator_type="none",
        host_memory_gb=8.0,
        interconnect="none",
    )
    sub = Submission(system, Division.CLOSED, Category.AVAILABLE)
    sub.add_runs(bench.spec.name, runs)
    return bench, runs, sub


class TestEndToEnd:
    def test_all_runs_reach_target(self, scored_submission):
        bench, runs, _ = scored_submission
        for r in runs:
            assert r.reached_target
            assert r.quality >= bench.spec.quality_threshold

    def test_time_to_train_positive_and_wallclock_scale(self, scored_submission):
        _, runs, _ = scored_submission
        for r in runs:
            assert 0.0 < r.time_to_train_s < 60.0

    def test_seed_variation_exists(self, scored_submission):
        _, runs, _ = scored_submission
        assert len({r.epochs for r in runs}) > 1 or len(
            {round(r.time_to_train_s, 3) for r in runs}
        ) > 1

    def test_logs_reconstruct_quality_history(self, scored_submission):
        _, runs, _ = scored_submission
        for r in runs:
            log = MLLogger.from_lines(r.log_lines)
            evals = [e.value for e in log.find(Keys.EVAL_ACCURACY)]
            np.testing.assert_allclose(evals, r.quality_history, rtol=1e-6)

    def test_compliance_review_passes(self, scored_submission):
        bench, _, sub = scored_submission
        report = review_submission(sub, {bench.spec.name: bench.spec})
        assert report.compliant, str(report)

    def test_scoring_and_report(self, scored_submission):
        bench, runs, sub = scored_submission
        score = score_runs(runs, required_runs=bench.spec.required_runs)
        assert score.dropped_fastest_s <= score.time_to_train_s <= score.dropped_slowest_s
        report = build_report([sub])
        assert len(report.rows) == 1
        row = report.rows[0]
        assert row.time_to_train_s == pytest.approx(score.time_to_train_s)
        assert row.scale.cloud_scale is not None  # cloud system

    def test_open_division_allows_modified_model(self):
        """An Open-division run may change fixed HPs; review must accept."""
        bench = create_benchmark("recommendation")
        runner = BenchmarkRunner()
        runs = [
            runner.run(bench, seed=s, hyperparameter_overrides={"gmf_dim": 16})
            for s in range(bench.spec.required_runs)
        ]
        system = SystemDescription(
            submitter="open-team", system_name="研-box", system_type=SystemType.ON_PREMISE,
            num_nodes=1, processors_per_node=1, processor_type="cpu",
            accelerators_per_node=0, accelerator_type="none",
            host_memory_gb=8.0, interconnect="none",
        )
        sub = Submission(system, Division.OPEN, Category.RESEARCH)
        sub.add_runs(bench.spec.name, runs)
        report = review_submission(sub, {bench.spec.name: bench.spec})
        assert report.compliant, str(report)

    def test_closed_division_rejects_same_modification(self):
        bench = create_benchmark("recommendation")
        runner = BenchmarkRunner()
        runs = [
            runner.run(bench, seed=s, hyperparameter_overrides={"gmf_dim": 16})
            for s in range(bench.spec.required_runs)
        ]
        system = SystemDescription(
            submitter="closed-team", system_name="box", system_type=SystemType.ON_PREMISE,
            num_nodes=1, processors_per_node=1, processor_type="cpu",
            accelerators_per_node=0, accelerator_type="none",
            host_memory_gb=8.0, interconnect="none",
        )
        sub = Submission(system, Division.CLOSED, Category.AVAILABLE)
        sub.add_runs(bench.spec.name, runs)
        report = review_submission(sub, {bench.spec.name: bench.spec})
        assert not report.compliant
