"""MiniSSD and MiniMaskRCNN: encoding, matching, RoIAlign, training step."""

import numpy as np
import pytest

from repro.datasets import SceneConfig, ShapeScenes
from repro.framework import SGD, Tensor
from repro.models import (
    MiniMaskRCNN,
    MiniSSD,
    decode_boxes,
    encode_boxes,
    match_anchors,
    roi_align,
)
from repro.models.ssd import AnchorGrid

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def scenes():
    return ShapeScenes(SceneConfig(train_size=8, val_size=2))


def scene_targets(scene_list):
    boxes = [np.stack([o.box for o in s.objects]) for s in scene_list]
    labels = [np.array([o.label for o in s.objects]) for s in scene_list]
    masks = [np.stack([o.mask for o in s.objects]) for s in scene_list]
    return boxes, labels, masks


class TestBoxCodec:
    def test_roundtrip(self):
        anchors = np.array([[4.0, 4.0, 12.0, 12.0], [10.0, 10.0, 20.0, 24.0]])
        boxes = np.array([[5.0, 3.0, 13.0, 11.0], [8.0, 12.0, 22.0, 26.0]])
        np.testing.assert_allclose(decode_boxes(encode_boxes(boxes, anchors), anchors),
                                   boxes, atol=1e-4)

    def test_identity_encoding_is_zero(self):
        anchors = np.array([[4.0, 4.0, 12.0, 12.0]])
        np.testing.assert_allclose(encode_boxes(anchors, anchors), 0.0, atol=1e-7)

    def test_decode_clips_extreme_scales(self):
        anchors = np.array([[0.0, 0.0, 8.0, 8.0]])
        offsets = np.array([[0.0, 0.0, 100.0, 100.0]], dtype=np.float32)
        out = decode_boxes(offsets, anchors)
        assert np.isfinite(out).all()


class TestAnchorGrid:
    def test_count(self):
        grid = AnchorGrid(32, 8, scales=(9.0, 14.0))
        assert len(grid) == 8 * 8 * 2

    def test_centers_cover_image(self):
        grid = AnchorGrid(32, 8, scales=(9.0,))
        centers_x = (grid.boxes[:, 0] + grid.boxes[:, 2]) / 2
        assert centers_x.min() == pytest.approx(2.0)
        assert centers_x.max() == pytest.approx(30.0)


class TestMatching:
    def test_high_iou_positive(self):
        anchors = np.array([[0.0, 0.0, 10.0, 10.0], [20.0, 20.0, 30.0, 30.0]])
        gt = np.array([[1.0, 1.0, 11.0, 11.0]])
        labels, matched = match_anchors(anchors, gt, np.array([2]))
        assert labels[0] == 2
        assert matched[0] == 0

    def test_best_anchor_forced_match(self):
        # GT overlapping no anchor above threshold still claims its best.
        anchors = np.array([[0.0, 0.0, 10.0, 10.0], [16.0, 16.0, 26.0, 26.0]])
        gt = np.array([[8.0, 8.0, 18.0, 18.0]])  # weak IoU with both
        labels, matched = match_anchors(anchors, gt, np.array([1]), iou_threshold=0.9)
        assert (labels != 0).sum() == 1

    def test_empty_gt(self):
        anchors = np.array([[0.0, 0.0, 10.0, 10.0]])
        labels, matched = match_anchors(anchors, np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert labels[0] == 0
        assert matched[0] == -1


class TestRoIAlign:
    def test_shapes(self):
        feat = Tensor(RNG.normal(size=(2, 4, 8, 8)).astype(np.float32))
        boxes = np.array([[0.0, 0.0, 16.0, 16.0], [8.0, 8.0, 32.0, 32.0]])
        out = roi_align(feat, boxes, np.array([0, 1]), output_size=4, spatial_scale=0.25)
        assert out.shape == (2, 4, 4, 4)

    def test_constant_feature_map(self):
        feat = Tensor(np.full((1, 2, 8, 8), 3.0, dtype=np.float32))
        out = roi_align(feat, np.array([[4.0, 4.0, 20.0, 20.0]]), np.array([0]), 3, 0.25)
        np.testing.assert_allclose(out.data, 3.0, atol=1e-6)

    def test_empty_boxes(self):
        feat = Tensor(RNG.normal(size=(1, 2, 8, 8)).astype(np.float32))
        out = roi_align(feat, np.zeros((0, 4)), np.zeros(0, dtype=int), 3, 0.25)
        assert out.shape == (0, 2, 3, 3)

    def test_gradient_flows_to_features(self):
        feat = Tensor(RNG.normal(size=(1, 2, 8, 8)).astype(np.float32), requires_grad=True)
        out = roi_align(feat, np.array([[0.0, 0.0, 16.0, 16.0]]), np.array([0]), 4, 0.25)
        out.sum().backward()
        assert feat.grad is not None
        assert np.abs(feat.grad).sum() > 0

    def test_selects_correct_batch_element(self):
        data = np.zeros((2, 1, 4, 4), dtype=np.float32)
        data[1] = 7.0
        feat = Tensor(data)
        out = roi_align(feat, np.array([[0.0, 0.0, 16.0, 16.0]]), np.array([1]), 2, 0.25)
        np.testing.assert_allclose(out.data, 7.0)


class TestMiniSSD:
    def test_head_shapes(self):
        ssd = MiniSSD(3, RNG)
        cls, box = ssd(Tensor(RNG.normal(size=(2, 1, 32, 32)).astype(np.float32)))
        assert cls.shape == (2, len(ssd.anchors), 4)
        assert box.shape == (2, len(ssd.anchors), 4)

    def test_loss_backward(self, scenes):
        ssd = MiniSSD(3, np.random.default_rng(1))
        imgs = Tensor(ShapeScenes.batch_images(scenes.train[:4]))
        boxes, labels, _ = scene_targets(scenes.train[:4])
        loss = ssd.loss(imgs, boxes, labels)
        loss.backward()
        assert np.isfinite(loss.data)
        assert all(p.grad is not None for p in ssd.parameters())

    def test_loss_decreases_with_training(self, scenes):
        rng = np.random.default_rng(2)
        ssd = MiniSSD(3, rng)
        imgs = Tensor(ShapeScenes.batch_images(scenes.train[:4]))
        boxes, labels, _ = scene_targets(scenes.train[:4])
        opt = SGD(ssd.parameters(), lr=0.01, momentum=0.9)
        first = None
        for step in range(12):
            loss = ssd.loss(imgs, boxes, labels)
            if step == 0:
                first = float(loss.data)
            ssd.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < first

    def test_detect_returns_valid_detections(self, scenes):
        ssd = MiniSSD(3, np.random.default_rng(3)).eval()
        imgs = Tensor(ShapeScenes.batch_images(scenes.val))
        dets = ssd.detect(imgs, score_threshold=0.0, image_ids=[10, 11])
        for d in dets:
            assert d.image_id in (10, 11)
            assert 0 <= d.label < 3
            assert 0.0 <= d.score <= 1.0
            assert d.box.shape == (4,)
            assert (d.box >= 0).all() and (d.box <= 32).all()

    def test_empty_gt_image_loss_finite(self):
        ssd = MiniSSD(3, np.random.default_rng(4))
        imgs = Tensor(RNG.normal(size=(1, 1, 32, 32)).astype(np.float32))
        loss = ssd.loss(imgs, [np.zeros((0, 4))], [np.zeros(0, dtype=int)])
        assert np.isfinite(loss.data)


class TestMiniMaskRCNN:
    def test_loss_backward(self, scenes):
        model = MiniMaskRCNN(3, np.random.default_rng(5))
        imgs = Tensor(ShapeScenes.batch_images(scenes.train[:2]))
        boxes, labels, masks = scene_targets(scenes.train[:2])
        loss = model.loss(imgs, boxes, labels, masks)
        loss.backward()
        assert np.isfinite(loss.data)

    def test_two_stage_structure(self):
        model = MiniMaskRCNN(3, np.random.default_rng(6))
        imgs = Tensor(RNG.normal(size=(2, 1, 32, 32)).astype(np.float32))
        feat = model.backbone(imgs)
        obj, deltas = model.rpn(feat)
        assert obj.shape == (2, len(model.anchors))
        proposals = model.propose(obj.data, deltas.data)
        assert len(proposals) == 2
        for p in proposals:
            assert p.shape[1] == 4
            assert len(p) <= model.proposals_per_image

    def test_detect_produces_masks(self, scenes):
        model = MiniMaskRCNN(3, np.random.default_rng(7)).eval()
        imgs = Tensor(ShapeScenes.batch_images(scenes.val))
        dets = model.detect(imgs, score_threshold=0.0)
        assert len(dets) > 0
        for d in dets:
            assert d.mask is not None
            assert d.mask.shape == (32, 32)
            assert d.mask.dtype == bool

    def test_mask_crop_roundtrip(self):
        model = MiniMaskRCNN(3, np.random.default_rng(8))
        mask = np.zeros((32, 32), dtype=bool)
        mask[8:16, 8:16] = True
        box = np.array([8.0, 8.0, 16.0, 16.0])
        crop = model._crop_mask(mask, box)
        assert crop.shape == (model.MASK_SIZE, model.MASK_SIZE)
        assert crop.mean() > 0.9  # box exactly covers the mask
        pasted = model._paste_mask(crop, box)
        inter = (pasted & mask).sum()
        union = (pasted | mask).sum()
        assert inter / union > 0.7

    def test_training_step_reduces_loss(self, scenes):
        rng = np.random.default_rng(9)
        model = MiniMaskRCNN(3, rng)
        imgs = Tensor(ShapeScenes.batch_images(scenes.train[:2]))
        boxes, labels, masks = scene_targets(scenes.train[:2])
        opt = SGD(model.parameters(), lr=0.02, momentum=0.9)
        first = None
        for step in range(10):
            loss = model.loss(imgs, boxes, labels, masks)
            if step == 0:
                first = float(loss.data)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < first
