"""GNMT, Transformer, NCF, and MiniGoNet behaviour."""

import numpy as np
import pytest

from repro.datasets import SyntheticTranslation, TranslationConfig
from repro.datasets.translation import PAD
from repro.framework import Adam, SGD, Tensor
from repro.go import GoBoard
from repro.models import NCF, MiniGNMT, MiniGoNet, MiniTransformer

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticTranslation(TranslationConfig(train_size=60, test_size=10))


def batch(corpus, n=8, offset=0):
    pairs = corpus.train_pairs[offset : offset + n]
    src = corpus.encoder_inputs([s for s, _ in pairs])
    dec_in, dec_out = corpus.decoder_io([t for _, t in pairs])
    return src, dec_in, dec_out


class TestMiniGNMT:
    def test_logit_shapes(self, corpus):
        model = MiniGNMT(corpus.vocab.size, np.random.default_rng(1))
        src, dec_in, dec_out = batch(corpus, 4)
        logits = model(src, dec_in)
        assert logits.shape == (4, dec_in.shape[1], corpus.vocab.size)

    def test_loss_finite_and_backward(self, corpus):
        model = MiniGNMT(corpus.vocab.size, np.random.default_rng(2))
        src, dec_in, dec_out = batch(corpus, 4)
        loss = model.loss(src, dec_in, dec_out)
        loss.backward()
        assert np.isfinite(loss.data)
        assert all(p.grad is not None for p in model.parameters())

    def test_initial_loss_near_uniform(self, corpus):
        model = MiniGNMT(corpus.vocab.size, np.random.default_rng(3))
        src, dec_in, dec_out = batch(corpus, 8)
        loss = model.loss(src, dec_in, dec_out)
        assert abs(float(loss.data) - np.log(corpus.vocab.size)) < 0.6

    def test_greedy_decode_terminates(self, corpus):
        model = MiniGNMT(corpus.vocab.size, np.random.default_rng(4))
        src, _, _ = batch(corpus, 3)
        outs = model.greedy_decode(src, max_len=10)
        assert len(outs) == 3
        assert all(len(o) <= 10 for o in outs)

    def test_pad_positions_ignored_in_loss(self, corpus):
        # Doubling padding on the decoder side must not change the loss.
        model = MiniGNMT(corpus.vocab.size, np.random.default_rng(5))
        src, dec_in, dec_out = batch(corpus, 4)
        extra_in = np.concatenate([dec_in, np.full((4, 3), PAD, dtype=np.int64)], axis=1)
        extra_out = np.concatenate([dec_out, np.full((4, 3), PAD, dtype=np.int64)], axis=1)
        base = float(model.loss(src, dec_in, dec_out).data)
        padded = float(model.loss(src, extra_in, extra_out).data)
        assert base == pytest.approx(padded, rel=1e-3)

    def test_learns_single_pair(self, corpus):
        rng = np.random.default_rng(6)
        model = MiniGNMT(corpus.vocab.size, rng, embed_dim=32, hidden=48)
        src, dec_in, dec_out = batch(corpus, 2)
        opt = Adam(model.parameters(), lr=5e-3)
        for _ in range(60):
            loss = model.loss(src, dec_in, dec_out)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.3


class TestMiniTransformer:
    def test_logit_shapes(self, corpus):
        model = MiniTransformer(corpus.vocab.size, np.random.default_rng(1))
        src, dec_in, dec_out = batch(corpus, 4)
        logits = model(src, dec_in)
        assert logits.shape == (4, dec_in.shape[1], corpus.vocab.size)

    def test_causality(self, corpus):
        """Changing a later target token must not affect earlier logits."""
        model = MiniTransformer(corpus.vocab.size, np.random.default_rng(2)).eval()
        src, dec_in, _ = batch(corpus, 1)
        base = model(src, dec_in).data
        perturbed = dec_in.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % corpus.vocab.size
        out = model(src, perturbed).data
        np.testing.assert_allclose(base[0, :-1], out[0, :-1], atol=1e-4)

    def test_loss_backward(self, corpus):
        model = MiniTransformer(corpus.vocab.size, np.random.default_rng(3))
        src, dec_in, dec_out = batch(corpus, 4)
        loss = model.loss(src, dec_in, dec_out)
        loss.backward()
        assert np.isfinite(loss.data)

    def test_greedy_decode_stops_at_eos(self, corpus):
        model = MiniTransformer(corpus.vocab.size, np.random.default_rng(4))
        src, _, _ = batch(corpus, 2)
        outs = model.greedy_decode(src, max_len=12)
        assert len(outs) == 2
        from repro.datasets.translation import EOS

        for o in outs:
            assert EOS not in o

    def test_learns_single_pair(self, corpus):
        rng = np.random.default_rng(5)
        model = MiniTransformer(corpus.vocab.size, rng, d_model=32, d_ff=64)
        src, dec_in, dec_out = batch(corpus, 2)
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(80):
            loss = model.loss(src, dec_in, dec_out, label_smoothing=0.0)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.3


class TestNCF:
    def test_logit_shape(self):
        model = NCF(10, 20, np.random.default_rng(1))
        out = model(np.array([0, 1, 2]), np.array([3, 4, 5]))
        assert out.shape == (3,)

    def test_loss_backward(self):
        model = NCF(10, 20, np.random.default_rng(2))
        users = np.array([0, 1, 2, 3])
        items = np.array([0, 5, 10, 15])
        labels = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        loss = model.loss(users, items, labels)
        loss.backward()
        assert np.isfinite(loss.data)
        assert all(p.grad is not None for p in model.parameters())

    def test_score_has_no_graph(self):
        model = NCF(10, 20, np.random.default_rng(3))
        s = model.score(np.array([0]), np.array([0]))
        assert isinstance(s, np.ndarray)

    def test_learns_simple_preference(self):
        """Can memorize a deterministic user-item rule."""
        rng = np.random.default_rng(4)
        model = NCF(8, 8, rng)
        users, items = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        users, items = users.reshape(-1), items.reshape(-1)
        labels = (users == items).astype(np.float32)  # diagonal preference
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(150):
            loss = model.loss(users, items, labels)
            model.zero_grad()
            loss.backward()
            opt.step()
        scores = model.score(users, items)
        auc_proxy = scores[labels == 1].mean() - scores[labels == 0].mean()
        assert auc_proxy > 1.0


class TestMiniGoNet:
    def test_output_shapes(self):
        net = MiniGoNet(5, np.random.default_rng(1))
        planes = np.stack([GoBoard(5).feature_planes() for _ in range(3)])
        policy, value = net(planes)
        assert policy.shape == (3, 26)
        assert value.shape == (3,)

    def test_value_bounded(self):
        net = MiniGoNet(5, np.random.default_rng(2))
        planes = RNG.normal(size=(4, 3, 5, 5)).astype(np.float32)
        _, value = net(planes)
        assert np.all(np.abs(value.data) <= 1.0)

    def test_evaluate_returns_distribution(self):
        net = MiniGoNet(5, np.random.default_rng(3))
        p, v = net.evaluate(GoBoard(5))
        np.testing.assert_allclose(p.sum(), 1.0, rtol=1e-5)
        assert -1.0 <= v <= 1.0

    def test_loss_backward(self):
        net = MiniGoNet(5, np.random.default_rng(4))
        planes = np.stack([GoBoard(5).feature_planes() for _ in range(2)])
        policy = np.full((2, 26), 1 / 26)
        value = np.array([1.0, -1.0])
        loss = net.loss(planes, policy, value)
        loss.backward()
        assert np.isfinite(loss.data)
        for name, p in net.named_parameters():
            assert p.grad is not None, name

    def test_tower_params_registered(self):
        net = MiniGoNet(5, np.random.default_rng(5), blocks=2)
        names = {n for n, _ in net.named_parameters()}
        assert any("tower_conv0" in n for n in names)
        assert any("tower_conv1" in n for n in names)

    def test_can_learn_fixed_policy(self):
        """Overfit to a fixed target policy on a few positions."""
        rng = np.random.default_rng(6)
        net = MiniGoNet(4, rng, width=16, blocks=1)
        planes = rng.normal(size=(4, 3, 4, 4)).astype(np.float32)
        target_policy = np.zeros((4, 17), dtype=np.float32)
        target_policy[np.arange(4), [0, 5, 10, 16]] = 1.0
        target_value = np.array([1.0, -1.0, 1.0, -1.0])
        opt = Adam(net.parameters(), lr=3e-3)
        for _ in range(120):
            loss = net.loss(planes, target_policy, target_value)
            net.zero_grad()
            loss.backward()
            opt.step()
        logits, value = net(planes)
        assert (logits.data.argmax(axis=1) == [0, 5, 10, 16]).all()
