"""Beam-search decoding: structure, determinism, and quality vs greedy."""

import numpy as np
import pytest

from repro.datasets import SyntheticTranslation, TranslationConfig
from repro.framework import Adam
from repro.metrics import corpus_bleu
from repro.models import (
    MiniGNMT,
    MiniTransformer,
    beam_search_gnmt,
    beam_search_transformer,
)
from repro.models.beam import BeamHypothesis, _normalized, _top_tokens


@pytest.fixture(scope="module")
def corpus():
    return SyntheticTranslation(TranslationConfig(train_size=80, test_size=16))


@pytest.fixture(scope="module")
def trained_models(corpus):
    """Briefly trained models so decoding has real signal."""
    models = {}
    for key, cls in (("gnmt", MiniGNMT), ("transformer", MiniTransformer)):
        rng = np.random.default_rng(0)
        model = cls(corpus.vocab.size, rng)
        opt = Adam(model.parameters(), lr=3e-3)
        for epoch in range(4):
            e_rng = np.random.default_rng(epoch)
            order = e_rng.permutation(len(corpus.train_pairs))
            for start in range(0, len(order) - 16 + 1, 16):
                chunk = [corpus.train_pairs[i] for i in order[start : start + 16]]
                src = corpus.encoder_inputs([s for s, _ in chunk])
                din, dout = corpus.decoder_io([t for _, t in chunk])
                loss = model.loss(src, din, dout)
                model.zero_grad()
                loss.backward()
                opt.step()
        model.eval()
        models[key] = model
    return models


class TestBeamHelpers:
    def test_normalization_compensates_length(self):
        # Equal total log-prob: the longer hypothesis scores higher (per-token
        # cost is what's compared), and alpha=0 disables normalization.
        assert _normalized(-10.0, 10, alpha=0.6) > _normalized(-10.0, 5, alpha=0.6)
        assert _normalized(-10.0, 10, alpha=0.0) == _normalized(-10.0, 5, alpha=0.0)

    def test_top_tokens_sorted(self):
        logp = np.array([0.1, -5.0, 2.0, 1.0])
        toks, scores = _top_tokens(logp, 3)
        assert toks.tolist() == [2, 3, 0]
        assert scores[0] == 2.0

    def test_hypothesis_ordering(self):
        a = BeamHypothesis(score=-1.0, tokens=[1])
        b = BeamHypothesis(score=-2.0, tokens=[2])
        assert max(a, b) is a


class TestBeamSearch:
    def test_outputs_one_per_sentence(self, corpus, trained_models):
        src = corpus.encoder_inputs([s for s, _ in corpus.test_pairs[:4]])
        for key, fn in (("gnmt", beam_search_gnmt), ("transformer", beam_search_transformer)):
            outs = fn(trained_models[key], src, beam_width=3, max_len=16)
            assert len(outs) == 4
            for o in outs:
                assert len(o) <= 16
                assert all(isinstance(t, int) for t in o)

    def test_deterministic(self, corpus, trained_models):
        src = corpus.encoder_inputs([s for s, _ in corpus.test_pairs[:3]])
        a = beam_search_transformer(trained_models["transformer"], src, beam_width=3)
        b = beam_search_transformer(trained_models["transformer"], src, beam_width=3)
        assert a == b

    def test_beam_width_one_matches_greedy(self, corpus, trained_models):
        """width-1 beam search IS greedy decoding (modulo length norm)."""
        src = corpus.encoder_inputs([s for s, _ in corpus.test_pairs[:6]])
        model = trained_models["transformer"]
        greedy = model.greedy_decode(src, max_len=16)
        beam1 = beam_search_transformer(model, src, beam_width=1, max_len=16)
        assert beam1 == greedy

    def test_gnmt_beam1_matches_greedy(self, corpus, trained_models):
        src = corpus.encoder_inputs([s for s, _ in corpus.test_pairs[:6]])
        model = trained_models["gnmt"]
        greedy = model.greedy_decode(src, max_len=16)
        beam1 = beam_search_gnmt(model, src, beam_width=1, max_len=16)
        assert beam1 == greedy

    def test_beam_bleu_not_worse_than_greedy(self, corpus, trained_models):
        """On a trained model, beam search should match or beat greedy."""
        sources = [s for s, _ in corpus.test_pairs]
        refs = [t for _, t in corpus.test_pairs]
        src = corpus.encoder_inputs(sources)
        model = trained_models["transformer"]
        greedy_bleu = corpus_bleu(model.greedy_decode(src, max_len=16), refs, smoothing=1.0)
        beam_bleu = corpus_bleu(
            beam_search_transformer(model, src, beam_width=4, max_len=16), refs, smoothing=1.0
        )
        assert beam_bleu >= greedy_bleu - 1.0  # allow tiny metric noise
