"""MiniResNet: v1.5 architectural details and trainability."""

import numpy as np
import pytest

from repro.framework import SGD, Tensor, functional as F
from repro.models import BasicBlockV15, MiniResNet


RNG = np.random.default_rng(0)


class TestBasicBlock:
    def test_identity_skip_when_shapes_match(self):
        """v1.5: no 1x1 conv in the skip of a same-shape block."""
        block = BasicBlockV15(16, 16, stride=1, rng=RNG)
        assert block.shortcut is None

    def test_projection_skip_on_downsample(self):
        block = BasicBlockV15(16, 32, stride=2, rng=RNG)
        assert block.shortcut is not None

    def test_downsample_stride_on_3x3(self):
        """v1.5: the stride-2 lives in the 3x3 conv, not the 1x1."""
        block = BasicBlockV15(16, 32, stride=2, rng=RNG)
        assert block.conv1.stride == 2
        assert block.conv1.weight.shape[-1] == 3

    def test_output_shape_stride2(self):
        block = BasicBlockV15(8, 16, stride=2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 8, 8, 8)).astype(np.float32))
        assert block(x).shape == (2, 16, 4, 4)

    def test_residual_add_after_bn(self):
        """The skip joins after bn2 — with gamma=0 on bn2, output is
        relu(skip), proving the add happens post-BN."""
        block = BasicBlockV15(4, 4, stride=1, rng=RNG)
        block.bn2.gamma.data[:] = 0.0
        block.bn2.beta.data[:] = 0.0
        x = Tensor(np.abs(RNG.normal(size=(2, 4, 6, 6))).astype(np.float32))
        out = block(x)
        np.testing.assert_allclose(out.data, np.maximum(x.data, 0), atol=1e-6)


class TestMiniResNet:
    def test_output_shape(self):
        net = MiniResNet(10, RNG)
        x = Tensor(RNG.normal(size=(4, 3, 16, 16)).astype(np.float32))
        assert net(x).shape == (4, 10)

    def test_first_block_identity_skip(self):
        """First residual block of the first stage keeps channels: identity."""
        net = MiniResNet(10, RNG)
        assert net.blocks[0].shortcut is None

    def test_spatial_reduction(self):
        net = MiniResNet(10, RNG, widths=(8, 16, 32))
        x = Tensor(RNG.normal(size=(1, 3, 16, 16)).astype(np.float32))
        feat = net.features(x)
        assert feat.shape == (1, 32, 4, 4)  # two stride-2 stages

    def test_all_parameters_receive_gradients(self):
        net = MiniResNet(5, RNG)
        x = Tensor(RNG.normal(size=(2, 3, 16, 16)).astype(np.float32))
        loss = F.cross_entropy(net(x), np.array([0, 1]))
        loss.backward()
        for name, p in net.named_parameters():
            assert p.grad is not None, f"{name} got no gradient"

    def test_eval_mode_deterministic(self):
        net = MiniResNet(5, RNG).eval()
        x = Tensor(RNG.normal(size=(2, 3, 16, 16)).astype(np.float32))
        np.testing.assert_array_equal(net(x).data, net(x).data)

    def test_can_overfit_tiny_batch(self):
        """Sanity: the model + optimizer can drive loss to ~0 on 8 images."""
        rng = np.random.default_rng(1)
        net = MiniResNet(4, rng, widths=(8, 16, 16), blocks_per_stage=1)
        x = Tensor(rng.normal(size=(8, 3, 16, 16)).astype(np.float32))
        y = np.arange(8) % 4
        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        for _ in range(60):
            loss = F.cross_entropy(net(x), y)
            net.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.1
