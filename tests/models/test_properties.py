"""Property-based tests on model-support utilities (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import decode_boxes, encode_boxes, match_anchors
from repro.metrics import box_iou, nms

box_strategy = st.tuples(
    st.floats(0, 28), st.floats(0, 28), st.floats(2, 12), st.floats(2, 12)
).map(lambda t: np.array([t[0], t[1], t[0] + t[2], t[1] + t[3]]))

boxes_strategy = st.lists(box_strategy, min_size=1, max_size=6).map(np.stack)


class TestBoxCodecProperties:
    @given(boxes_strategy, boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, boxes, anchors):
        n = min(len(boxes), len(anchors))
        boxes, anchors = boxes[:n], anchors[:n]
        decoded = decode_boxes(encode_boxes(boxes, anchors), anchors)
        np.testing.assert_allclose(decoded, boxes, rtol=1e-5, atol=1e-5)

    @given(boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_self_encoding_is_zero(self, boxes):
        np.testing.assert_allclose(encode_boxes(boxes, boxes), 0.0, atol=1e-6)

    @given(boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_decoded_boxes_well_formed(self, anchors):
        rng = np.random.default_rng(0)
        offsets = rng.normal(0, 1, size=(len(anchors), 4)).astype(np.float32)
        decoded = decode_boxes(offsets, anchors)
        assert np.isfinite(decoded).all()
        assert (decoded[:, 2] >= decoded[:, 0]).all()
        assert (decoded[:, 3] >= decoded[:, 1]).all()


class TestMatchingProperties:
    @given(boxes_strategy, boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_every_gt_gets_an_anchor(self, anchors, gts):
        """Forced matching: each ground truth claims at least one anchor."""
        labels = np.arange(len(gts)) % 3
        matched_labels, matched_idx = match_anchors(anchors, gts, labels, iou_threshold=0.99)
        claimed = set(matched_idx[matched_idx >= 0].tolist())
        # Anchors may be shared when GTs coincide, but at least one GT is
        # always matched, and no matched index is out of range.
        assert len(claimed) >= 1
        assert all(0 <= g < len(gts) for g in claimed)

    @given(boxes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_labels_only_from_gt_set(self, anchors):
        gts = anchors[:1] + 0.5
        matched_labels, _ = match_anchors(anchors, gts, np.array([7]))
        assert set(np.unique(matched_labels)) <= {0, 7}


class TestNMSProperties:
    @given(boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_kept_indices_valid_and_unique(self, boxes):
        scores = np.linspace(1.0, 0.1, len(boxes))
        keep = nms(boxes, scores, 0.5)
        assert len(set(keep.tolist())) == len(keep)
        assert all(0 <= k < len(boxes) for k in keep)

    @given(boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_survivors_mutually_below_threshold(self, boxes):
        scores = np.linspace(1.0, 0.1, len(boxes))
        keep = nms(boxes, scores, 0.5)
        kept = boxes[keep]
        iou = box_iou(kept, kept)
        np.fill_diagonal(iou, 0.0)
        assert (iou <= 0.5 + 1e-9).all()

    @given(boxes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_highest_score_always_kept(self, boxes):
        scores = np.linspace(1.0, 0.1, len(boxes))
        keep = nms(boxes, scores, 0.5)
        assert keep[0] == 0
