"""Synthetic dataset generators: determinism, structure, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ImageNetConfig,
    InteractionConfig,
    SceneConfig,
    ShapeScenes,
    SyntheticImageNet,
    SyntheticInteractions,
    SyntheticTranslation,
    TranslationConfig,
    random_crop_flip,
)
from repro.datasets.translation import BOS, EOS, PAD, SEP


@pytest.fixture(scope="module")
def imagenet():
    return SyntheticImageNet(ImageNetConfig(train_size=100, val_size=30))


@pytest.fixture(scope="module")
def scenes():
    return ShapeScenes(SceneConfig(train_size=20, val_size=5))


@pytest.fixture(scope="module")
def corpus():
    return SyntheticTranslation(TranslationConfig(train_size=50, test_size=20))


@pytest.fixture(scope="module")
def interactions():
    return SyntheticInteractions(InteractionConfig(num_users=30, num_items=120, num_eval_negatives=30))


class TestSyntheticImageNet:
    def test_shapes_and_dtypes(self, imagenet):
        images, labels = imagenet.train.arrays
        assert images.shape == (100, 3, 16, 16)
        assert images.dtype == np.float32
        assert labels.dtype == np.int64

    def test_labels_in_range(self, imagenet):
        _, labels = imagenet.train.arrays
        assert labels.min() >= 0
        assert labels.max() < 10

    def test_deterministic(self):
        cfg = ImageNetConfig(train_size=20, val_size=5)
        a = SyntheticImageNet(cfg)
        b = SyntheticImageNet(cfg)
        np.testing.assert_array_equal(a.train.arrays[0], b.train.arrays[0])
        np.testing.assert_array_equal(a.val.arrays[1], b.val.arrays[1])

    def test_seed_changes_data(self):
        a = SyntheticImageNet(ImageNetConfig(train_size=20, val_size=5, seed=1))
        b = SyntheticImageNet(ImageNetConfig(train_size=20, val_size=5, seed=2))
        assert not np.array_equal(a.train.arrays[0], b.train.arrays[0])

    def test_classes_are_separable_by_prototype_correlation(self, imagenet):
        # Nearest-prototype classification should beat chance by a wide
        # margin — the labels carry real signal.
        images, labels = imagenet.val.arrays
        size = imagenet.config.image_size
        shift = imagenet.config.max_shift
        protos = imagenet.prototypes[:, :, shift : shift + size, shift : shift + size]
        flat_p = protos.reshape(len(protos), -1)
        flat_p = flat_p - flat_p.mean(axis=1, keepdims=True)
        flat_x = images.reshape(len(images), -1)
        flat_x = flat_x - flat_x.mean(axis=1, keepdims=True)
        sims = flat_x @ flat_p.T
        acc = (sims.argmax(axis=1) == labels).mean()
        assert acc > 0.5  # chance is 0.1

    def test_augmentation_preserves_shapes_and_labels(self, imagenet):
        images, labels = imagenet.train.arrays
        rng = np.random.default_rng(0)
        aug, lab = random_crop_flip(images[:8], labels[:8], rng)
        assert aug.shape == images[:8].shape
        np.testing.assert_array_equal(lab, labels[:8])

    def test_augmentation_changes_pixels(self, imagenet):
        images, labels = imagenet.train.arrays
        rng = np.random.default_rng(0)
        aug, _ = random_crop_flip(images[:8], labels[:8], rng)
        assert not np.array_equal(aug, images[:8])


class TestShapeScenes:
    def test_sizes(self, scenes):
        assert len(scenes.train) == 20
        assert len(scenes.val) == 5

    def test_every_scene_has_objects(self, scenes):
        for scene in scenes.train + scenes.val:
            assert 1 <= len(scene.objects) <= 3

    def test_boxes_tight_on_masks(self, scenes):
        for scene in scenes.train:
            for obj in scene.objects:
                ys, xs = np.nonzero(obj.mask)
                x1, y1, x2, y2 = obj.box
                assert x1 == xs.min() and y1 == ys.min()
                assert x2 == xs.max() + 1 and y2 == ys.max() + 1

    def test_masks_within_image(self, scenes):
        size = scenes.config.image_size
        for scene in scenes.train:
            for obj in scene.objects:
                assert obj.mask.shape == (size, size)
                assert obj.mask.any()

    def test_labels_valid(self, scenes):
        for scene in scenes.train:
            for obj in scene.objects:
                assert 0 <= obj.label <= 2

    def test_objects_brighter_than_background(self, scenes):
        for scene in scenes.train[:5]:
            img = scene.image[0]
            for obj in scene.objects:
                inside = img[obj.mask].mean()
                outside = img[~obj.mask].mean()
                assert inside > outside

    def test_deterministic(self):
        a = ShapeScenes(SceneConfig(train_size=5, val_size=2))
        b = ShapeScenes(SceneConfig(train_size=5, val_size=2))
        np.testing.assert_array_equal(a.train[0].image, b.train[0].image)

    def test_batch_images(self, scenes):
        batch = ShapeScenes.batch_images(scenes.val)
        assert batch.shape == (5, 1, 32, 32)


class TestSyntheticTranslation:
    def test_train_test_disjoint(self, corpus):
        train = {tuple(s) for s, _ in corpus.train_pairs}
        test = {tuple(s) for s, _ in corpus.test_pairs}
        assert not train & test

    def test_translation_deterministic_function(self, corpus):
        src, tgt = corpus.train_pairs[0]
        assert corpus.translate(src) == tgt

    def test_single_clause_reversal(self, corpus):
        v = corpus.vocab
        src = [v.source_start, v.source_start + 1, v.source_start + 2]
        tgt = corpus.translate(src)
        mapped = [v.map_token(t) for t in src]
        assert tgt[:-1] == mapped[::-1]
        assert tgt[-1] == v.marker_odd  # length 3 is odd

    def test_even_length_marker(self, corpus):
        v = corpus.vocab
        src = [v.source_start, v.source_start + 5]
        assert corpus.translate(src)[-1] == v.marker_even

    def test_two_clause_structure(self, corpus):
        v = corpus.vocab
        a, b = v.source_start, v.source_start + 1
        src = [a, b, SEP, a]
        tgt = corpus.translate(src)
        assert SEP in tgt
        sep_idx = tgt.index(SEP)
        # First clause: reversed mapping + even marker.
        assert tgt[:sep_idx] == [v.map_token(b), v.map_token(a), v.marker_even]
        assert tgt[sep_idx + 1 :] == [v.map_token(a), v.marker_odd]

    def test_target_tokens_in_target_space(self, corpus):
        v = corpus.vocab
        for _, tgt in corpus.train_pairs:
            for tok in tgt:
                assert tok == SEP or tok >= v.target_start

    def test_pad_batch(self, corpus):
        padded = corpus.pad_batch([[5, 6], [7]])
        np.testing.assert_array_equal(padded, [[5, 6], [7, PAD]])

    def test_decoder_io_alignment(self, corpus):
        dec_in, dec_out = corpus.decoder_io([[10, 11]])
        np.testing.assert_array_equal(dec_in[0], [BOS, 10, 11])
        np.testing.assert_array_equal(dec_out[0], [10, 11, EOS])

    def test_vocab_size_covers_all_tokens(self, corpus):
        v = corpus.vocab
        max_tok = max(max(t) for _, t in corpus.train_pairs)
        assert max_tok < v.size

    @given(st.lists(st.integers(0, 27), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_translate_length_relation(self, rel_tokens):
        corpus = SyntheticTranslation(TranslationConfig(train_size=2, test_size=1))
        v = corpus.vocab
        src = [v.source_start + t for t in rel_tokens]
        tgt = corpus.translate(src)
        assert len(tgt) == len(src) + 1  # one clause => one marker


class TestSyntheticInteractions:
    def test_train_arrays_aligned(self, interactions):
        assert len(interactions.train_users) == len(interactions.train_items)

    def test_expected_interaction_count(self, interactions):
        cfg = interactions.config
        assert len(interactions.train_users) == cfg.num_users * (cfg.interactions_per_user - 1)

    def test_eval_positive_not_in_train(self, interactions):
        for u in range(interactions.config.num_users):
            items_u = interactions.train_items[interactions.train_users == u]
            assert interactions.eval_positives[u] not in items_u

    def test_eval_negatives_unseen(self, interactions):
        for u in range(interactions.config.num_users):
            seen = interactions._seen[u]
            for item in interactions.eval_negatives[u]:
                assert int(item) not in seen

    def test_popularity_long_tail(self, interactions):
        counts = np.bincount(interactions.train_items, minlength=interactions.config.num_items)
        top_decile = np.sort(counts)[-len(counts) // 10 :].sum()
        assert top_decile > counts.sum() * 0.2  # popular head dominates

    def test_training_batch_shapes_and_labels(self, interactions):
        rng = np.random.default_rng(0)
        users, items, labels = interactions.sample_training_batch(16, 4, rng)
        assert len(users) == len(items) == len(labels) == 16 * 5
        assert set(np.unique(labels)) == {0.0, 1.0}
        assert labels.sum() == 16

    def test_deterministic(self):
        cfg = InteractionConfig(num_users=10, num_items=120, num_eval_negatives=30)
        a, b = SyntheticInteractions(cfg), SyntheticInteractions(cfg)
        np.testing.assert_array_equal(a.train_items, b.train_items)
        np.testing.assert_array_equal(a.eval_negatives, b.eval_negatives)

    def test_infeasible_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticInteractions(
                InteractionConfig(num_users=5, num_items=30, interactions_per_user=20,
                                  num_eval_negatives=50)
            )
