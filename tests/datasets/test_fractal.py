"""Fractal expansion: scale grows, distributional shape preserved."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import InteractionConfig, SyntheticInteractions
from repro.datasets.fractal import expand_interactions


@pytest.fixture(scope="module")
def base_data():
    return SyntheticInteractions(
        InteractionConfig(num_users=40, num_items=120, num_eval_negatives=30)
    )


class TestExpansion:
    def test_id_spaces_grow(self, base_data):
        exp = expand_interactions(
            base_data.train_users, base_data.train_items,
            base_data.config.num_users, base_data.config.num_items,
            user_factor=4, item_factor=3,
        )
        assert exp.num_users == 40 * 4
        assert exp.num_items == 120 * 3
        assert exp.users.max() < exp.num_users
        assert exp.items.max() < exp.num_items

    def test_interaction_count_scales_with_density(self, base_data):
        n = len(base_data.train_users)
        exp = expand_interactions(
            base_data.train_users, base_data.train_items, 40, 120,
            user_factor=4, item_factor=4, seed_density=0.5,
        )
        assert len(exp.users) == n * 8  # 16 cells * 0.5

    def test_popularity_skew_preserved(self, base_data):
        """The long-tail shape survives expansion (the Belletti et al. point)."""

        def top_decile_share(items, num_items):
            counts = np.bincount(items, minlength=num_items)
            counts = np.sort(counts)
            return counts[-num_items // 10 :].sum() / max(counts.sum(), 1)

        before = top_decile_share(base_data.train_items, 120)
        exp = expand_interactions(
            base_data.train_users, base_data.train_items, 40, 120,
            user_factor=3, item_factor=3, seed_density=0.5,
        )
        after = top_decile_share(exp.items, exp.num_items)
        assert after == pytest.approx(before, abs=0.1)

    def test_user_activity_preserved(self, base_data):
        before = np.bincount(base_data.train_users, minlength=40)
        exp = expand_interactions(
            base_data.train_users, base_data.train_items, 40, 120,
            user_factor=2, item_factor=2, seed_density=1.0,
        )
        after = np.bincount(exp.users, minlength=exp.num_users)
        # With full density each original user splits into `user_factor`
        # expanded users each carrying item_factor times the interactions.
        for u in range(40):
            for k in range(2):
                assert after[u * 2 + k] == before[u] * 2

    def test_block_structure(self):
        """An edge (u, i) only spawns edges inside its (u, i) block."""
        exp = expand_interactions(
            np.array([3]), np.array([7]), 10, 20, user_factor=4, item_factor=5,
            seed_density=1.0,
        )
        assert set(exp.users.tolist()) <= set(range(12, 16))
        assert set(exp.items.tolist()) <= set(range(35, 40))

    def test_validation(self):
        with pytest.raises(ValueError):
            expand_interactions(np.array([0]), np.array([0]), 1, 1, 0, 1)
        with pytest.raises(ValueError):
            expand_interactions(np.array([0]), np.array([0]), 1, 1, 2, 2, seed_density=0.0)
        with pytest.raises(ValueError):
            expand_interactions(np.array([0, 1]), np.array([0]), 2, 1, 2, 2)

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_expansion_deterministic(self, ku, ki):
        users = np.arange(10) % 5
        items = np.arange(10) % 7
        a = expand_interactions(users, items, 5, 7, ku, ki,
                                rng=np.random.default_rng(3))
        b = expand_interactions(users, items, 5, 7, ku, ki,
                                rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)
