"""Go rules: captures, suicide, ko, scoring, game end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.go import BLACK, EMPTY, WHITE, GoBoard


def play_seq(board, moves):
    for m in moves:
        board = board.play(m)
    return board


def at(board, y, x):
    return int(board.board[y, x])


class TestBasics:
    def test_initial_state(self):
        b = GoBoard(5)
        assert b.to_play == BLACK
        assert (b.board == EMPTY).all()
        assert not b.is_over

    def test_alternating_turns(self):
        b = GoBoard(5)
        b = b.play(0)
        assert b.to_play == WHITE
        b = b.play(1)
        assert b.to_play == BLACK

    def test_stone_placed(self):
        b = GoBoard(5).play(12)
        assert at(b, 2, 2) == BLACK

    def test_occupied_illegal(self):
        b = GoBoard(5).play(12)
        assert not b.is_legal(12)
        with pytest.raises(ValueError):
            b.play(12)

    def test_immutability(self):
        b = GoBoard(5)
        b.play(12)
        assert (b.board == EMPTY).all()

    def test_pass_is_always_legal(self):
        b = GoBoard(5)
        assert b.is_legal(b.pass_move)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            GoBoard(1)

    def test_move_out_of_range(self):
        assert not GoBoard(5).is_legal(99)
        assert not GoBoard(5).is_legal(-1)


class TestCapture:
    def test_single_stone_capture(self):
        # White stone at (0,0) captured by black at (0,1) and (1,0).
        b = GoBoard(5)
        # B(0,1) W(0,0) B(1,0) -> white stone has no liberties
        b = play_seq(b, [1, 0, 5])
        assert at(b, 0, 0) == EMPTY

    def test_group_capture(self):
        # Capture a two-stone white group on the edge.
        b = GoBoard(5)
        # White stones at (0,0),(0,1); black surrounds at (1,0),(1,1),(0,2)
        moves = [5, 0, 6, 1, 2]  # B(1,0) W(0,0) B(1,1) W(0,1) B(0,2)
        b = play_seq(b, moves)
        assert at(b, 0, 0) == EMPTY
        assert at(b, 0, 1) == EMPTY

    def test_capture_restores_liberty(self):
        # Placing into what would be suicide is legal if it captures.
        b = GoBoard(3)
        # Build: white at (0,1),(1,0); black at (1,1),(0,2)... craft simpler:
        # Black plays to capture a white stone in the corner, landing on a
        # point with no liberties until the capture frees it.
        # W(0,0); B(0,1); W pass; B(1,0) captures corner.
        b = b.play(1)              # B(0,1)
        b = b.play(0)              # W(0,0)
        b = b.play(3)              # B(1,0) -> captures W(0,0)
        assert at(b, 0, 0) == EMPTY
        assert at(b, 1, 0) == BLACK


class TestSuicide:
    def test_single_point_suicide_illegal(self):
        b = GoBoard(3)
        # Black surrounds (0,0) with (0,1) and (1,0); white to move into corner.
        b = play_seq(b, [1, 8, 3])  # B(0,1) W(2,2) B(1,0)
        assert b.to_play == WHITE
        assert not b.is_legal(0)

    def test_multi_stone_suicide_illegal(self):
        b = GoBoard(3)
        # Black wall on column 1: (0,1),(1,1),(2,1). White owns (0,0),(1,0);
        # white playing (2,0) would leave the 3-stone group with 0 liberties.
        b = play_seq(b, [1, 0, 4, 3, 7])  # B1 W0 B4 W3 B7
        assert b.to_play == WHITE
        assert not b.is_legal(6)  # (2,0)


class TestKo:
    def test_simple_ko_forbidden(self):
        # Classic ko shape in the corner of a 4x4 board.
        b = GoBoard(4)
        #   . B W .
        #   B W . W   <- after white recapture setup
        moves = [
            1,  # B(0,1)
            2,  # W(0,2)
            4,  # B(1,0)
            7,  # W(1,3)
            9,  # B(2,1)
            10,  # W(2,2)
            6,  # B(1,2) - takes the ko point, capturing nothing yet? ensure shape
        ]
        b = play_seq(b, moves)
        # White captures B(1,2) by playing (1,1)? Build directly instead:
        # Verify positional superko generally: replaying into an identical
        # whole-board position must be illegal.
        assert b.board.tobytes() in b._history

    def test_superko_prevents_position_repeat(self):
        # Direct construction of a single-stone ko and immediate recapture.
        b = GoBoard(5)
        #  . B . . .      . B W . .
        #  B . B . .  ->  W B(ko)...
        moves = [
            1,   # B(0,1)
            3,   # W(0,3)
            5,   # B(1,0)
            7,   # W(1,2)
            11,  # B(2,1)
            13,  # W(2,3)
            24,  # B corner (tenuki)
            12,  # W(2,2) -- now white (2,2) has liberties (1,2)W adjacent..
        ]
        b = play_seq(b, moves)
        # Black plays (1,1): creates mutual ko shape with white at (1,2),(2,2).
        b = b.play(6)
        # White captures the black stone at (1,1) by playing (0,2)? The exact
        # shape is fiddly; assert the invariant instead: for every legal
        # move, the resulting position is not already in history.
        for move in b.legal_moves():
            if move == b.pass_move:
                continue
            child = b.play(move)
            # History grows strictly: the new position must be new.
            assert len(child._history) == len(b._history) + 1


class TestGameEnd:
    def test_two_passes_end(self):
        b = GoBoard(5)
        b = b.play(b.pass_move).play(b.pass_move)
        assert b.is_over

    def test_pass_then_move_resets(self):
        b = GoBoard(5)
        b = b.play(b.pass_move).play(3)
        assert b.passes == 0
        assert not b.is_over

    def test_move_cap_ends_game(self):
        b = GoBoard(3)
        rng = np.random.default_rng(0)
        guard = 0
        while not b.is_over:
            moves = [m for m in b.legal_moves() if m != b.pass_move]
            b = b.play(int(rng.choice(moves)) if moves else b.pass_move)
            guard += 1
            assert guard <= 4 * 9 + 1

    def test_play_after_end_raises(self):
        b = GoBoard(5).play(25).play(25)
        with pytest.raises(ValueError):
            b.play(0)


class TestScoring:
    def test_empty_board_is_komi(self):
        assert GoBoard(5, komi=0.5).score() == -0.5

    def test_single_black_stone_owns_board(self):
        b = GoBoard(3).play(4)  # center
        # Black: 1 stone + 8 territory = 9; white 0.
        assert b.score() == 9 - 0.5

    def test_contested_region_counts_for_neither(self):
        b = GoBoard(3)
        b = b.play(0).play(8)  # one black, one white corner
        # All empty points touch both colors through the open board.
        assert b.score() == 1 - 1 - 0.5

    def test_divided_board(self):
        # Black wall on row 1 of a 3x3; white nothing: black owns everything.
        b = GoBoard(3)
        b = play_seq(b, [3, 9, 4, 9, 5])  # B(1,0) Wpass B(1,1) Wpass B(1,2)
        assert b.score() == 9 - 0.5

    def test_winner_and_result(self):
        b = GoBoard(3).play(4)
        assert b.winner() == BLACK
        assert b.result_for(BLACK) == 1.0
        assert b.result_for(WHITE) == -1.0

    def test_komi_breaks_tie(self):
        b = GoBoard(3)
        assert b.winner() == WHITE  # empty board: 0 - 0 - komi < 0


class TestFeatures:
    def test_plane_shapes(self):
        planes = GoBoard(5).feature_planes()
        assert planes.shape == (3, 5, 5)

    def test_perspective_flips(self):
        b = GoBoard(5).play(12)  # black stone, white to move
        planes = b.feature_planes()
        assert planes[1, 2, 2] == 1.0  # opponent plane has the black stone
        assert planes[0].sum() == 0.0
        assert planes[2, 0, 0] == 0.0  # white to move

    def test_turn_plane_black(self):
        planes = GoBoard(5).feature_planes()
        assert planes[2].min() == 1.0


class TestPropertyInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_games_preserve_invariants(self, seed):
        """Random legal play never violates structural invariants."""
        rng = np.random.default_rng(seed)
        b = GoBoard(4)
        while not b.is_over:
            moves = b.legal_moves()
            assert b.pass_move in moves
            move = int(rng.choice(moves))
            child = b.play(move)
            # Stone count changes by +1 minus captures (never negative total).
            assert (child.board != EMPTY).sum() >= 0
            # No group on the board has zero liberties.
            grid = child.board
            for y in range(child.size):
                for x in range(child.size):
                    if grid[y, x] != EMPTY:
                        _, libs = child._group_and_liberties(y, x, grid)
                        assert libs, f"zero-liberty group survived at {(y, x)}"
            b = child
        # Game ended; score is well-defined.
        assert isinstance(b.score(), float)
