"""Pro-network training and reference-game generation (small budgets)."""

import numpy as np
import pytest

from repro.go import GoBoard
from repro.go.pro import (
    DEFAULT_KOMI,
    ProConfig,
    generate_pro_games,
    pro_reference_games,
    train_pro_network,
)

TINY = ProConfig(board_size=4, iterations=2, games_per_iteration=1,
                 train_steps_per_iteration=2, mcts_simulations=4, seed=1)


@pytest.fixture(scope="module")
def tiny_pro_net():
    return train_pro_network(TINY)


class TestProTraining:
    def test_returns_eval_mode_net(self, tiny_pro_net):
        assert not tiny_pro_net.training

    def test_deterministic(self, tiny_pro_net):
        other = train_pro_network(TINY)
        a = np.concatenate([p.data.reshape(-1) for p in tiny_pro_net.parameters()])
        b = np.concatenate([p.data.reshape(-1) for p in other.parameters()])
        np.testing.assert_array_equal(a, b)

    def test_evaluate_protocol(self, tiny_pro_net):
        p, v = tiny_pro_net.evaluate(GoBoard(4, komi=DEFAULT_KOMI))
        assert p.shape == (17,)
        np.testing.assert_allclose(p.sum(), 1.0, rtol=1e-5)
        assert -1.0 <= v <= 1.0


class TestProGames:
    def test_games_have_aligned_positions(self, tiny_pro_net):
        games = generate_pro_games(tiny_pro_net, 2, 4, seed=3, komi=DEFAULT_KOMI,
                                   mcts_simulations=4)
        assert len(games) == 2
        for g in games:
            assert len(g.positions) == len(g.moves)
            assert len(g.moves) > 0
            for p in g.positions:
                assert p.shape == (3, 4, 4)

    def test_games_deterministic_given_seed(self, tiny_pro_net):
        a = generate_pro_games(tiny_pro_net, 2, 4, seed=3, mcts_simulations=4)
        b = generate_pro_games(tiny_pro_net, 2, 4, seed=3, mcts_simulations=4)
        assert [g.moves for g in a] == [g.moves for g in b]

    def test_openings_vary_across_games(self, tiny_pro_net):
        games = generate_pro_games(tiny_pro_net, 6, 4, seed=5, mcts_simulations=4)
        assert len({g.moves[0] for g in games}) > 1


class TestDiskCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        pro_reference_games.cache_clear()
        # Use the tiny defaults via a distinctive key so nothing collides.
        # (Full-size pro training is too slow for a unit test; we only test
        # the cache layer by monkeypatching the trainer.)
        import repro.go.pro as pro_module

        calls = {"train": 0}
        real_train = pro_module.train_pro_network

        def counting_train(config=ProConfig()):
            calls["train"] += 1
            return real_train(TINY)

        monkeypatch.setattr(pro_module, "train_pro_network", counting_train)
        games1 = pro_module.pro_reference_games(2, 4, seed=9, komi=DEFAULT_KOMI)
        assert calls["train"] == 1
        # Second call within the process: lru cache.
        games2 = pro_module.pro_reference_games(2, 4, seed=9, komi=DEFAULT_KOMI)
        assert calls["train"] == 1
        assert [g.moves for g in games1] == [g.moves for g in games2]
        # New process simulation: clear the lru cache, hit the disk file.
        pro_module.pro_reference_games.cache_clear()
        games3 = pro_module.pro_reference_games(2, 4, seed=9, komi=DEFAULT_KOMI)
        assert calls["train"] == 1  # no retraining: loaded from disk
        assert [g.moves for g in games3] == [g.moves for g in games1]
        np.testing.assert_array_equal(
            np.stack(games3[0].positions), np.stack(games1[0].positions)
        )
        pro_module.pro_reference_games.cache_clear()
