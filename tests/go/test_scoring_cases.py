"""Additional Go scoring cases: neutral regions, multiple territories, komi."""

import numpy as np
import pytest

from repro.go import BLACK, EMPTY, WHITE, GoBoard


def board_from_ascii(rows: list[str], komi: float = 0.5, to_play: int = BLACK) -> GoBoard:
    """Construct a position directly from ASCII art (X=black, O=white)."""
    size = len(rows)
    b = GoBoard(size, komi=komi)
    grid = np.zeros((size, size), dtype=np.int8)
    for y, row in enumerate(rows):
        for x, ch in enumerate(row):
            grid[y, x] = {"X": BLACK, "O": WHITE, ".": EMPTY}[ch]
    b.board = grid
    b.to_play = to_play
    b._history = frozenset([grid.tobytes()])
    return b


class TestScoringCases:
    def test_split_board(self):
        b = board_from_ascii([
            "X.O",
            "X.O",
            "X.O",
        ])
        # Black 3 stones, white 3 stones; the middle column touches both
        # colors -> neutral. 3 - 3 - 0.5.
        assert b.score() == pytest.approx(-0.5)

    def test_two_separate_territories(self):
        b = board_from_ascii([
            ".X.O.",
            ".X.O.",
            ".X.O.",
            ".X.O.",
            ".X.O.",
        ])
        # Column 0 touches only black (5 pts); column 2 touches both
        # (neutral); column 4 touches only white (5 pts).
        assert b.score() == pytest.approx(5 + 5 - (5 + 5) - 0.5)

    def test_enclosed_eye_counts(self):
        b = board_from_ascii([
            "XXX",
            "X.X",
            "XXX",
        ])
        assert b.score() == pytest.approx(9 - 0.5)

    def test_dead_stone_not_autodetected(self):
        # Tromp-Taylor: stones on the board count as alive — a surrounded
        # but uncaptured white stone still scores for white.
        b = board_from_ascii([
            "XXX",
            "XOX",
            "XXX",
        ])
        assert b.score() == pytest.approx(8 - 1 - 0.5)

    def test_komi_exactly_balances(self):
        b = board_from_ascii([
            "X.O",
            "X.O",
            "X.O",
        ], komi=0.0)
        assert b.score() == 0.0
        assert b.winner() == WHITE  # ties go to white by the > 0 rule

    @pytest.mark.parametrize("komi", [0.5, 5.5, 12.5])
    def test_komi_shifts_score_linearly(self, komi):
        base = board_from_ascii(["X..", "...", "..."], komi=0.0).score()
        shifted = board_from_ascii(["X..", "...", "..."], komi=komi).score()
        assert shifted == pytest.approx(base - komi)
