"""MCTS, the heuristic reference player, and self-play data generation."""

import numpy as np
import pytest

from repro.go import (
    BLACK,
    GoBoard,
    HeuristicPlayer,
    MCTS,
    MCTSConfig,
    generate_reference_games,
    play_selfplay_game,
    selfplay_batch,
)


def uniform_evaluate(board):
    """Uninformed evaluator: uniform policy, neutral value."""
    n = board.num_moves
    return np.full(n, 1.0 / n), 0.0


def make_mcts(sims=16, seed=0):
    return MCTS(uniform_evaluate, MCTSConfig(num_simulations=sims), rng=np.random.default_rng(seed))


class TestMCTS:
    def test_policy_is_distribution(self):
        policy = make_mcts().search(GoBoard(4))
        assert policy.shape == (17,)
        assert policy.min() >= 0
        np.testing.assert_allclose(policy.sum(), 1.0)

    def test_policy_zero_on_illegal(self):
        b = GoBoard(4).play(0)
        policy = make_mcts().search(b)
        assert policy[0] == 0.0  # occupied point gets no visits

    def test_finds_winning_capture(self):
        # White group in atari: MCTS (with terminal-value feedback) should
        # prefer the capturing move heavily over random alternatives.
        b = GoBoard(3)
        # B(0,1) W(0,0) B(2,2): white corner stone has one liberty at (1,0).
        b = b.play(1).play(0).play(8)
        b = b.play(4)  # W plays center; black to move, can capture at (1,0)
        policy = make_mcts(sims=100, seed=1).search(b)
        capture_move = 3  # (1,0)
        assert policy[capture_move] >= policy.max() * 0.5

    def test_best_move_deterministic_at_zero_temperature(self):
        b = GoBoard(4)
        m1 = make_mcts(seed=3).best_move(b, temperature=0.0)
        m2 = make_mcts(seed=3).best_move(b, temperature=0.0)
        assert m1 == m2

    def test_temperature_sampling_varies(self):
        b = GoBoard(4)
        moves = {make_mcts(seed=s).best_move(b, temperature=1.0) for s in range(8)}
        assert len(moves) > 1

    def test_terminal_board_value(self):
        b = GoBoard(3).play(4)  # black owns board
        b = b.play(b.pass_move).play(b.pass_move)
        assert b.is_over
        # search on a terminal board returns all-zero (no children visited)
        policy = make_mcts().search(b)
        assert policy.sum() == 0.0


class TestHeuristicPlayer:
    def test_deterministic_without_jitter(self):
        b = GoBoard(5)
        p = HeuristicPlayer(jitter=0.0)
        assert p.select_move(b) == p.select_move(b)

    def test_prefers_capture(self):
        # White stone in atari: black's capture should be chosen.
        b = GoBoard(4)
        b = b.play(1).play(0).play(15)  # B(0,1) W(0,0) B corner; white to move
        b = b.play(10)  # white elsewhere; black to move, capture at (1,0)=4
        p = HeuristicPlayer(jitter=0.0)
        assert p.select_move(b) == 4

    def test_never_selects_illegal(self):
        rng = np.random.default_rng(0)
        b = GoBoard(4)
        p = HeuristicPlayer(jitter=0.5, rng=rng)
        for _ in range(20):
            if b.is_over:
                break
            move = p.select_move(b)
            assert b.is_legal(move)
            b = b.play(move)


class TestReferenceGames:
    def test_deterministic_given_seed(self):
        a = generate_reference_games(2, board_size=4, seed=5)
        b = generate_reference_games(2, board_size=4, seed=5)
        assert [g.moves for g in a] == [g.moves for g in b]

    def test_positions_align_with_moves(self):
        games = generate_reference_games(2, board_size=4, seed=1)
        for g in games:
            assert len(g.positions) == len(g.moves)
            for planes in g.positions:
                assert planes.shape == (3, 4, 4)

    def test_openings_vary(self):
        games = generate_reference_games(6, board_size=5, seed=2)
        first_moves = {g.moves[0] for g in games}
        assert len(first_moves) > 1

    def test_moves_within_move_space(self):
        games = generate_reference_games(2, board_size=4, seed=3)
        for g in games:
            for m in g.moves:
                assert 0 <= m <= 16


class TestSelfPlay:
    def test_game_produces_examples(self):
        rng = np.random.default_rng(0)
        examples = play_selfplay_game(
            _UniformNet(4), 4, rng, MCTSConfig(num_simulations=8)
        )
        assert len(examples) > 0
        for ex in examples:
            assert ex.planes.shape == (3, 4, 4)
            np.testing.assert_allclose(ex.policy.sum(), 1.0)
            assert ex.value in (1.0, -1.0)

    def test_values_consistent_with_single_winner(self):
        rng = np.random.default_rng(1)
        examples = play_selfplay_game(_UniformNet(4), 4, rng, MCTSConfig(num_simulations=8))
        # Alternating perspectives: consecutive values must alternate sign
        # whenever both positions were before the end (single winner).
        values = [ex.value for ex in examples]
        assert all(a == -b for a, b in zip(values, values[1:]))

    def test_batch_concatenates(self):
        rng = np.random.default_rng(2)
        examples = selfplay_batch(_UniformNet(4), 2, 4, rng, MCTSConfig(num_simulations=4))
        assert len(examples) > 2


class _UniformNet:
    """Minimal evaluator object exposing .evaluate like MiniGoNet."""

    def __init__(self, size):
        self.n = size * size + 1

    def evaluate(self, board):
        return np.full(self.n, 1.0 / self.n), 0.0


class TestKomiAndPassRestriction:
    def test_competitive_komi_flips_winner(self):
        from repro.go import GoBoard

        b = GoBoard(3, komi=0.5).play(4)  # black owns 9 points
        assert b.score() == pytest.approx(8.5)
        b_high = GoBoard(3, komi=12.5).play(4)
        assert b_high.score() == pytest.approx(-3.5)
        assert b_high.winner() != b.winner()

    def test_early_pass_excluded_from_search(self):
        from repro.go import GoBoard, MCTSConfig
        from repro.go.mcts import MCTS, _Node

        cfg = MCTSConfig(num_simulations=4, min_moves_before_pass=10)
        mcts = MCTS(uniform_evaluate, cfg, rng=np.random.default_rng(0))
        board = GoBoard(4)
        root = _Node(board, prior=1.0)
        mcts._expand(root)
        assert board.pass_move not in root.children

    def test_late_pass_allowed(self):
        from repro.go import GoBoard, MCTSConfig
        from repro.go.mcts import MCTS, _Node

        cfg = MCTSConfig(num_simulations=4, min_moves_before_pass=0)
        mcts = MCTS(uniform_evaluate, cfg, rng=np.random.default_rng(0))
        board = GoBoard(4)
        root = _Node(board, prior=1.0)
        mcts._expand(root)
        assert board.pass_move in root.children

    def test_selfplay_passes_komi_through(self):
        from repro.go import play_selfplay_game, MCTSConfig

        rng = np.random.default_rng(0)
        examples = play_selfplay_game(_UniformNet(4), 4, rng,
                                      MCTSConfig(num_simulations=4), komi=7.5)
        assert len(examples) > 0
        # With a heavy komi and random play, white (the komi holder) often
        # wins; at minimum the values are still a valid +1/-1 labelling.
        assert set(abs(e.value) for e in examples) == {1.0}
