"""Parameter-server cost model (the aggregation ablation baseline)."""

import pytest

from repro.systems import Interconnect

FABRIC = Interconnect("test", bandwidth_bytes_per_s=10e9, latency_s=1e-6)


class TestParameterServer:
    def test_single_chip_free(self):
        assert FABRIC.parameter_server_time(1, 1e9) == 0.0

    def test_linear_in_workers(self):
        t8 = FABRIC.parameter_server_time(8, 1e8)
        t16 = FABRIC.parameter_server_time(16, 1e8)
        assert t16 == pytest.approx(2 * t8 - 2e-6, rel=1e-6)  # latency constant

    def test_servers_share_load(self):
        one = FABRIC.parameter_server_time(16, 1e8, num_servers=1)
        four = FABRIC.parameter_server_time(16, 1e8, num_servers=4)
        assert four < one

    def test_ring_beats_ps_at_scale(self):
        payload = 1e8
        assert FABRIC.allreduce_time(1024, payload) < FABRIC.parameter_server_time(
            1024, payload, num_servers=4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FABRIC.parameter_server_time(0, 1e6)
        with pytest.raises(ValueError):
            FABRIC.parameter_server_time(4, 1e6, num_servers=0)
