"""Executable data-parallel semantics: sync equivalence, async variance."""

import numpy as np
import pytest

from repro.framework import Linear, SGD, Sequential, ReLU, Tensor, functional as F
from repro.models import MiniResNet
from repro.systems.dataparallel import (
    AsynchronousDataParallel,
    SynchronousDataParallel,
    shard_batch,
)


def loss_fn(model, shard):
    x, y = shard
    return F.cross_entropy(model(Tensor(x)), y)


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(8, 16, rng), ReLU(), Linear(16, 4, rng))


def make_batch(n=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 8)).astype(np.float32)
    y = rng.integers(0, 4, size=n)
    return x, y


class TestShardBatch:
    def test_even_split(self):
        x, y = make_batch(32)
        shards = shard_batch((x, y), 4)
        assert len(shards) == 4
        assert all(len(s[0]) == 8 for s in shards)
        np.testing.assert_array_equal(np.concatenate([s[0] for s in shards]), x)

    def test_indivisible_rejected(self):
        x, y = make_batch(30)
        with pytest.raises(ValueError, match="divisible"):
            shard_batch((x, y), 4)

    def test_zero_workers_rejected(self):
        x, y = make_batch(8)
        with pytest.raises(ValueError, match="at least one worker"):
            shard_batch((x, y), 0)

    def test_negative_workers_rejected(self):
        x, y = make_batch(8)
        with pytest.raises(ValueError, match="at least one worker"):
            shard_batch((x, y), -2)

    def test_empty_batch_tuple_rejected(self):
        with pytest.raises(ValueError, match="empty batch"):
            shard_batch((), 2)

    def test_mismatched_array_lengths_rejected(self):
        x, _ = make_batch(16)
        _, y = make_batch(8)
        with pytest.raises(ValueError, match="disagree on length"):
            shard_batch((x, y), 2)

    def test_single_worker_is_identity(self):
        x, y = make_batch(8)
        shards = shard_batch((x, y), 1)
        assert len(shards) == 1
        np.testing.assert_array_equal(shards[0][0], x)
        np.testing.assert_array_equal(shards[0][1], y)


class TestSynchronous:
    def test_equivalent_to_single_worker(self):
        """W-worker sync SGD == single-step large batch (up to fp order)."""
        batch = make_batch(32)
        # Single worker reference.
        ref_model = make_model(1)
        ref = SynchronousDataParallel(ref_model, SGD(ref_model.parameters(), lr=0.1),
                                      num_workers=1, loss_fn=loss_fn)
        # Four workers.
        dp_model = make_model(1)
        dp = SynchronousDataParallel(dp_model, SGD(dp_model.parameters(), lr=0.1),
                                     num_workers=4, loss_fn=loss_fn)
        for _ in range(5):
            ref.step(batch)
            dp.step(batch)
        for p_ref, p_dp in zip(ref_model.parameters(), dp_model.parameters()):
            np.testing.assert_allclose(p_ref.data, p_dp.data, rtol=1e-4, atol=1e-6)

    def test_deterministic(self):
        batch = make_batch(16)
        results = []
        for _ in range(2):
            model = make_model(2)
            dp = SynchronousDataParallel(model, SGD(model.parameters(), lr=0.1), 4, loss_fn)
            dp.step(batch)
            results.append(model.state_dict())
        for name in results[0]:
            np.testing.assert_array_equal(results[0][name], results[1][name])

    def test_loss_decreases(self):
        batch = make_batch(32)
        model = make_model(3)
        dp = SynchronousDataParallel(model, SGD(model.parameters(), lr=0.2), 4, loss_fn)
        first = dp.step(batch)
        for _ in range(30):
            last = dp.step(batch)
        assert last < first

    def test_works_with_conv_model(self):
        rng = np.random.default_rng(4)
        model = MiniResNet(4, rng, widths=(8, 8), blocks_per_stage=1)
        x = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 4, size=8)
        dp = SynchronousDataParallel(model, SGD(model.parameters(), lr=0.05), 2, loss_fn)
        loss = dp.step((x, y))
        assert np.isfinite(loss)

    def test_invalid_worker_count(self):
        model = make_model()
        with pytest.raises(ValueError):
            SynchronousDataParallel(model, SGD(model.parameters(), lr=0.1), 0, loss_fn)


class TestAsynchronous:
    def test_seed_changes_trajectory(self):
        """§2.2.3: async accumulation order is a genuine variance source."""
        batch = make_batch(32)
        states = []
        for seed in (0, 1):
            model = make_model(5)
            dp = AsynchronousDataParallel(
                model, SGD(model.parameters(), lr=0.1), 4, loss_fn,
                rng=np.random.default_rng(seed), max_staleness=2,
            )
            for _ in range(4):
                dp.step(batch)
            states.append(np.concatenate([p.data.reshape(-1) for p in model.parameters()]))
        assert not np.allclose(states[0], states[1])

    def test_zero_staleness_same_data_still_trains(self):
        batch = make_batch(32)
        model = make_model(6)
        dp = AsynchronousDataParallel(
            model, SGD(model.parameters(), lr=0.2), 4, loss_fn,
            rng=np.random.default_rng(0), max_staleness=0,
        )
        first = dp.step(batch)
        for _ in range(30):
            last = dp.step(batch)
        assert last < first

    def test_async_differs_from_sync(self):
        batch = make_batch(32)
        sync_model = make_model(7)
        sync = SynchronousDataParallel(sync_model, SGD(sync_model.parameters(), lr=0.1),
                                       4, loss_fn)
        async_model = make_model(7)
        asyn = AsynchronousDataParallel(
            async_model, SGD(async_model.parameters(), lr=0.1), 4, loss_fn,
            rng=np.random.default_rng(0), max_staleness=2,
        )
        for _ in range(3):
            sync.step(batch)
            asyn.step(batch)
        a = np.concatenate([p.data.reshape(-1) for p in sync_model.parameters()])
        b = np.concatenate([p.data.reshape(-1) for p in async_model.parameters()])
        assert not np.allclose(a, b)

    def test_validation(self):
        model = make_model()
        with pytest.raises(ValueError):
            AsynchronousDataParallel(model, SGD(model.parameters(), lr=0.1), 2, loss_fn,
                                     rng=np.random.default_rng(0), max_staleness=-1)


class TestAsynchronousStalenessBookkeeping:
    """The snapshot window is the staleness bound — it must never grow past it."""

    def _make(self, max_staleness, num_workers=4, seed=8):
        model = make_model(seed)
        return model, AsynchronousDataParallel(
            model, SGD(model.parameters(), lr=0.1), num_workers, loss_fn,
            rng=np.random.default_rng(0), max_staleness=max_staleness,
        )

    @pytest.mark.parametrize("max_staleness", [0, 1, 3])
    def test_snapshot_window_bounded(self, max_staleness):
        batch = make_batch(32)
        _, dp = self._make(max_staleness)
        assert dp._snapshots == []
        for _ in range(5):
            dp.step(batch)
            assert len(dp._snapshots) <= max_staleness + 1

    def test_snapshot_window_holds_latest_state(self):
        """After a step the newest snapshot is the live post-update weights."""
        batch = make_batch(32)
        model, dp = self._make(max_staleness=2)
        dp.step(batch)
        live = model.state_dict()
        newest = dp._snapshots[-1]
        assert set(newest) == set(live)
        for name in live:
            np.testing.assert_array_equal(newest[name], live[name])

    def test_zero_staleness_single_worker_equals_plain_sgd(self):
        """With a window of one snapshot, 'stale' is always the live state:
        async with one worker degenerates to plain sequential SGD."""
        batch = make_batch(16)
        ref_model = make_model(9)
        ref_opt = SGD(ref_model.parameters(), lr=0.1)
        model, dp = self._make(max_staleness=0, num_workers=1, seed=9)
        for _ in range(5):
            ref_model.zero_grad()
            loss = loss_fn(ref_model, batch)
            loss.backward()
            ref_opt.step()
            ref_model.zero_grad()
            dp.step(batch)
        for p_ref, p_async in zip(ref_model.parameters(), model.parameters()):
            np.testing.assert_allclose(p_ref.data, p_async.data, rtol=1e-6, atol=1e-7)

    def test_higher_staleness_diverges_from_fresh(self):
        """The staleness knob is live: window size changes the trajectory."""
        batch = make_batch(32)
        states = []
        for max_staleness in (0, 3):
            model, dp = self._make(max_staleness)
            for _ in range(4):
                dp.step(batch)
            states.append(np.concatenate(
                [p.data.reshape(-1) for p in model.parameters()]))
        assert not np.allclose(states[0], states[1])


class TestAllReduceAccounting:
    def test_counters_track_elements_and_bytes(self):
        from repro.telemetry import Telemetry

        model = make_model(3)
        dp = SynchronousDataParallel(
            model, SGD(model.parameters(), lr=0.1), 4, loss_fn)
        telemetry = Telemetry()
        with telemetry.activate():
            dp.step(make_batch(32))
            dp.step(make_batch(32, seed=1))
        snap = telemetry.metrics.snapshot()
        n_elements = sum(p.data.size for p in model.parameters())
        n_bytes = sum(p.data.size * p.data.itemsize for p in model.parameters())
        assert snap["allreduce_elements"]["value"] == 2 * n_elements
        assert snap["allreduce_bytes"]["value"] == 2 * n_bytes


class TestAsynchronousSnapshotReuse:
    """Evicted snapshot dicts are recycled, not re-allocated each step."""

    def _run(self, steps, seed=8):
        model = make_model(seed)
        dp = AsynchronousDataParallel(
            model, SGD(model.parameters(), lr=0.1), 4, loss_fn,
            rng=np.random.default_rng(0), max_staleness=1,
        )
        batch = make_batch(32)
        losses = [dp.step(batch) for _ in range(steps)]
        return model, dp, losses

    def test_buffers_are_recycled_after_window_fills(self):
        _, dp, _ = self._run(steps=4)
        # Window = 2 snapshots; evictions land on the free list and steady
        # state keeps one spare in rotation.
        assert len(dp._snapshots) == 2
        assert len(dp._retired) >= 1
        pool = {id(d) for d in dp._snapshots} | {id(d) for d in dp._retired}
        dp.step(make_batch(32))
        # Every snapshot in play came from the existing pool: a step in
        # steady state allocates no new snapshot dicts.
        after = {id(d) for d in dp._snapshots} | {id(d) for d in dp._retired}
        assert after <= pool

    def test_snapshots_do_not_alias_each_other(self):
        _, dp, _ = self._run(steps=5)
        a, b = dp._snapshots[-2], dp._snapshots[-1]
        for name in a:
            assert a[name] is not b[name]

    def test_trajectory_matches_fresh_copy_semantics(self):
        """Recycling is an allocation optimisation only: the training
        trajectory must be identical to snapshotting via state_dict()."""
        model, dp, losses = self._run(steps=6)

        ref_model = make_model(8)
        ref = AsynchronousDataParallel(
            ref_model, SGD(ref_model.parameters(), lr=0.1), 4, loss_fn,
            rng=np.random.default_rng(0), max_staleness=1,
        )
        ref._snapshot = ref_model.state_dict  # bypass buffer recycling
        batch = make_batch(32)
        ref_losses = [ref.step(batch) for _ in range(6)]

        assert losses == ref_losses
        for p, p_ref in zip(model.parameters(), ref_model.parameters()):
            np.testing.assert_array_equal(p.data, p_ref.data)
