"""Additional round-simulation behaviour: mechanism attribution."""

import dataclasses

import numpy as np
import pytest

from repro.systems import (
    ROUND_V05,
    ROUND_V06,
    Round,
    RoundBenchmarkRules,
    best_entry_at_scale,
    fastest_overall_entry,
)


def v06_without(field: str) -> Round:
    """v0.6 with one improvement mechanism reverted to v0.5 levels."""
    rules = {}
    for name, r06 in ROUND_V06.benchmark_rules.items():
        r05 = ROUND_V05.benchmark_rules[name]
        kwargs = dataclasses.asdict(r06)
        kwargs[field] = getattr(r05, field)
        rules[name] = RoundBenchmarkRules(**kwargs)
    return Round("v0.6-ablated", ROUND_V06.max_system_chips, rules)


class TestMechanismAttribution:
    def test_software_efficiency_drives_fixed_scale_speedup(self):
        """Without software gains, the Fig 4 speedup all but vanishes —
        at 16 chips the raised targets roughly cancel the batch-cap gains,
        so efficiency is the speedup's driver."""
        ablated = v06_without("software_efficiency")
        for name in ROUND_V06.benchmark_rules:
            full = best_entry_at_scale(name, ROUND_V06, 16).time_to_train_s
            no_sw = best_entry_at_scale(name, ablated, 16).time_to_train_s
            v05 = best_entry_at_scale(name, ROUND_V05, 16).time_to_train_s
            assert full < no_sw, name
            assert v05 / no_sw < 1.05, name  # ablated speedup is marginal
            assert v05 / full > v05 / no_sw, name

    def test_batch_rule_drives_scale_growth(self):
        """Without the batch-cap raises (LARS etc.), the fastest ResNet
        entry cannot grow beyond its v0.5 scale — the Fig 5 driver."""
        ablated = v06_without("max_global_batch")
        full = fastest_overall_entry("image_classification", ROUND_V06)
        capped = fastest_overall_entry("image_classification", ablated)
        v05 = fastest_overall_entry("image_classification", ROUND_V05)
        assert full.num_chips > capped.num_chips
        assert capped.num_chips <= v05.num_chips * 2  # availability only

    def test_target_raise_costs_time(self):
        ablated = v06_without("epochs_multiplier")  # revert to 1.0
        for name in ROUND_V06.benchmark_rules:
            with_raise = best_entry_at_scale(name, ROUND_V06, 16).time_to_train_s
            without = best_entry_at_scale(name, ablated, 16).time_to_train_s
            assert without < with_raise, name

    def test_entries_respect_round_batch_caps(self):
        for round_ in (ROUND_V05, ROUND_V06):
            for name, rules in round_.benchmark_rules.items():
                entry = fastest_overall_entry(name, round_)
                assert entry.global_batch <= rules.max_global_batch, (round_.name, name)

    def test_entries_respect_scale_caps(self):
        for round_ in (ROUND_V05, ROUND_V06):
            for name in round_.benchmark_rules:
                entry = fastest_overall_entry(name, round_)
                assert entry.num_chips <= round_.max_system_chips
