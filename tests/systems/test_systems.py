"""System simulator: hardware model, convergence models, round simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systems import (
    ChipSpec,
    CriticalBatchModel,
    Interconnect,
    MeasuredConvergence,
    ROUND_V05,
    ROUND_V06,
    SCALING_BENCHMARKS,
    SystemConfig,
    WorkloadProfile,
    best_entry_at_scale,
    fastest_overall_entry,
    figure4_speedups,
    figure5_scale_growth,
    fit_critical_batch,
    optimal_batch_search,
    simulate_time_to_train,
    step_time,
)

CHIP = ChipSpec("test-chip", samples_per_second=1000.0, step_overhead_s=1e-3, max_local_batch=128)
FABRIC = Interconnect("test-net", bandwidth_bytes_per_s=10e9, latency_s=1e-6)


def make_profile(**overrides):
    defaults = dict(
        name="w",
        dataset_size=100_000,
        model_bytes=100e6,
        convergence=CriticalBatchModel(e_min=10.0, b_crit=4096.0),
        min_local_batch=1,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestChipModel:
    def test_compute_time_linear_in_batch(self):
        t1 = CHIP.compute_time(100)
        t2 = CHIP.compute_time(200)
        assert t2 - t1 == pytest.approx(100 / 1000.0)

    def test_overhead_floor(self):
        assert CHIP.compute_time(1) >= 1e-3

    def test_software_efficiency_speeds_compute(self):
        assert CHIP.compute_time(100, 2.0) < CHIP.compute_time(100, 1.0)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CHIP.compute_time(0)


class TestInterconnect:
    def test_single_chip_free(self):
        assert FABRIC.allreduce_time(1, 1e9) == 0.0

    def test_transfer_term_saturates(self):
        # 2(n-1)/n -> 2 as n grows: time approaches 2*S/B.
        big = FABRIC.allreduce_time(1024, 1e9) - 2 * 1023 * 1e-6
        assert big == pytest.approx(2 * 1e9 / 10e9, rel=0.01)

    def test_monotone_in_payload(self):
        assert FABRIC.allreduce_time(8, 2e9) > FABRIC.allreduce_time(8, 1e9)

    def test_invalid_chips(self):
        with pytest.raises(ValueError):
            FABRIC.allreduce_time(0, 1e6)


class TestConvergenceModels:
    def test_critical_batch_paper_anecdote(self):
        """§2.2.2: 4K -> 16K must cost ~30% more computation."""
        model = CriticalBatchModel(e_min=57.6, b_crit=36_000.0)
        e4k = model.epochs_to_target(4096)
        e16k = model.epochs_to_target(16384)
        assert e4k == pytest.approx(64, rel=0.02)  # "around 64 epochs"
        assert e16k / e4k == pytest.approx(1.30, abs=0.03)  # "30% increase"

    def test_small_batches_near_emin(self):
        model = CriticalBatchModel(e_min=10.0, b_crit=10_000.0)
        assert model.epochs_to_target(100) == pytest.approx(10.0, rel=0.02)

    def test_computation_overhead(self):
        model = CriticalBatchModel(e_min=10.0, b_crit=1000.0)
        assert model.computation_overhead(2000, 1000) == pytest.approx(0.5)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CriticalBatchModel(10, 100).epochs_to_target(0)

    def test_measured_interpolation(self):
        m = MeasuredConvergence({64: 5.0, 256: 6.0, 1024: 10.0})
        assert m.epochs_to_target(64) == 5.0
        assert m.epochs_to_target(160) == pytest.approx(5.5)
        assert m.epochs_to_target(1024) == 10.0

    def test_measured_extrapolation_linear(self):
        m = MeasuredConvergence({256: 6.0, 1024: 10.0})
        # slope (10-6)/768 per sample
        assert m.epochs_to_target(2048) == pytest.approx(10 + 4 / 768 * 1024)

    def test_fit_recovers_model(self):
        truth = CriticalBatchModel(e_min=12.0, b_crit=2000.0)
        measurements = {b: truth.epochs_to_target(b) for b in (64, 256, 1024, 4096)}
        fit = fit_critical_batch(measurements)
        assert fit.e_min == pytest.approx(12.0, rel=1e-6)
        assert fit.b_crit == pytest.approx(2000.0, rel=1e-6)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_critical_batch({64: 5.0})

    @given(st.floats(1, 100), st.floats(100, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_epochs_monotone_in_batch(self, e_min, b_crit):
        model = CriticalBatchModel(e_min, b_crit)
        assert model.epochs_to_target(2048) >= model.epochs_to_target(1024)


class TestSimulator:
    def system(self, chips=8, eff=1.0):
        return SystemConfig(CHIP, chips, FABRIC, software_efficiency=eff)

    def test_step_time_components(self):
        profile = make_profile()
        t = step_time(self.system(8), profile, 512)
        expected = CHIP.compute_time(64) + FABRIC.allreduce_time(8, 100e6)
        assert t == pytest.approx(expected)

    def test_chip_capacity_enforced(self):
        profile = make_profile()
        with pytest.raises(ValueError, match="capacity"):
            step_time(self.system(1), profile, 1024)

    def test_min_local_batch_enforced(self):
        profile = make_profile(min_local_batch=16)
        with pytest.raises(ValueError, match="too small"):
            step_time(self.system(8), profile, 64)

    def test_ttt_decreases_with_chips_at_fixed_batch(self):
        profile = make_profile()
        t8 = simulate_time_to_train(self.system(8), profile, 1024)
        t16 = simulate_time_to_train(self.system(16), profile, 1024)
        assert t16 < t8

    def test_large_batch_convergence_tradeoff(self):
        """The §2.2.2 trade-off cuts both ways depending on B_crit.

        Past the critical batch, bigger batches cost more epochs; whether
        wall-clock still improves depends on how far past it you are.
        """
        sys16 = self.system(16)
        # Workload far below its critical batch: bigger batch wins.
        easy = make_profile(convergence=CriticalBatchModel(10.0, 100_000.0))
        assert simulate_time_to_train(sys16, easy, 2048) < simulate_time_to_train(
            sys16, easy, 256
        )
        # Workload far past its critical batch: the epoch penalty dominates.
        hard = make_profile(convergence=CriticalBatchModel(10.0, 256.0))
        assert simulate_time_to_train(sys16, hard, 2048) > simulate_time_to_train(
            sys16, hard, 256
        )

    def test_epochs_multiplier_slows_training(self):
        profile = make_profile()
        base = simulate_time_to_train(self.system(8), profile, 1024)
        raised = simulate_time_to_train(self.system(8), profile, 1024, epochs_multiplier=1.2)
        assert raised == pytest.approx(base * 1.2)

    def test_max_global_batch_enforced(self):
        profile = make_profile(max_global_batch=512)
        with pytest.raises(ValueError, match="max usable batch"):
            simulate_time_to_train(self.system(8), profile, 1024)

    def test_optimal_batch_search_returns_feasible_best(self):
        profile = make_profile()
        ttt, batch = optimal_batch_search(self.system(16), profile)
        assert batch >= 16
        assert batch <= 16 * CHIP.max_local_batch
        # Must beat at least the two extreme batches
        lo = simulate_time_to_train(self.system(16), profile, 16)
        assert ttt <= lo

    def test_search_infeasible_system(self):
        profile = make_profile(min_local_batch=64, max_global_batch=128)
        with pytest.raises(ValueError, match="cannot run"):
            optimal_batch_search(self.system(16), profile)


class TestRounds:
    def test_v06_faster_at_fixed_scale(self):
        """Figure 4's headline: every benchmark sped up despite targets."""
        for name, speedup in figure4_speedups(16).items():
            assert speedup > 1.0, name

    def test_fig4_average_close_to_paper(self):
        speedups = list(figure4_speedups(16).values())
        assert 1.1 <= float(np.mean(speedups)) <= 1.5  # paper: ~1.3x

    def test_fig5_scale_grows(self):
        """Figure 5's headline: fastest entries use more chips in v0.6."""
        for name, (v05, v06) in figure5_scale_growth().items():
            assert v06.num_chips > v05.num_chips, name

    def test_fig5_average_close_to_paper(self):
        ratios = [b.num_chips / a.num_chips for a, b in figure5_scale_growth().values()]
        assert 3.0 <= float(np.mean(ratios)) <= 8.0  # paper: ~5.5x

    def test_fastest_overall_beats_fixed_scales(self):
        entry = fastest_overall_entry("image_classification", ROUND_V05)
        for chips in (16, 64, 256):
            fixed = best_entry_at_scale("image_classification", ROUND_V05, chips)
            assert entry.time_to_train_s <= fixed.time_to_train_s

    def test_lars_rule_unlocks_batch(self):
        """The v0.6 ResNet entries use batches illegal under v0.5 rules."""
        v06 = fastest_overall_entry("image_classification", ROUND_V06)
        v05_cap = ROUND_V05.benchmark_rules["image_classification"].max_global_batch
        assert v06.global_batch > v05_cap

    def test_rounds_cover_five_benchmarks(self):
        assert len(SCALING_BENCHMARKS) == 5
        assert set(ROUND_V05.benchmark_rules) == set(SCALING_BENCHMARKS)
        assert set(ROUND_V06.benchmark_rules) == set(SCALING_BENCHMARKS)
