"""Shared test utilities, chiefly a central-difference gradient checker."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.framework import Tensor


def numeric_grad(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of ``x``."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(
    build: Callable[[Tensor], Tensor],
    x_data: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-5,
) -> None:
    """Assert autodiff gradient of ``build(x).sum()`` matches finite differences.

    ``build`` must map a Tensor to a Tensor; float64 is used throughout for
    finite-difference accuracy.
    """
    x_data = x_data.astype(np.float64)

    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x)
    out.sum().backward()
    analytic = x.grad

    def scalar(arr: np.ndarray) -> float:
        return float(build(Tensor(arr.copy())).data.sum())

    numeric = numeric_grad(scalar, x_data)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
