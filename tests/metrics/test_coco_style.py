"""COCO-style multi-threshold mAP and stricter matching behaviour."""

import numpy as np
import pytest

from repro.metrics import (
    COCO_IOU_THRESHOLDS,
    Detection,
    GroundTruth,
    mean_average_precision,
)


def det(image_id, box, label=0, score=1.0):
    return Detection(image_id, np.asarray(box, dtype=float), label, score)


def gt(image_id, box, label=0):
    return GroundTruth(image_id, np.asarray(box, dtype=float), label)


class TestCocoThresholds:
    def test_threshold_grid(self):
        assert len(COCO_IOU_THRESHOLDS) == 10
        assert COCO_IOU_THRESHOLDS[0] == 0.5
        assert COCO_IOU_THRESHOLDS[-1] == 0.95

    def test_perfect_boxes_score_one_everywhere(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [det(0, [0, 0, 10, 10])]
        assert mean_average_precision(dets, gts, COCO_IOU_THRESHOLDS) == pytest.approx(1.0)

    def test_coco_map_leq_map50(self):
        """Averaging over stricter thresholds can only lower the score."""
        rng = np.random.default_rng(0)
        gts, dets = [], []
        for i in range(12):
            box = np.array([5.0, 5.0, 20.0, 20.0])
            gts.append(gt(i, box))
            jitter = rng.normal(0, 1.5, size=4)
            dets.append(det(i, box + jitter, score=float(rng.random())))
        map50 = mean_average_precision(dets, gts, (0.5,))
        coco = mean_average_precision(dets, gts, COCO_IOU_THRESHOLDS)
        assert coco <= map50 + 1e-9

    def test_partial_overlap_degrades_gracefully(self):
        """A fixed 2px offset passes loose thresholds, fails strict ones."""
        gts = [gt(0, [0, 0, 16, 16])]
        dets = [det(0, [2, 0, 18, 16])]  # IoU = 14*16 / (2*16*16 - 14*16) = 0.7777...
        per_threshold = [
            mean_average_precision(dets, gts, (thr,)) for thr in COCO_IOU_THRESHOLDS
        ]
        # AP is 1 below the detection's IoU and 0 above it: monotone step.
        assert per_threshold[0] == 1.0
        assert per_threshold[-1] == 0.0
        assert all(a >= b for a, b in zip(per_threshold, per_threshold[1:]))

    def test_scores_rank_detections_across_images(self):
        """Lower-scored true positives after a high-scored false positive
        still recover full recall, but with precision cost at their rank."""
        gts = [gt(0, [0, 0, 10, 10]), gt(1, [0, 0, 10, 10])]
        dets = [
            det(0, [50, 50, 60, 60], score=0.99),  # confident FP
            det(0, [0, 0, 10, 10], score=0.5),
            det(1, [0, 0, 10, 10], score=0.4),
        ]
        value = mean_average_precision(dets, gts, (0.5,))
        # Raw precision at the TP ranks is 1/2 then 2/3; all-point
        # interpolation takes the running max from the right, lifting the
        # first TP's precision to 2/3 as well: AP = 2/3.
        assert value == pytest.approx(2 / 3)
