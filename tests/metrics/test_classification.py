"""Top-k accuracy and move-match metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import move_match_rate, top1_accuracy, top_k_accuracy


class TestTopK:
    def test_perfect(self):
        scores = np.eye(4)
        assert top1_accuracy(scores, np.arange(4)) == 1.0

    def test_all_wrong(self):
        scores = np.eye(4)
        assert top1_accuracy(scores, (np.arange(4) + 1) % 4) == 0.0

    def test_half(self):
        scores = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert top1_accuracy(scores, np.array([0, 1])) == 0.5

    def test_top5_recovers_lower_ranked(self):
        scores = np.zeros((1, 10))
        scores[0, :5] = [5, 4, 3, 2, 1]
        assert top_k_accuracy(scores, np.array([4]), k=5) == 1.0
        assert top_k_accuracy(scores, np.array([4]), k=4) == 0.0

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_empty(self):
        assert top1_accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    @given(st.integers(1, 20), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_k(self, n, c):
        rng = np.random.default_rng(n * 100 + c)
        scores = rng.normal(size=(n, c))
        labels = rng.integers(0, c, size=n)
        accs = [top_k_accuracy(scores, labels, k) for k in range(1, c + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0  # k = C always hits


class TestMoveMatch:
    def test_exact(self):
        assert move_match_rate(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert move_match_rate(np.array([1, 2, 3, 4]), np.array([1, 0, 3, 0])) == 0.5

    def test_empty(self):
        assert move_match_rate(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            move_match_rate(np.array([1]), np.array([1, 2]))
