"""Detection metrics: IoU, NMS, AP/mAP matching semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Detection,
    GroundTruth,
    average_precision,
    box_iou,
    mask_iou,
    mean_average_precision,
    nms,
)

box = st.tuples(
    st.floats(0, 50), st.floats(0, 50), st.floats(1, 50), st.floats(1, 50)
).map(lambda t: np.array([min(t[0], t[0] + t[2]), min(t[1], t[1] + t[3]),
                          t[0] + t[2], t[1] + t[3]]))


def det(image_id, box_coords, label=0, score=1.0, mask=None):
    return Detection(image_id, np.asarray(box_coords, dtype=float), label, score, mask)


def gt(image_id, box_coords, label=0, mask=None):
    return GroundTruth(image_id, np.asarray(box_coords, dtype=float), label, mask)


class TestBoxIoU:
    def test_identical(self):
        b = np.array([[0, 0, 10, 10]])
        np.testing.assert_allclose(box_iou(b, b), [[1.0]])

    def test_disjoint(self):
        a = np.array([[0, 0, 5, 5]])
        b = np.array([[10, 10, 20, 20]])
        np.testing.assert_allclose(box_iou(a, b), [[0.0]])

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[5, 0, 15, 10]])
        np.testing.assert_allclose(box_iou(a, b), [[50 / 150]])

    def test_contained(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[2, 2, 4, 4]])
        np.testing.assert_allclose(box_iou(a, b), [[4 / 100]])

    def test_pairwise_shape(self):
        a = np.zeros((3, 4))
        b = np.zeros((5, 4))
        assert box_iou(a, b).shape == (3, 5)

    def test_degenerate_box_zero(self):
        a = np.array([[5, 5, 5, 5]])
        np.testing.assert_allclose(box_iou(a, a), [[0.0]])

    @given(box, box)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_range(self, a, b):
        ab = box_iou(a[None], b[None])[0, 0]
        ba = box_iou(b[None], a[None])[0, 0]
        assert ab == pytest.approx(ba)
        assert 0.0 <= ab <= 1.0 + 1e-9


class TestMaskIoU:
    def test_identical(self):
        m = np.zeros((1, 4, 4), dtype=bool)
        m[0, :2, :2] = True
        np.testing.assert_allclose(mask_iou(m, m), [[1.0]])

    def test_disjoint(self):
        a = np.zeros((1, 4, 4), dtype=bool)
        b = np.zeros((1, 4, 4), dtype=bool)
        a[0, 0, 0] = True
        b[0, 3, 3] = True
        np.testing.assert_allclose(mask_iou(a, b), [[0.0]])

    def test_quarter_overlap(self):
        a = np.zeros((1, 4, 4), dtype=bool)
        b = np.zeros((1, 4, 4), dtype=bool)
        a[0, :2, :] = True  # 8 px
        b[0, 1:3, :] = True  # 8 px, overlap 4
        np.testing.assert_allclose(mask_iou(a, b), [[4 / 12]])

    def test_empty_masks(self):
        z = np.zeros((1, 4, 4), dtype=bool)
        np.testing.assert_allclose(mask_iou(z, z), [[0.0]])


class TestNMS:
    def test_keeps_best_suppresses_overlap(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [20, 20, 30, 30]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, iou_threshold=0.5)
        np.testing.assert_array_equal(keep, [0, 2])

    def test_keeps_all_disjoint(self):
        boxes = np.array([[0, 0, 5, 5], [10, 10, 15, 15], [20, 20, 25, 25]])
        scores = np.array([0.1, 0.9, 0.5])
        keep = nms(boxes, scores, 0.5)
        assert set(keep.tolist()) == {0, 1, 2}
        assert keep[0] == 1  # ordered by score

    def test_empty(self):
        assert nms(np.zeros((0, 4)), np.zeros(0)).size == 0

    def test_threshold_extremes(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11]])
        scores = np.array([0.9, 0.8])
        assert len(nms(boxes, scores, iou_threshold=0.99)) == 2
        assert len(nms(boxes, scores, iou_threshold=0.1)) == 1


class TestAP:
    def test_perfect_detection(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [det(0, [0, 0, 10, 10], score=0.9)]
        assert average_precision(dets, gts) == pytest.approx(1.0)

    def test_no_detections(self):
        assert average_precision([], [gt(0, [0, 0, 5, 5])]) == 0.0

    def test_no_ground_truth(self):
        assert average_precision([det(0, [0, 0, 5, 5])], []) == 0.0

    def test_false_positive_lowers_ap(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [
            det(0, [50, 50, 60, 60], score=0.95),  # FP ranked first
            det(0, [0, 0, 10, 10], score=0.9),
        ]
        ap = average_precision(dets, gts)
        assert ap == pytest.approx(0.5)

    def test_duplicate_detection_counts_once(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [
            det(0, [0, 0, 10, 10], score=0.9),
            det(0, [0, 0, 10, 10], score=0.8),  # duplicate => FP
        ]
        ap = average_precision(dets, gts)
        assert ap == pytest.approx(1.0)  # recall reached at rank 1; dup after

    def test_iou_threshold_gates_match(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [det(0, [4, 0, 14, 10], score=0.9)]  # IoU = 6/14 ≈ 0.43
        assert average_precision(dets, gts, iou_threshold=0.5) == 0.0
        assert average_precision(dets, gts, iou_threshold=0.4) == pytest.approx(1.0)

    def test_cross_image_isolation(self):
        gts = [gt(0, [0, 0, 10, 10]), gt(1, [0, 0, 10, 10])]
        dets = [det(0, [0, 0, 10, 10], score=0.9)]  # only image 0 detected
        assert average_precision(dets, gts) == pytest.approx(0.5)

    def test_mask_ap(self):
        m = np.zeros((8, 8), dtype=bool)
        m[:4, :4] = True
        gts = [gt(0, [0, 0, 4, 4], mask=m)]
        dets = [det(0, [0, 0, 4, 4], score=0.9, mask=m.copy())]
        assert average_precision(dets, gts, use_masks=True) == pytest.approx(1.0)


class TestMAP:
    def test_averages_over_classes(self):
        gts = [gt(0, [0, 0, 10, 10], label=0), gt(0, [20, 20, 30, 30], label=1)]
        dets = [det(0, [0, 0, 10, 10], label=0, score=0.9)]  # class 1 missed
        assert mean_average_precision(dets, gts) == pytest.approx(0.5)

    def test_wrong_class_no_credit(self):
        gts = [gt(0, [0, 0, 10, 10], label=0)]
        dets = [det(0, [0, 0, 10, 10], label=1, score=0.9)]
        assert mean_average_precision(dets, gts) == 0.0

    def test_multiple_thresholds_average(self):
        gts = [gt(0, [0, 0, 10, 10])]
        dets = [det(0, [2, 0, 12, 10], score=0.9)]  # IoU = 8/12 ≈ 0.667
        strict = mean_average_precision(dets, gts, iou_thresholds=(0.5, 0.75))
        assert strict == pytest.approx(0.5)  # hits at 0.5, misses at 0.75

    def test_empty_ground_truth(self):
        assert mean_average_precision([], []) == 0.0
