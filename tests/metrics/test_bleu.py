"""Corpus BLEU against hand-computed values and known properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import corpus_bleu, ngram_counts, sentence_bleu

tokens = st.lists(st.integers(0, 10), min_size=5, max_size=20)


class TestNgramCounts:
    def test_unigrams(self):
        counts = ngram_counts(["a", "b", "a"], 1)
        assert counts[("a",)] == 2
        assert counts[("b",)] == 1

    def test_bigrams(self):
        counts = ngram_counts([1, 2, 3], 2)
        assert counts[(1, 2)] == 1
        assert counts[(2, 3)] == 1
        assert sum(counts.values()) == 2

    def test_n_longer_than_sequence(self):
        assert len(ngram_counts([1], 2)) == 0


class TestCorpusBleu:
    def test_identity_is_100(self):
        refs = [[1, 2, 3, 4, 5, 6], [7, 8, 9, 10, 11]]
        assert corpus_bleu(refs, refs) == pytest.approx(100.0)

    def test_disjoint_is_0(self):
        assert corpus_bleu([[1, 2, 3, 4, 5]], [[6, 7, 8, 9, 10]]) == 0.0

    def test_hand_computed_example(self):
        # hyp: "the cat the cat", ref: "the cat sat" (as ints)
        hyp = [0, 1, 0, 1]
        ref = [0, 1, 2]
        # unigram: clipped matches: 'the'->min(2,1)=1, 'cat'->min(2,1)=1 => 2/4
        # bigram: (0,1)x2 -> min(2,1)=1; (1,0)->0 => 1/3
        # hyp (4 tokens) is longer than ref (3): no brevity penalty.
        p1, p2 = 2 / 4, 1 / 3
        expected = 100 * math.exp((math.log(p1) + math.log(p2)) / 2)
        assert corpus_bleu([hyp], [ref], max_n=2) == pytest.approx(expected)

    def test_clipping_penalizes_repetition(self):
        # "the the the the" vs "the cat": unigram precision clipped to 1/4.
        score_rep = corpus_bleu([[0, 0, 0, 0]], [[0, 1]], max_n=1)
        score_ok = corpus_bleu([[0, 1, 2, 3]], [[0, 1]], max_n=1)
        assert score_rep < score_ok

    def test_brevity_penalty(self):
        # A 2-token perfect prefix of a 8-token reference is penalized.
        short = corpus_bleu([[1, 2]], [[1, 2, 3, 4, 5, 6, 7, 8]], max_n=2)
        full = corpus_bleu([[1, 2, 3, 4, 5, 6, 7, 8]], [[1, 2, 3, 4, 5, 6, 7, 8]], max_n=2)
        assert short < full
        assert short == pytest.approx(100 * math.exp(1 - 8 / 2), rel=1e-6)

    def test_no_penalty_when_longer(self):
        # Longer-than-reference hypotheses get no brevity penalty (precision
        # already punishes extra tokens).
        score = corpus_bleu([[1, 2, 3, 9, 9]], [[1, 2, 3]], max_n=1)
        assert score == pytest.approx(100 * 3 / 5)

    def test_corpus_pooling_not_average(self):
        # Pooled counts differ from averaging per-sentence BLEU when
        # sentence lengths are unequal.
        hyps = [[1, 2], [9, 9, 9, 9, 9, 9]]
        refs = [[1, 2], [1, 2, 3, 4, 5, 6]]
        pooled = corpus_bleu(hyps, refs, max_n=1)
        avg = np.mean([corpus_bleu([h], [r], max_n=1) for h, r in zip(hyps, refs)])
        assert pooled == pytest.approx(100 * 2 / 8)  # 2 matches over 8 tokens
        assert avg == pytest.approx(50.0)  # (100 + 0) / 2
        assert pooled != pytest.approx(avg)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1], [2]])

    def test_empty_corpus(self):
        assert corpus_bleu([], []) == 0.0

    def test_smoothing_gives_nonzero_for_partial(self):
        # Without smoothing a missing 4-gram zeroes the score entirely.
        hyp, ref = [1, 2, 3, 9], [1, 2, 3, 4]
        assert corpus_bleu([hyp], [ref]) == 0.0
        assert corpus_bleu([hyp], [ref], smoothing=1.0) > 0.0

    def test_sentence_bleu_smoothed_by_default(self):
        assert sentence_bleu([1, 2, 3], [1, 2, 4]) > 0.0

    @given(tokens)
    @settings(max_examples=40, deadline=None)
    def test_self_bleu_is_100(self, seq):
        assert corpus_bleu([seq], [seq]) == pytest.approx(100.0)

    @given(tokens, tokens)
    @settings(max_examples=40, deadline=None)
    def test_range(self, hyp, ref):
        score = corpus_bleu([hyp], [ref], smoothing=1.0)
        assert 0.0 <= score <= 100.0 + 1e-9

    @given(tokens)
    @settings(max_examples=30, deadline=None)
    def test_word_dropped_reduces_score(self, seq):
        truncated = seq[:-1]
        assert corpus_bleu([truncated], [seq], smoothing=1.0) <= 100.0
