"""Ranking metrics and run statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    dispersion,
    epochs_to_target_histogram,
    fraction_within,
    hit_rate_at_k,
    leave_one_out_eval,
    ndcg_at_k,
)


class TestHitRate:
    def test_positive_ranked_first(self):
        rows = [np.array([5.0, 1.0, 0.0])]
        assert hit_rate_at_k(rows, k=1) == 1.0

    def test_positive_outside_k(self):
        rows = [np.array([0.0, 5.0, 4.0, 3.0])]
        assert hit_rate_at_k(rows, k=3) == 0.0
        assert hit_rate_at_k(rows, k=4) == 1.0

    def test_mixed_users(self):
        rows = [np.array([5.0, 1.0]), np.array([0.0, 5.0])]
        assert hit_rate_at_k(rows, k=1) == 0.5

    def test_ties_pessimistic(self):
        # Constant scorer should not get credit at k=1 with 2+ candidates.
        rows = [np.array([1.0, 1.0, 1.0])]
        assert hit_rate_at_k(rows, k=1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([np.array([1.0])], k=0)

    def test_empty(self):
        assert hit_rate_at_k([], k=10) == 0.0

    @given(st.integers(1, 30), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_k(self, n_users, seed):
        rng = np.random.default_rng(seed)
        rows = [rng.normal(size=21) for _ in range(n_users)]
        hrs = [hit_rate_at_k(rows, k) for k in range(1, 22)]
        assert all(a <= b + 1e-12 for a, b in zip(hrs, hrs[1:]))
        assert hrs[-1] == 1.0


class TestNDCG:
    def test_rank_one_full_credit(self):
        assert ndcg_at_k([np.array([5.0, 0.0])], k=10) == pytest.approx(1.0)

    def test_rank_two_discounted(self):
        rows = [np.array([1.0, 5.0, 0.0])]
        assert ndcg_at_k(rows, k=10) == pytest.approx(1 / np.log2(3))

    def test_ndcg_at_most_hr(self):
        rng = np.random.default_rng(0)
        rows = [rng.normal(size=11) for _ in range(50)]
        assert ndcg_at_k(rows, 10) <= hit_rate_at_k(rows, 10) + 1e-12


class TestLeaveOneOut:
    def test_oracle_scorer(self):
        users = np.arange(5)
        positives = np.arange(5) + 100
        negatives = np.arange(5 * 7).reshape(5, 7)

        def oracle(u, i):
            return (i >= 100).astype(float)  # positives always score higher

        hr, ndcg = leave_one_out_eval(oracle, positives, negatives, users)
        assert hr == 1.0
        assert ndcg == 1.0

    def test_adversarial_scorer(self):
        users = np.arange(4)
        positives = np.zeros(4, dtype=int) + 100
        negatives = np.arange(4 * 15).reshape(4, 15)

        def worst(u, i):
            return -(i >= 100).astype(float)

        hr, _ = leave_one_out_eval(worst, positives, negatives, users, k=10)
        assert hr == 0.0


class TestDispersion:
    def test_basic_stats(self):
        d = dispersion([1.0, 2.0, 3.0])
        assert d.n == 3
        assert d.mean == 2.0
        assert d.minimum == 1.0
        assert d.maximum == 3.0
        assert d.spread_ratio == 3.0

    def test_single_value(self):
        d = dispersion([5.0])
        assert d.std == 0.0
        assert d.coefficient_of_variation == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dispersion([])


class TestFractionWithin:
    def test_all_within(self):
        assert fraction_within([100, 101, 99], 0.05) == 1.0

    def test_outlier_excluded(self):
        vals = [100.0] * 9 + [200.0]
        assert fraction_within(vals, 0.05) == pytest.approx(0.9)

    def test_tolerance_zero(self):
        assert fraction_within([1.0, 1.0, 2.0], 0.0) == pytest.approx(2 / 3)

    @given(st.lists(st.floats(1, 100), min_size=1, max_size=20), st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_range(self, vals, tol):
        f = fraction_within(vals, tol)
        assert 0.0 <= f <= 1.0


class TestHistogram:
    def test_counts(self):
        h = epochs_to_target_histogram([3, 3, 4, 5, 5, 5])
        assert h == {3: 2, 4: 1, 5: 3}

    def test_sorted_keys(self):
        h = epochs_to_target_histogram([9, 1, 5])
        assert list(h.keys()) == [1, 5, 9]

    def test_empty(self):
        assert epochs_to_target_histogram([]) == {}
