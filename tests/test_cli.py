"""CLI: every command through main(), end to end where cheap."""

import io

import pytest

from repro.cli import _parse_overrides, build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_override_parsing(self):
        parsed = _parse_overrides(["batch_size=128", "optimizer=lars", "lr=0.5"])
        assert parsed == {"batch_size": 128, "optimizer": "lars", "lr": 0.5}

    def test_override_bad_format(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["no-equals-sign"])


class TestCommands:
    def test_table1(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "image_classification" in text
        assert "reinforcement" in text

    def test_simulate(self):
        code, text = run_cli("simulate")
        assert code == 0
        assert "Figure 4" in text and "Figure 5" in text

    def test_hp_table(self):
        code, text = run_cli("hp-table", "--chips", "1", "64")
        assert code == 0
        assert "lars" in text  # the 64-chip image-classification row

    def test_run_score_save_review_report(self, tmp_path):
        """The full CLI workflow on the fastest benchmark."""
        code, text = run_cli(
            "run", "recommendation", "--seeds", "3", "--score",
            "--save", str(tmp_path), "--submitter", "cli-test",
        )
        assert code == 0
        assert "scored time-to-train" in text
        assert "artifacts written" in text

        # Review: the saved submission has 3 runs but the rule demands 10 —
        # review must flag it (non-zero exit), proving review audits files.
        code, text = run_cli("review", str(tmp_path / "cli-test"))
        assert code == 1
        assert "run_count" in text

        # Report still renders (scoring needs only >= 3 runs).
        code, text = run_cli("report", str(tmp_path / "cli-test"))
        assert code == 0
        assert "recommendation" in text

    def test_run_score_needs_three(self):
        code, text = run_cli("run", "recommendation", "--seeds", "1", "--score")
        assert code == 2
        assert "at least 3" in text

    def test_run_with_override(self):
        code, text = run_cli(
            "run", "recommendation", "--seeds", "1",
            "--override", "base_lr=0.003",
        )
        assert code == 0
        assert "reached" in text


class TestCampaignCommand:
    def test_unknown_benchmark(self):
        code, text = run_cli("campaign", "frobnicate")
        assert code == 2
        assert "unknown benchmark" in text

    def test_jobs_must_be_positive(self):
        code, text = run_cli("campaign", "recommendation", "--jobs", "0")
        assert code == 2
        assert "--jobs" in text

    def test_resume_save_conflict(self, tmp_path):
        code, text = run_cli("campaign", "recommendation",
                             "--save", str(tmp_path / "a"),
                             "--resume", str(tmp_path / "b"))
        assert code == 2
        assert "implies" in text

    def test_campaign_save_then_resume(self, tmp_path):
        """A full campaign, then a resume that finds nothing left to run."""
        camp = tmp_path / "camp"
        bench_file = tmp_path / "BENCH_campaign.json"
        code, text = run_cli(
            "campaign", "recommendation", "--seeds", "3",
            "--save", str(camp), "--submitter", "cli-camp",
            "--bench", str(bench_file),
        )
        assert code == 0
        # Satellite: overriding seeds below the §3.2.2 requirement warns.
        assert "warning:" in text and "requires 10" in text
        assert "executed=3" in text and "resumed=0" in text
        assert "scores (olympic mean):" in text
        assert "artifacts written" in text
        assert (camp / "campaign_journal.json").is_file()

        import json
        payload = json.loads(bench_file.read_text())
        assert payload["schema"] == "repro-campaign-bench/1"
        assert payload["total_cells"] == 3

        code, text = run_cli("campaign", "recommendation", "--seeds", "3",
                             "--resume", str(camp), "--submitter", "cli-camp")
        assert code == 0
        assert "executed=0" in text and "resumed=3" in text
        # Scores are rebuilt from the journaled per-job result files.
        assert "scores (olympic mean):" in text

    def test_default_benchmarks_is_whole_suite(self):
        """No positional args plans the full Table 1 suite (parse only)."""
        args = build_parser().parse_args(["campaign"])
        assert args.benchmarks == []
        assert args.seeds is None and args.jobs == 1


class TestRunFailureExit:
    def test_run_failure_exits_nonzero_with_summary(self, monkeypatch):
        """Satellite: a crashed session must not exit 0."""
        from repro.core import runner as runner_mod

        def explode(self, benchmark, *, seed=0, **kwargs):
            raise runner_mod.RunFailure(
                benchmark=benchmark.spec.name, seed=seed,
                cause=ValueError("injected crash"), log_lines=[])

        monkeypatch.setattr(runner_mod.BenchmarkRunner, "run", explode)
        code, text = run_cli("run", "recommendation", "--seeds", "2")
        assert code == 1
        assert "run FAILED: benchmark=recommendation seed=0" in text
        assert "cause: ValueError: injected crash" in text


class TestObservabilityCommands:
    def test_run_trace_stats_trace_file(self, tmp_path):
        """run --trace emits a Chrome trace; stats and trace work on artifacts."""
        import json

        trace_path = tmp_path / "out.json"
        code, text = run_cli(
            "run", "recommendation", "--seeds", "1",
            "--trace", str(trace_path), "--save", str(tmp_path / "subs"),
            "--submitter", "obs-test",
        )
        assert code == 0
        assert "breakdown:" in text
        assert "trace written" in text

        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"init", "model_creation", "epoch", "eval",
                "train_step", "run:recommendation"} <= names
        assert all(e["ph"] in ("X", "i") for e in doc["traceEvents"])

        # stats: the per-phase decomposition table over the saved round.
        code, text = run_cli("stats", str(tmp_path / "subs" / "obs-test"))
        assert code == 0
        assert "recommendation" in text
        assert "Train" in text and "Eval" in text and "TTT" in text

        # trace: reconstruct a viewable trace from a published result file.
        result_file = next(
            (tmp_path / "subs" / "obs-test" / "results").rglob("result_0.txt"))
        out_file = tmp_path / "from-log.json"
        code, text = run_cli("trace", str(result_file), "-o", str(out_file))
        assert code == 0
        log_doc = json.loads(out_file.read_text())
        log_names = {e["name"] for e in log_doc["traceEvents"]}
        assert "run" in log_names and any(n.startswith("epoch") for n in log_names)

    def test_trace_on_non_log_file(self, tmp_path):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("no structured events here\n")
        code, text = run_cli("trace", str(bogus))
        assert code == 1
        assert "no :::MLLOG events" in text

    def test_stats_empty_submission(self, tmp_path):
        code, _ = run_cli(
            "run", "recommendation", "--seeds", "1", "--save", str(tmp_path),
            "--submitter", "empty-check",
        )
        assert code == 0
        # Point stats at a directory whose results were removed.
        import shutil
        shutil.rmtree(tmp_path / "empty-check" / "results")
        code, text = run_cli("stats", str(tmp_path / "empty-check"))
        assert code == 1
        assert "no runs" in text


class TestMonitorCommand:
    def test_monitor_after_campaign(self, tmp_path):
        code, _ = run_cli("campaign", "recommendation", "--seeds", "2",
                          "--save", str(tmp_path))
        assert code == 0
        code, text = run_cli("monitor", str(tmp_path))
        assert code == 0
        assert "recommendation/0" in text and "recommendation/1" in text
        assert "reached=2" in text
        assert "recent events" in text

    def test_monitor_events_hidden(self, tmp_path):
        run_cli("campaign", "recommendation", "--seeds", "2",
                "--save", str(tmp_path))
        code, text = run_cli("monitor", str(tmp_path), "--events", "0")
        assert code == 0
        assert "recent events" not in text

    def test_monitor_missing_directory(self, tmp_path):
        code, text = run_cli("monitor", str(tmp_path / "nope"))
        assert code == 2
        assert "no such campaign directory" in text

    def test_campaign_prints_the_shared_job_table(self, tmp_path):
        # Satellite: campaign completion output and `repro monitor` render
        # through the same path, so both carry the job-table header.
        code, campaign_text = run_cli("campaign", "recommendation",
                                      "--seeds", "2", "--save", str(tmp_path))
        assert code == 0
        _, monitor_text = run_cli("monitor", str(tmp_path))
        header = "Job"
        campaign_table = [l for l in campaign_text.splitlines()
                          if l.startswith(header) or l.startswith("recommendation/")]
        monitor_table = [l for l in monitor_text.splitlines()
                         if l.startswith(header) or l.startswith("recommendation/")]
        assert campaign_table and len(campaign_table) == len(monitor_table)
        # Identical rows up to the live heartbeat-age column.
        for c_row, m_row in zip(campaign_table[1:], monitor_table[1:]):
            assert c_row.split()[:7] == m_row.split()[:7]


class TestStatsSeries:
    def test_series_table_renders(self, tmp_path):
        run_cli("run", "recommendation", "--seeds", "1",
                "--save", str(tmp_path), "--submitter", "cli-test")
        code, text = run_cli("stats", str(tmp_path / "cli-test"), "--series")
        assert code == 0
        assert "eval_quality" in text
        assert "epoch_seconds" in text
        assert "Trend" in text


class TestBenchDiffCommand:
    BASELINE = "benchmarks/reports/BENCH_kernels.json"

    def test_self_compare_passes(self):
        code, text = run_cli("bench-diff", self.BASELINE, self.BASELINE)
        assert code == 0
        assert "0 regression(s)" in text

    def test_injected_regression_fails(self, tmp_path):
        import json as _json

        payload = _json.loads(open(self.BASELINE).read())
        payload["checks"]["bit_identical"] = False
        report = tmp_path / "fresh.json"
        report.write_text(_json.dumps(payload))
        code, text = run_cli("bench-diff", str(report), self.BASELINE)
        assert code == 1
        assert "REGRESSED" in text

    def test_schema_mismatch_is_usage_error(self):
        code, text = run_cli("bench-diff", self.BASELINE,
                             "benchmarks/reports/BENCH_comms.json")
        assert code == 2
        assert "schema mismatch" in text

    def test_bad_tolerance_flag(self):
        code, text = run_cli("bench-diff", self.BASELINE, self.BASELINE,
                             "--tolerance", "nonsense")
        assert code == 2
        assert "expected METRIC=REL_TOL" in text
