"""CLI: every command through main(), end to end where cheap."""

import io

import pytest

from repro.cli import _parse_overrides, build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_override_parsing(self):
        parsed = _parse_overrides(["batch_size=128", "optimizer=lars", "lr=0.5"])
        assert parsed == {"batch_size": 128, "optimizer": "lars", "lr": 0.5}

    def test_override_bad_format(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["no-equals-sign"])


class TestCommands:
    def test_table1(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "image_classification" in text
        assert "reinforcement" in text

    def test_simulate(self):
        code, text = run_cli("simulate")
        assert code == 0
        assert "Figure 4" in text and "Figure 5" in text

    def test_hp_table(self):
        code, text = run_cli("hp-table", "--chips", "1", "64")
        assert code == 0
        assert "lars" in text  # the 64-chip image-classification row

    def test_run_score_save_review_report(self, tmp_path):
        """The full CLI workflow on the fastest benchmark."""
        code, text = run_cli(
            "run", "recommendation", "--seeds", "3", "--score",
            "--save", str(tmp_path), "--submitter", "cli-test",
        )
        assert code == 0
        assert "scored time-to-train" in text
        assert "artifacts written" in text

        # Review: the saved submission has 3 runs but the rule demands 10 —
        # review must flag it (non-zero exit), proving review audits files.
        code, text = run_cli("review", str(tmp_path / "cli-test"))
        assert code == 1
        assert "run_count" in text

        # Report still renders (scoring needs only >= 3 runs).
        code, text = run_cli("report", str(tmp_path / "cli-test"))
        assert code == 0
        assert "recommendation" in text

    def test_run_score_needs_three(self):
        code, text = run_cli("run", "recommendation", "--seeds", "1", "--score")
        assert code == 2
        assert "at least 3" in text

    def test_run_with_override(self):
        code, text = run_cli(
            "run", "recommendation", "--seeds", "1",
            "--override", "base_lr=0.003",
        )
        assert code == 0
        assert "reached" in text


class TestCampaignCommand:
    def test_unknown_benchmark(self):
        code, text = run_cli("campaign", "frobnicate")
        assert code == 2
        assert "unknown benchmark" in text

    def test_jobs_must_be_positive(self):
        code, text = run_cli("campaign", "recommendation", "--jobs", "0")
        assert code == 2
        assert "--jobs" in text

    def test_resume_save_conflict(self, tmp_path):
        code, text = run_cli("campaign", "recommendation",
                             "--save", str(tmp_path / "a"),
                             "--resume", str(tmp_path / "b"))
        assert code == 2
        assert "implies" in text

    def test_campaign_save_then_resume(self, tmp_path):
        """A full campaign, then a resume that finds nothing left to run."""
        camp = tmp_path / "camp"
        bench_file = tmp_path / "BENCH_campaign.json"
        code, text = run_cli(
            "campaign", "recommendation", "--seeds", "3",
            "--save", str(camp), "--submitter", "cli-camp",
            "--bench", str(bench_file),
        )
        assert code == 0
        # Satellite: overriding seeds below the §3.2.2 requirement warns.
        assert "warning:" in text and "requires 10" in text
        assert "executed=3" in text and "resumed=0" in text
        assert "scores (olympic mean):" in text
        assert "artifacts written" in text
        assert (camp / "campaign_journal.json").is_file()

        import json
        payload = json.loads(bench_file.read_text())
        assert payload["schema"] == "repro-campaign-bench/1"
        assert payload["total_cells"] == 3

        code, text = run_cli("campaign", "recommendation", "--seeds", "3",
                             "--resume", str(camp), "--submitter", "cli-camp")
        assert code == 0
        assert "executed=0" in text and "resumed=3" in text
        # Scores are rebuilt from the journaled per-job result files.
        assert "scores (olympic mean):" in text

    def test_default_benchmarks_is_whole_suite(self):
        """No positional args plans the full Table 1 suite (parse only)."""
        args = build_parser().parse_args(["campaign"])
        assert args.benchmarks == []
        assert args.seeds is None and args.jobs == 1


class TestRunFailureExit:
    def test_run_failure_exits_nonzero_with_summary(self, monkeypatch):
        """Satellite: a crashed session must not exit 0."""
        from repro.core import runner as runner_mod

        def explode(self, benchmark, *, seed=0, **kwargs):
            raise runner_mod.RunFailure(
                benchmark=benchmark.spec.name, seed=seed,
                cause=ValueError("injected crash"), log_lines=[])

        monkeypatch.setattr(runner_mod.BenchmarkRunner, "run", explode)
        code, text = run_cli("run", "recommendation", "--seeds", "2")
        assert code == 1
        assert "run FAILED: benchmark=recommendation seed=0" in text
        assert "cause: ValueError: injected crash" in text


class TestObservabilityCommands:
    def test_run_trace_stats_trace_file(self, tmp_path):
        """run --trace emits a Chrome trace; stats and trace work on artifacts."""
        import json

        trace_path = tmp_path / "out.json"
        code, text = run_cli(
            "run", "recommendation", "--seeds", "1",
            "--trace", str(trace_path), "--save", str(tmp_path / "subs"),
            "--submitter", "obs-test",
        )
        assert code == 0
        assert "breakdown:" in text
        assert "trace written" in text

        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"init", "model_creation", "epoch", "eval",
                "train_step", "run:recommendation"} <= names
        assert all(e["ph"] in ("X", "i") for e in doc["traceEvents"])

        # stats: the per-phase decomposition table over the saved round.
        code, text = run_cli("stats", str(tmp_path / "subs" / "obs-test"))
        assert code == 0
        assert "recommendation" in text
        assert "Train" in text and "Eval" in text and "TTT" in text

        # trace: reconstruct a viewable trace from a published result file.
        result_file = next(
            (tmp_path / "subs" / "obs-test" / "results").rglob("result_0.txt"))
        out_file = tmp_path / "from-log.json"
        code, text = run_cli("trace", str(result_file), "-o", str(out_file))
        assert code == 0
        log_doc = json.loads(out_file.read_text())
        log_names = {e["name"] for e in log_doc["traceEvents"]}
        assert "run" in log_names and any(n.startswith("epoch") for n in log_names)

    def test_trace_on_non_log_file(self, tmp_path):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("no structured events here\n")
        code, text = run_cli("trace", str(bogus))
        assert code == 1
        assert "no :::MLLOG events" in text

    def test_stats_empty_submission(self, tmp_path):
        code, _ = run_cli(
            "run", "recommendation", "--seeds", "1", "--save", str(tmp_path),
            "--submitter", "empty-check",
        )
        assert code == 0
        # Point stats at a directory whose results were removed.
        import shutil
        shutil.rmtree(tmp_path / "empty-check" / "results")
        code, text = run_cli("stats", str(tmp_path / "empty-check"))
        assert code == 1
        assert "no runs" in text


class TestMonitorCommand:
    def test_monitor_after_campaign(self, tmp_path):
        code, _ = run_cli("campaign", "recommendation", "--seeds", "2",
                          "--save", str(tmp_path))
        assert code == 0
        code, text = run_cli("monitor", str(tmp_path))
        assert code == 0
        assert "recommendation/0" in text and "recommendation/1" in text
        assert "reached=2" in text
        assert "recent events" in text

    def test_monitor_events_hidden(self, tmp_path):
        run_cli("campaign", "recommendation", "--seeds", "2",
                "--save", str(tmp_path))
        code, text = run_cli("monitor", str(tmp_path), "--events", "0")
        assert code == 0
        assert "recent events" not in text

    def test_monitor_missing_directory(self, tmp_path):
        code, text = run_cli("monitor", str(tmp_path / "nope"))
        assert code == 1
        assert "no such campaign directory" in text
        assert "Traceback" not in text

    def test_monitor_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, text = run_cli("monitor", str(empty))
        assert code == 1
        assert "not a campaign directory" in text

    def test_alerts_missing_directory(self, tmp_path):
        code, text = run_cli("alerts", str(tmp_path / "nope"))
        assert code == 1
        assert "no such campaign directory" in text

    def test_alerts_rewrite_is_byte_identical(self, tmp_path):
        # The alert log is a pure function of the event streams: running
        # `repro alerts` twice must reproduce alerts.jsonl byte for byte.
        code, _ = run_cli("campaign", "recommendation", "--seeds", "2",
                          "--save", str(tmp_path))
        assert code == 0
        code, text = run_cli("alerts", str(tmp_path))
        assert code == 0  # healthy finished campaign: nothing firing
        assert "alert transition(s)" in text
        log_path = tmp_path / "alerts.jsonl"
        first = log_path.read_bytes()
        code, _ = run_cli("alerts", str(tmp_path))
        assert code == 0
        assert log_path.read_bytes() == first

    def test_alerts_fire_on_silent_stream(self, tmp_path):
        # A run that starts and then goes silent: evaluated long after its
        # last event, the stall and heartbeat-loss rules must both fire.
        import json as _json

        events_dir = tmp_path / "events"
        events_dir.mkdir(parents=True)
        (events_dir / "b_seed0.jsonl").write_text(
            _json.dumps({"name": "run_start", "time_s": 100.0, "pid": 1,
                         "args": {"benchmark": "b", "seed": 0}},
                        sort_keys=True) + "\n")
        code, text = run_cli("alerts", str(tmp_path), "--now", "1000",
                             "--json", "--no-write")
        assert code == 1  # firing alerts exit nonzero (scriptable gate)
        doc = _json.loads(text)
        rules = {a["rule"] for a in doc["firing"]}
        assert {"job_stall", "heartbeat_loss"} <= rules
        assert not (tmp_path / "alerts.jsonl").exists()  # --no-write

    def test_alerts_bad_rules_file(self, tmp_path):
        events_dir = tmp_path / "events"
        events_dir.mkdir(parents=True)
        (events_dir / "b_seed0.jsonl").write_text("")
        rules = tmp_path / "rules.json"
        rules.write_text('[{"rule": "nope"}]')
        code, text = run_cli("alerts", str(tmp_path), "--rules", str(rules))
        assert code == 2
        assert "unknown alert rule kind" in text

    def test_campaign_prints_the_shared_job_table(self, tmp_path):
        # Satellite: campaign completion output and `repro monitor` render
        # through the same path, so both carry the job-table header.
        code, campaign_text = run_cli("campaign", "recommendation",
                                      "--seeds", "2", "--save", str(tmp_path))
        assert code == 0
        _, monitor_text = run_cli("monitor", str(tmp_path))
        header = "Job"
        campaign_table = [l for l in campaign_text.splitlines()
                          if l.startswith(header) or l.startswith("recommendation/")]
        monitor_table = [l for l in monitor_text.splitlines()
                         if l.startswith(header) or l.startswith("recommendation/")]
        assert campaign_table and len(campaign_table) == len(monitor_table)
        # Identical rows up to the live heartbeat-age column.
        for c_row, m_row in zip(campaign_table[1:], monitor_table[1:]):
            assert c_row.split()[:7] == m_row.split()[:7]


class TestStatsSeries:
    def test_series_table_renders(self, tmp_path):
        run_cli("run", "recommendation", "--seeds", "1",
                "--save", str(tmp_path), "--submitter", "cli-test")
        code, text = run_cli("stats", str(tmp_path / "cli-test"), "--series")
        assert code == 0
        assert "eval_quality" in text
        assert "epoch_seconds" in text
        assert "Trend" in text


class TestBenchDiffCommand:
    BASELINE = "benchmarks/reports/BENCH_kernels.json"

    def test_self_compare_passes(self):
        code, text = run_cli("bench-diff", self.BASELINE, self.BASELINE)
        assert code == 0
        assert "0 regression(s)" in text

    def test_injected_regression_fails(self, tmp_path):
        import json as _json

        payload = _json.loads(open(self.BASELINE).read())
        payload["checks"]["bit_identical"] = False
        report = tmp_path / "fresh.json"
        report.write_text(_json.dumps(payload))
        code, text = run_cli("bench-diff", str(report), self.BASELINE)
        assert code == 1
        assert "REGRESSED" in text

    def test_schema_mismatch_is_usage_error(self):
        code, text = run_cli("bench-diff", self.BASELINE,
                             "benchmarks/reports/BENCH_comms.json")
        assert code == 2
        assert "schema mismatch" in text

    def test_bad_tolerance_flag(self):
        code, text = run_cli("bench-diff", self.BASELINE, self.BASELINE,
                             "--tolerance", "nonsense")
        assert code == 2
        assert "expected METRIC=REL_TOL" in text


class TestBenchDiffJson:
    BASELINE = "benchmarks/reports/BENCH_kernels.json"

    def test_json_self_compare(self):
        import json

        code, text = run_cli("bench-diff", "--json", self.BASELINE, self.BASELINE)
        assert code == 0
        payload = json.loads(text)
        assert payload["ok"] is True
        assert payload["regressions"] == []
        assert payload["schema_gated"] == "repro.bench_kernels.v1"
        assert all({"path", "direction", "baseline", "current", "ok"}
                   <= set(row) for row in payload["rows"])

    def test_json_regression_carries_attribution(self, tmp_path):
        import json

        baseline = json.loads(open(self.BASELINE).read())
        current = json.loads(open(self.BASELINE).read())
        current["checks"]["bit_identical"] = False
        # Inject a 10x conv slowdown so attribution has something to rank.
        current["kernels"]["conv2d_fwd_bwd"]["ns_per_op"] *= 10
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(current))
        code, text = run_cli("bench-diff", "--json", str(fresh), self.BASELINE)
        assert code == 1
        payload = json.loads(text)
        assert payload["ok"] is False
        assert "checks.bit_identical" in payload["regressions"]
        assert payload["attribution"][0]["op"] == "conv2d_fwd_bwd"


class TestProfileCommand:
    def test_profile_of_instrumented_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        code, _ = run_cli("run", "recommendation", "--seeds", "2",
                          "--save", str(tmp_path), "--submitter", "prof-test")
        assert code == 0
        code, text = run_cli("profile", str(tmp_path / "prof-test"))
        assert code == 0
        assert "2 profiled run(s)" in text
        assert "forward" in text and "Share" in text

    def test_profile_json_merges_runs(self, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_PROFILE", "sampled")
        run_cli("run", "recommendation", "--seeds", "1",
                "--save", str(tmp_path), "--submitter", "prof-test")
        code, text = run_cli("profile", str(tmp_path / "prof-test"), "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["schema"] == "repro.op_profile.v1"
        assert payload["steps_sampled"] >= 1

    def test_unprofiled_run_exits_one_with_hint(self, tmp_path):
        run_cli("run", "recommendation", "--seeds", "1",
                "--save", str(tmp_path), "--submitter", "plain")
        code, text = run_cli("profile", str(tmp_path / "plain"))
        assert code == 1
        assert "REPRO_PROFILE" in text

    def test_missing_path_is_usage_error(self, tmp_path):
        code, text = run_cli("profile", str(tmp_path / "nope"))
        assert code == 2
        assert "no such file or directory" in text


class TestAnalyzeCommand:
    def test_analyze_trace_file_and_folded_export(self, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = run_cli("run", "recommendation", "--seeds", "1",
                          "--trace", str(trace))
        assert code == 0
        folded = tmp_path / "folded.txt"
        code, text = run_cli("analyze", str(trace), "--folded", str(folded))
        assert code == 0
        assert "critical path" in text and "top spans" in text
        lines = folded.read_text().splitlines()
        assert lines and all(" " in l for l in lines)
        # Folded format: semicolon-joined stack, space, integer microseconds.
        stack, _, us = lines[0].rpartition(" ")
        assert stack and us.isdigit()

    def test_analyze_campaign_dir(self, tmp_path):
        code, _ = run_cli("campaign", "recommendation", "--seeds", "2",
                          "--save", str(tmp_path))
        assert code == 0
        code, text = run_cli("analyze", str(tmp_path))
        assert code == 0
        assert "run:recommendation" in text

    def test_analyze_json_deterministic(self, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        run_cli("run", "recommendation", "--seeds", "1", "--trace", str(trace))
        code, a = run_cli("analyze", str(trace), "--json")
        assert code == 0
        _, b = run_cli("analyze", str(trace), "--json")
        assert a == b
        assert json.loads(a)["schema"] == "repro.trace_analysis.v1"

    def test_analyze_garbage_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json")
        code, text = run_cli("analyze", str(bogus))
        assert code == 2
        assert "analyze:" in text

    def test_analyze_missing_path(self, tmp_path):
        code, _ = run_cli("analyze", str(tmp_path / "nope"))
        assert code == 2


class TestBenchProfileCommand:
    def test_smoke_gate_and_report(self, tmp_path):
        import json

        report = tmp_path / "BENCH_profile.json"
        # A 2-step/1-repeat loop is far too noisy to hold the real 5%
        # overhead bound (CI's profile-smoke job owns that); this test
        # checks the command plumbing, so the band is wide open.
        code, text = run_cli("bench-profile", "--smoke", "--steps", "2",
                             "--repeats", "1", "--max-overhead", "10.0",
                             "-o", str(report))
        assert code == 0
        assert "baseline (no telemetry):" in text
        assert "ops recorded (full mode): 5" in text
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.bench_profile.v1"
        assert payload["checks"]["bit_identical"] is True

    def test_impossible_overhead_bound_fails_gate(self, tmp_path):
        code, text = run_cli("bench-profile", "--smoke", "--steps", "2",
                             "--repeats", "1", "--max-overhead", "0.0",
                             "-o", "-")
        # Zero tolerance: any measured overhead at all trips the gate.
        if code == 1:
            assert "GATE FAILED" in text
        else:  # a lucky timing run can legitimately measure 0 overhead
            assert code == 0


class TestFailedRunTraceFlush:
    def test_failed_run_writes_partial_trace(self, tmp_path, monkeypatch):
        """Satellite: a crashed run still leaves a loadable trace file."""
        import json

        from repro.core import runner as runner_mod
        from repro.telemetry import RunTelemetry

        events = [{"name": "run", "ph": "X", "ts": 0, "dur": 7_000_000,
                   "pid": 0, "tid": 0, "args": {"aborted": True}},
                  {"name": "epoch", "ph": "X", "ts": 0, "dur": 5_000_000,
                   "pid": 0, "tid": 0,
                   "args": {"aborted": True, "error": "ValueError"}}]

        def explode(self, benchmark, *, seed=0, **kwargs):
            raise runner_mod.RunFailure(
                benchmark=benchmark.spec.name, seed=seed,
                cause=ValueError("injected crash"), log_lines=[],
                telemetry=RunTelemetry(trace_events=events))

        monkeypatch.setattr(runner_mod.BenchmarkRunner, "run", explode)
        trace = tmp_path / "trace.json"
        code, text = run_cli("run", "recommendation", "--seeds", "1",
                             "--trace", str(trace))
        assert code == 1
        assert "partial: run failed" in text
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"run", "epoch"} <= names
        assert any(e["args"].get("aborted") for e in doc["traceEvents"])
        # And the partial trace is analyzable like any other.
        code, text = run_cli("analyze", str(trace))
        assert code == 0
        assert "epoch" in text


class TestTable1Json:
    def test_machine_readable_listing(self):
        import json

        code, text = run_cli("table1", "--json")
        assert code == 0
        doc = json.loads(text)
        assert doc["schema"] == "repro.table1.v1"
        names = {row["name"] for row in doc["benchmarks"]}
        assert {"image_classification", "recommendation"} <= names
        for row in doc["benchmarks"]:
            assert {"name", "quality_threshold"} <= set(row)


class TestLoadgenCommand:
    def test_requires_benchmark_or_smoke(self):
        code, text = run_cli("loadgen")
        assert code == 2
        assert "--benchmark" in text

    def test_unknown_benchmark(self):
        code, text = run_cli("loadgen", "--benchmark", "frobnication")
        assert code == 2
        assert "unknown benchmark" in text

    def test_serves_all_scenarios_from_fresh_training(self, tmp_path):
        import json

        report = tmp_path / "BENCH_loadgen.json"
        code, text = run_cli(
            "loadgen", "--benchmark", "recommendation", "--queries", "16",
            "--timing", "virtual", "--train-epochs", "1", "--no-rerun",
            "-o", str(report))
        assert code == 0
        for scenario in ("single_stream", "server", "offline"):
            assert scenario in text
        assert "VALID" in text
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.bench_loadgen.v1"
        server = doc["benchmarks"]["recommendation"]["server"]
        assert server["max_qps"] > 0
        # No rerun pass -> determinism deliberately unproven.
        assert doc["checks"]["deterministic"] is None

    def test_saved_events_render_in_analyze(self, tmp_path):
        save = tmp_path / "serving"
        code, text = run_cli(
            "loadgen", "--benchmark", "recommendation", "--queries", "8",
            "--scenario", "offline", "--timing", "virtual",
            "--train-epochs", "1", "--no-rerun", "-o", "-",
            "--save", str(save))
        assert code == 0
        assert (save / "events" / "loadgen.jsonl").exists()
        code, text = run_cli("analyze", str(save))
        assert code == 0
        assert "serve:offline" in text or "query" in text
