"""ShardedDataParallel vs SynchronousDataParallel: §2.2.4 bit-identity.

The mathematical-equivalence requirement, enforced: every reduction
algorithm, backend, and worker count must reproduce the in-process
engine's losses and final parameter state bit-for-bit — including odd
parameter counts, non-power-of-two worker counts, and parameters whose
gradient never materializes.
"""

import numpy as np
import pytest

from repro.comms import ShardedDataParallel, process_backend_available
from repro.framework.functional import cross_entropy
from repro.framework.layers import Linear
from repro.framework.module import Module, Parameter
from repro.framework.optim import SGD
from repro.framework.tensor import Tensor
from repro.systems.dataparallel import SynchronousDataParallel
from repro.telemetry import Telemetry

ALGORITHMS = ["flat", "ring", "tree"]
BACKENDS = ["inline"] + (["process"] if process_backend_available() else [])


class _MLP(Module):
    """Five parameters (odd count): 2x Linear with bias, plus a lone scale."""

    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(6, 8, rng, activation="relu")
        self.fc2 = Linear(8, 4, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x)) * self.scale


class _DeadHead(Module):
    """One parameter is unreachable from the loss: its grad stays None."""

    def __init__(self, rng):
        super().__init__()
        self.live = Linear(6, 4, rng)
        self.dead = Parameter(np.ones(3))

    def forward(self, x: Tensor) -> Tensor:
        return self.live(x)


def _loss_fn(model, shard):
    x, y = shard
    return cross_entropy(model(Tensor(x)), y)


def _batches(num, batch, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal((batch, 6)), rng.integers(0, 4, batch))
            for _ in range(num)]


def _train(model_cls, engine_factory, batches):
    model = model_cls(np.random.default_rng(42))
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    engine = engine_factory(model, optimizer)
    try:
        losses = [engine.step(b) for b in batches]
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return losses, model.state_dict()


def _assert_same(ref, got):
    ref_losses, ref_state = ref
    got_losses, got_state = got
    assert got_losses == ref_losses  # float equality: same summation chain
    for key in ref_state:
        assert np.array_equal(ref_state[key], got_state[key]), key


class TestBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_matches_synchronous_engine(self, backend, algorithm, workers):
        batches = _batches(3, batch=12)
        ref = _train(_MLP, lambda m, o: SynchronousDataParallel(
            m, o, workers, _loss_fn), batches)
        got = _train(_MLP, lambda m, o: ShardedDataParallel(
            m, o, workers, _loss_fn, algorithm=algorithm, backend=backend,
            bucket_bytes=256), batches)
        _assert_same(ref, got)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_worker_degenerate_case(self, backend):
        batches = _batches(2, batch=8)
        ref = _train(_MLP, lambda m, o: SynchronousDataParallel(
            m, o, 1, _loss_fn), batches)
        got = _train(_MLP, lambda m, o: ShardedDataParallel(
            m, o, 1, _loss_fn, backend=backend), batches)
        _assert_same(ref, got)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_grad_none_param_stays_none(self, backend, algorithm):
        batches = _batches(2, batch=6)
        ref = _train(_DeadHead, lambda m, o: SynchronousDataParallel(
            m, o, 3, _loss_fn), batches)
        got = _train(_DeadHead, lambda m, o: ShardedDataParallel(
            m, o, 3, _loss_fn, algorithm=algorithm, backend=backend), batches)
        _assert_same(ref, got)

    def test_grad_none_installed_as_none(self):
        model = _DeadHead(np.random.default_rng(0))
        optimizer = SGD(model.parameters(), lr=0.1)
        engine = ShardedDataParallel(model, optimizer, 2, _loss_fn,
                                     backend="inline")
        engine.step(_batches(1, batch=4)[0])
        assert model.dead.grad is None
        assert model.live.weight.grad is None  # zeroed after the step
        engine.close()

    def test_bucket_size_does_not_change_results(self):
        batches = _batches(2, batch=12)
        runs = [
            _train(_MLP, lambda m, o: ShardedDataParallel(
                m, o, 3, _loss_fn, backend="inline", bucket_bytes=bb), batches)
            for bb in (64, 1024, 10**6)
        ]
        _assert_same(runs[0], runs[1])
        _assert_same(runs[0], runs[2])


class TestEngineBehaviour:
    def test_indivisible_batch_raises(self):
        model = _MLP(np.random.default_rng(0))
        engine = ShardedDataParallel(model, SGD(model.parameters(), lr=0.1),
                                     3, _loss_fn, backend="inline")
        with pytest.raises(ValueError, match="not divisible"):
            engine.step(_batches(1, batch=10)[0])
        engine.close()

    def test_bad_backend_and_algorithm_raise(self):
        model = _MLP(np.random.default_rng(0))
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError, match="unknown backend"):
            ShardedDataParallel(model, opt, 2, _loss_fn, backend="gpu")
        with pytest.raises(ValueError, match="unknown reduction algorithm"):
            ShardedDataParallel(model, opt, 2, _loss_fn, algorithm="nope")

    def test_step_after_close_raises(self):
        model = _MLP(np.random.default_rng(0))
        engine = ShardedDataParallel(model, SGD(model.parameters(), lr=0.1),
                                     2, _loss_fn, backend="inline")
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            engine.step(_batches(1, batch=4)[0])

    def test_telemetry_counters_flow(self):
        telemetry = Telemetry()
        model = _MLP(np.random.default_rng(0))
        engine = ShardedDataParallel(model, SGD(model.parameters(), lr=0.1),
                                     2, _loss_fn, backend="inline")
        with telemetry.activate():
            engine.step(_batches(1, batch=4)[0])
        engine.close()
        snap = telemetry.metrics.snapshot()
        n_elements = sum(p.data.size for p in model.parameters())
        assert snap["allreduce_elements"]["value"] == n_elements
        assert snap["allreduce_bytes"]["value"] == sum(
            p.data.size * p.data.itemsize for p in model.parameters())
        assert snap["comms_step_seconds"]["count"] == 1

    @pytest.mark.skipif(not process_backend_available(),
                        reason="fork start method unavailable")
    def test_process_backend_overlap_telemetry(self):
        telemetry = Telemetry()
        model = _MLP(np.random.default_rng(0))
        engine = ShardedDataParallel(model, SGD(model.parameters(), lr=0.1),
                                     2, _loss_fn, backend="process",
                                     bucket_bytes=256)
        with telemetry.activate():
            engine.step(_batches(1, batch=4)[0])
            engine.step(_batches(1, batch=4)[0])
        engine.close()
        snap = telemetry.metrics.snapshot()
        assert snap["comms_bytes_reduced"]["value"] == 2 * engine.layout.total_bytes
        assert snap["comms_bucket_latency_seconds"]["count"] == \
            2 * engine.layout.num_buckets
        assert 0.0 <= snap["comms_overlap_fraction"]["value"] <= 1.0

    @pytest.mark.skipif(not process_backend_available(),
                        reason="fork start method unavailable")
    def test_worker_failure_surfaces_in_parent(self):
        def exploding_loss(model, shard):
            raise RuntimeError("boom in worker")

        model = _MLP(np.random.default_rng(0))
        engine = ShardedDataParallel(model, SGD(model.parameters(), lr=0.1),
                                     2, exploding_loss, backend="process",
                                     timeout=20.0)
        try:
            with pytest.raises(RuntimeError, match="boom in worker"):
                engine.step(_batches(1, batch=4)[0])
            with pytest.raises(RuntimeError, match="broken"):
                engine.step(_batches(1, batch=4)[0])
        finally:
            engine.close()
