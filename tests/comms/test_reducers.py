"""Reducer schedules and the canonical-order determinism contract."""

import numpy as np
import pytest

from repro.comms.reducers import (
    PARENT,
    FlatReducer,
    RingReducer,
    TreeReducer,
    make_reducer,
    reduce_chunk,
)


def _chain_reference(contribs):
    """The canonical ascending-rank chain, computed the obvious way."""
    out = contribs[0].copy()
    for c in contribs[1:]:
        out += c
    return out


ALGORITHMS = ["flat", "ring", "tree"]


class TestSchedules:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    @pytest.mark.parametrize("n,workers", [(1, 1), (7, 2), (16, 3), (5, 4),
                                           (100, 5), (3, 8)])
    def test_chunks_partition_the_bucket(self, algo, n, workers):
        chunks = make_reducer(algo).chunks(n, workers)
        covered = []
        for c in chunks:
            assert 0 <= c.start <= c.stop <= n
            covered.extend(range(c.start, c.stop))
        assert covered == list(range(n))  # disjoint, ordered, complete

    def test_flat_is_parent_owned(self):
        chunks = FlatReducer().chunks(64, 4)
        assert len(chunks) == 1 and chunks[0].owner == PARENT

    def test_ring_assigns_one_chunk_per_rank(self):
        chunks = RingReducer().chunks(64, 4)
        assert [c.owner for c in chunks] == [0, 1, 2, 3]

    def test_tree_order_is_a_rank_permutation(self):
        for workers in range(1, 9):
            order = TreeReducer._tree_order(workers)
            assert sorted(order) == list(range(workers))

    def test_tree_order_interleaves_halves(self):
        # Depth-1 node (the midpoint) comes right after the root.
        assert TreeReducer._tree_order(4) == [0, 2, 3, 1]

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown reduction algorithm"):
            make_reducer("butterfly")


class TestCanonicalOrder:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    @pytest.mark.parametrize("n,workers", [(1, 1), (7, 3), (101, 2), (64, 4),
                                           (33, 5)])
    def test_reduce_matches_sequential_chain_bitwise(self, algo, n, workers):
        rng = np.random.default_rng(hash((algo, n, workers)) % 2**32)
        contribs = [rng.standard_normal(n).astype(np.float32)
                    for _ in range(workers)]
        out = np.empty(n, dtype=np.float32)
        make_reducer(algo).reduce(out, contribs)
        assert np.array_equal(out, _chain_reference(contribs))

    def test_algorithms_agree_bitwise(self):
        rng = np.random.default_rng(7)
        contribs = [rng.standard_normal(513) * 10.0 ** float(rng.integers(-3, 3))
                    for _ in range(4)]
        outs = []
        for algo in ALGORITHMS:
            out = np.empty(513)
            make_reducer(algo).reduce(out, contribs)
            outs.append(out)
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])

    def test_reduce_chunk_may_alias_rank_zero(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(32)
        b = rng.standard_normal(32)
        expected = a + b
        reduce_chunk(a, [a, b], 0, 32)
        assert np.array_equal(a, expected)
