"""bench-comms payload structure and core-aware gate policy."""

import pytest

from repro.comms.bench import BENCH_SCHEMA, bench_comms, gate_failures


@pytest.fixture(scope="module")
def smoke_payload():
    # Inline backend keeps module-scope benching cheap and process-free.
    return bench_comms(smoke=True, workers=[2], algorithms=["flat", "ring"],
                       steps=2, warmup=1, backend="inline")


class TestPayload:
    def test_schema_and_environment(self, smoke_payload):
        assert smoke_payload["schema"] == BENCH_SCHEMA
        assert smoke_payload["smoke"] is True
        assert smoke_payload["backend"] == "inline"
        assert smoke_payload["cpu_count"] >= 1
        assert smoke_payload["workload"]["steps"] == 2

    def test_rows_cover_the_sweep(self, smoke_payload):
        rows = smoke_payload["results"]
        assert {(r["workers"], r["algorithm"]) for r in rows} == \
            {(2, "flat"), (2, "ring")}
        for row in rows:
            assert row["step_seconds"] > 0
            assert row["baseline_step_seconds"] > 0
            assert row["speedup"] == pytest.approx(
                row["baseline_step_seconds"] / row["step_seconds"])
            assert row["bit_identical_vs_sync"] is True

    def test_checks_summarize_rows(self, smoke_payload):
        checks = smoke_payload["checks"]
        assert checks["bit_identical"] is True
        assert set(checks["best_speedup_by_workers"]) == {"2"}


class TestGates:
    def _payload(self, *, cpu_count, bit_identical=True, speedup=2.0):
        return {
            "schema": BENCH_SCHEMA,
            "cpu_count": cpu_count,
            "results": [{
                "workers": 2, "algorithm": "flat",
                "bucket_bytes": 256 * 1024, "backend": "process",
                "step_seconds": 1.0, "baseline_step_seconds": speedup,
                "speedup": speedup, "bit_identical_vs_sync": bit_identical,
            }],
            "checks": {
                "bit_identical": bit_identical,
                "best_speedup_by_workers": {"2": speedup},
            },
        }

    def test_clean_payload_passes(self):
        assert gate_failures(self._payload(cpu_count=4),
                             min_speedup=1.0) == []

    def test_divergence_is_always_fatal(self):
        # Even on a single-core host where the speedup gate is waived.
        failures = gate_failures(self._payload(cpu_count=1,
                                               bit_identical=False))
        assert any("diverge" in f for f in failures)

    def test_speedup_gate_enforced_with_enough_cores(self):
        failures = gate_failures(self._payload(cpu_count=4, speedup=0.6),
                                 min_speedup=1.0)
        assert any("speedup" in f for f in failures)

    def test_speedup_gate_waived_on_single_core(self):
        # One core cannot show parallel speedup; correctness still gated.
        assert gate_failures(self._payload(cpu_count=1, speedup=0.3),
                             min_speedup=1.0) == []
