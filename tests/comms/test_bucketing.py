"""Bucket layout determinism and the grad-hook bucket writer."""

import numpy as np
import pytest

from repro.comms.bucketing import BucketLayout, BucketWriter, assign_buckets
from repro.framework.module import Module, Parameter
from repro.framework.tensor import Tensor


def _params(*sizes, dtype=np.float64):
    return [Parameter(np.arange(s, dtype=dtype) + i)
            for i, s in enumerate(sizes)]


class TestAssignBuckets:
    def test_reverse_registration_order(self):
        params = _params(4, 4, 4)
        buckets = assign_buckets(params, bucket_bytes=10**6)
        # One bucket, filled back-to-front: the last registered parameter
        # (whose gradient finalizes first in backward) sits at offset 0.
        assert len(buckets) == 1
        assert [s.index for s in buckets[0].slots] == [2, 1, 0]
        assert buckets[0].slots[0].offset == 0

    def test_capacity_splits_buckets(self):
        params = _params(4, 4, 4)  # 32 bytes each at float64
        buckets = assign_buckets(params, bucket_bytes=64)
        assert [b.size for b in buckets] == [8, 4]

    def test_oversized_param_gets_own_bucket(self):
        params = _params(100, 2)
        buckets = assign_buckets(params, bucket_bytes=64)
        assert [b.size for b in buckets] == [2, 100]

    def test_dtype_change_forces_new_bucket(self):
        params = [Parameter(np.zeros(4, dtype=np.float32)),
                  Parameter(np.zeros(4, dtype=np.float64))]
        buckets = assign_buckets(params, bucket_bytes=10**6)
        assert len(buckets) == 2
        assert {b.dtype for b in buckets} == {np.dtype(np.float32),
                                              np.dtype(np.float64)}

    def test_layout_is_deterministic(self):
        params = _params(3, 17, 5, 64, 1)
        a = BucketLayout(params, 128)
        b = BucketLayout(params, 128)
        assert [(s.index, s.bucket, s.offset) for bk in a.buckets for s in bk.slots] == \
               [(s.index, s.bucket, s.offset) for bk in b.buckets for s in bk.slots]
        assert a.total_elements == sum(p.data.size for p in params)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError, match="positive"):
            assign_buckets(_params(4), bucket_bytes=0)


class _TwoHead(Module):
    """y = (x*w1).sum() or (x*w2).sum() — one head stays grad-less."""

    def __init__(self):
        super().__init__()
        self.w1 = Parameter(np.ones(4))
        self.w2 = Parameter(np.ones(4))

    def forward(self, x: Tensor, head: int) -> Tensor:
        w = self.w1 if head == 1 else self.w2
        return (x * w).sum()


class TestBucketWriter:
    def test_grads_land_in_slots_and_buckets_complete(self):
        model = _TwoHead()
        layout = BucketLayout(model.parameters(), bucket_bytes=16)  # 1 param per bucket
        buffers = layout.allocate()
        ready: list[int] = []
        writer = BucketWriter(layout, buffers, ready.append)

        writer.arm()
        x = Tensor(np.arange(4.0), requires_grad=True)
        loss = model(x, head=1) + model(x, head=2)
        loss.backward()
        missing = writer.flush_missing()

        assert missing == []
        assert sorted(ready) == [0, 1]
        for i, p in enumerate(model.parameters()):
            slot = layout.slots[i]
            assert np.array_equal(layout.slot_view(buffers, slot),
                                  p.grad.reshape(-1))

    def test_flush_missing_zero_fills_untouched_params(self):
        model = _TwoHead()
        layout = BucketLayout(model.parameters(), bucket_bytes=16)
        buffers = layout.allocate()
        for buf in buffers:
            buf[:] = 99.0  # stale garbage from a previous step
        ready: list[int] = []
        writer = BucketWriter(layout, buffers, ready.append)

        writer.arm()
        loss = model(Tensor(np.arange(4.0), requires_grad=True), head=1)
        loss.backward()
        missing = writer.flush_missing()

        assert [s.index for s in missing] == [1]  # w2 never got a grad
        assert sorted(ready) == [0, 1]  # flush completes the pending bucket
        assert np.array_equal(layout.slot_view(buffers, layout.slots[1]),
                              np.zeros(4))

    def test_unarmed_writer_ignores_backward(self):
        model = _TwoHead()
        layout = BucketLayout(model.parameters(), bucket_bytes=10**6)
        buffers = layout.allocate()
        ready: list[int] = []
        BucketWriter(layout, buffers, ready.append)  # never armed

        loss = model(Tensor(np.arange(4.0), requires_grad=True), head=1)
        loss.backward()
        assert ready == []
        assert np.array_equal(buffers[0], np.zeros_like(buffers[0]))

    def test_close_detaches_hooks(self):
        model = _TwoHead()
        layout = BucketLayout(model.parameters(), bucket_bytes=10**6)
        writer = BucketWriter(layout, layout.allocate())
        writer.close()
        writer.arm()
        loss = model(Tensor(np.arange(4.0), requires_grad=True), head=1)
        loss.backward()
        assert writer.flush_missing() != []  # nothing was written

    def test_buffer_size_mismatch_raises(self):
        model = _TwoHead()
        layout = BucketLayout(model.parameters(), bucket_bytes=10**6)
        with pytest.raises(ValueError, match="do not match layout"):
            BucketWriter(layout, [np.zeros(3)])
