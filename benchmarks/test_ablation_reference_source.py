"""Ablation: MiniGo reference-game source (pro self-play vs heuristic player).

DESIGN.md substitutes "human reference games" with self-play games of an
offline-trained pro network.  This ablation justifies that choice: an RL
agent's move-match against *pro* references rises with training, whereas
against the hand-written heuristic player's games it stays flat near its
starting level — the heuristic's move policy lies outside the self-play
attractor, so it would make a non-converging quality metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import no_grad
from repro.go import generate_reference_games
from repro.metrics import move_match_rate
from repro.suite import create_benchmark
from repro.suite.reinforcement import _reference_eval_arrays

ITERATIONS = 6


def match_against(session, planes, moves, masks) -> float:
    session.model.eval()
    with no_grad():
        logits, _ = session.model(planes)
    predicted = np.where(masks, logits.data, -np.inf).argmax(axis=1)
    return move_match_rate(predicted, moves)


def run_study():
    bench = create_benchmark("reinforcement")
    bench.prepare_data()  # pro corpus (cached)
    heuristic_games = generate_reference_games(8, board_size=5, seed=11)
    h_planes, h_moves, h_masks = _reference_eval_arrays(heuristic_games, 5)

    hp = bench.spec.resolve_hyperparameters(None)
    session = bench.create_session(seed=3, hyperparameters=hp)
    pro_curve, heur_curve = [], []
    pro_curve.append(match_against(session, bench.ref_planes, bench.ref_moves,
                                   bench.ref_legal_masks))
    heur_curve.append(match_against(session, h_planes, h_moves, h_masks))
    for it in range(ITERATIONS):
        session.run_epoch(it)
        pro_curve.append(match_against(session, bench.ref_planes, bench.ref_moves,
                                       bench.ref_legal_masks))
        heur_curve.append(match_against(session, h_planes, h_moves, h_masks))
    return pro_curve, heur_curve


@pytest.mark.benchmark(group="ablation")
def test_ablation_reference_source(benchmark, report):
    pro_curve, heur_curve = benchmark.pedantic(run_study, rounds=1, iterations=1)

    report.line("Ablation: MiniGo reference-game source")
    report.line(f"(one RL run, move match evaluated after each of {ITERATIONS} iterations)")
    report.line()
    rows = [[i, pro_curve[i], heur_curve[i]] for i in range(len(pro_curve))]
    report.table(["iteration", "vs pro games", "vs heuristic games"], rows,
                 widths=[11, 14, 20])
    report.line()
    pro_gain = max(pro_curve[1:]) - pro_curve[0]
    heur_gain = max(heur_curve[1:]) - heur_curve[0]
    report.line(f"best improvement over untrained: pro {pro_gain:+.3f}, "
                f"heuristic {heur_gain:+.3f}")

    # The design-justifying shape: training moves the pro-reference metric
    # substantially more than the heuristic-reference one.
    assert pro_gain > 0.03
    assert pro_gain > heur_gain
