"""§4.2.3: the cloud scale metric correlates with provider cost.

"a cloud scale metric was derived from: 1) number of host processors, 2)
amount of host memory, and 3) number and type of accelerators. We
empirically verified that cloud scale correlates closely with cost across
three major cloud providers."

We build synthetic price sheets for three providers — each prices the same
instance families with its own margins and noise — and verify the
correlation holds per provider.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cloud_scale, correlation_with_cost

# Instance family: (host processors, host memory GB, accelerators, type).
INSTANCE_FAMILIES = [
    (4, 16, 0, "none"),
    (8, 64, 1, "gpu-small"),
    (16, 128, 4, "gpu-small"),
    (32, 256, 8, "gpu-large"),
    (64, 512, 16, "gpu-large"),
    (32, 256, 8, "tpu-core"),
    (96, 768, 32, "tpu-core"),
    (64, 512, 16, "accel-x"),
]

# Per-provider pricing: $/hour ≈ base + rate * (true resource value) with
# provider-specific margins and idiosyncratic noise.
PROVIDERS = {
    "cloud-a": (0.20, 1.00, 0.05),
    "cloud-b": (0.35, 1.15, 0.08),
    "cloud-c": (0.10, 0.92, 0.10),
}


def build_price_sheets() -> dict[str, tuple[list[float], list[float]]]:
    rng = np.random.default_rng(42)
    sheets = {}
    for provider, (base, rate, noise) in PROVIDERS.items():
        scales, prices = [], []
        for procs, mem, accels, accel_type in INSTANCE_FAMILIES:
            scale = cloud_scale(procs, mem, accels, accel_type)
            true_value = 0.03 * procs + 0.002 * mem + accels * {
                "none": 0.0, "gpu-small": 0.9, "gpu-large": 2.6,
                "tpu-core": 1.9, "accel-x": 3.2,
            }[accel_type]
            price = base + rate * true_value * (1 + rng.normal(0, noise))
            scales.append(scale)
            prices.append(price)
        sheets[provider] = (scales, prices)
    return sheets


@pytest.mark.benchmark(group="sec423")
def test_sec423_cloud_scale(benchmark, report):
    sheets = benchmark.pedantic(build_price_sheets, rounds=1, iterations=1)

    report.line("Section 4.2.3 (reproduced): cloud scale vs provider price")
    report.line()
    rows = []
    correlations = {}
    for provider, (scales, prices) in sheets.items():
        corr = correlation_with_cost(scales, prices)
        correlations[provider] = corr
        rows.append([provider, len(scales), corr])
    report.table(["provider", "instances", "pearson r"], rows, widths=[12, 11, 11])
    report.line()
    report.line("paper: 'cloud scale correlates closely with cost across three major"
                " cloud providers'")

    # Paper claim: close correlation for every provider.
    for provider, corr in correlations.items():
        assert corr > 0.95, f"{provider}: r={corr:.3f}"
