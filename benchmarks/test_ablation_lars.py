"""Ablation: LARS vs momentum SGD at large batch (the v0.6 rule change).

§5 attributes part of the v0.5 → v0.6 progress to "rule changes such as
allowing the LARS optimizer for large ResNet batch sizes".  This bench
trains the image-classification benchmark at a large batch with both
optimizers (LR scaled linearly in both cases) and compares the quality
reached within a fixed epoch budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import linear_scaled_lr
from repro.suite import create_benchmark

LARGE_BATCH = 512
REFERENCE_BATCH = 64
EPOCHS = 8


def quality_curve(optimizer: str, seed: int = 0) -> list[float]:
    bench = create_benchmark("image_classification")
    bench.prepare_data()
    base_lr = bench.spec.default_hyperparameters["base_lr"]
    hp = bench.spec.resolve_hyperparameters(
        {
            "batch_size": LARGE_BATCH,
            "base_lr": linear_scaled_lr(base_lr, LARGE_BATCH, REFERENCE_BATCH),
            "optimizer": optimizer,
        }
    )
    session = bench.create_session(seed, hp)
    curve = []
    for epoch in range(EPOCHS):
        session.run_epoch(epoch)
        curve.append(session.evaluate())
    return curve


def run_study():
    return {"sgd": quality_curve("sgd"), "lars": quality_curve("lars")}


@pytest.mark.benchmark(group="ablation")
def test_ablation_lars(benchmark, report):
    curves = benchmark.pedantic(run_study, rounds=1, iterations=1)

    report.line(f"Ablation: LARS vs momentum SGD at batch {LARGE_BATCH} "
                f"(linearly scaled LR, {EPOCHS}-epoch budget)")
    report.line()
    rows = [[e + 1, curves["sgd"][e], curves["lars"][e]] for e in range(EPOCHS)]
    report.table(["epoch", "sgd top-1", "lars top-1"], rows, widths=[7, 11, 11])
    report.line()
    report.line(f"final: sgd={curves['sgd'][-1]:.3f} lars={curves['lars'][-1]:.3f}")

    # The v0.6 rationale: at large batch, LARS trains at least as well as
    # plain momentum SGD with the linearly-scaled LR.
    assert curves["lars"][-1] >= curves["sgd"][-1] - 0.02
    # Both must remain trainable (no divergence).
    assert curves["lars"][-1] > 0.5
