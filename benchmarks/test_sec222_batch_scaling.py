"""§2.2.2: minibatch size vs epochs-to-target (measured, not simulated).

"MLPerf v0.5 ResNet-50 takes around 64 epochs ... at a minibatch size of
4K, while a minibatch size of 16K can require over 80 epochs to reach the
same accuracy, resulting in a 30% increase in computation."

This bench measures the same interaction on the mini image-classification
benchmark by actually training it at a sweep of batch sizes (with the
linear LR-scaling rule the paper cites), then fits the critical-batch
model the round simulator uses — closing the loop between measured
convergence and the Figure 4/5 simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BenchmarkRunner
from repro.framework import linear_scaled_lr
from repro.suite import create_benchmark
from repro.systems import fit_critical_batch

BATCHES = [32, 64, 128, 256]
REFERENCE_BATCH = 64


def epochs_at_batch(batch_size: int, seeds=(0, 1)) -> float:
    bench = create_benchmark("image_classification")
    runner = BenchmarkRunner()
    base_lr = bench.spec.default_hyperparameters["base_lr"]
    overrides = {
        "batch_size": batch_size,
        "base_lr": linear_scaled_lr(base_lr, batch_size, REFERENCE_BATCH),
    }
    epochs = []
    for seed in seeds:
        result = runner.run(bench, seed=seed, hyperparameter_overrides=overrides)
        assert result.reached_target, f"batch {batch_size} seed {seed} failed to converge"
        epochs.append(result.epochs)
    return float(np.mean(epochs))


def run_sweep() -> dict[int, float]:
    return {b: epochs_at_batch(b) for b in BATCHES}


@pytest.mark.benchmark(group="sec222")
def test_sec222_batch_scaling(benchmark, report):
    measured = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    model = fit_critical_batch(measured)
    report.line("Section 2.2.2 (reproduced): batch size vs epochs-to-target")
    report.line("(image_classification, linear LR scaling, mean of 2 seeds)")
    report.line()
    report.table(
        ["batch", "epochs (measured)", "epochs (fit)"],
        [[b, e, model.epochs_to_target(b)] for b, e in measured.items()],
        widths=[8, 19, 14],
    )
    overhead = measured[BATCHES[-1]] / measured[BATCHES[0]] - 1.0
    report.line()
    report.line(
        f"computation overhead {BATCHES[0]} -> {BATCHES[-1]}: {overhead:+.0%} "
        f"(paper, 4K -> 16K: +30%)"
    )
    report.line(f"fitted critical-batch model: e_min={model.e_min:.1f} b_crit={model.b_crit:.0f}")

    # Paper shape: the largest batch needs at least as many epochs as the
    # smallest, with a real (>5%) computation overhead.
    assert measured[BATCHES[-1]] >= measured[BATCHES[0]]
    assert overhead > 0.05
