"""Ablation: convolution algorithm choice (im2col+GEMM vs direct loops).

§2.2.4 notes that math libraries choose among many mathematically
equivalent convolution algorithms ("direct convolutions, GEMM-based, as
well as transform based variants") that differ greatly in speed while
agreeing in results.  This bench demonstrates exactly that property for
the framework's two implementations.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.framework import Parameter, Tensor, conv2d, conv2d_naive


def make_workload():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Parameter(rng.normal(size=(32, 16, 3, 3)).astype(np.float32))
    b = Parameter(np.zeros(32, dtype=np.float32))
    return x, w, b


def time_algorithm(fn, repeats: int = 5) -> tuple[float, np.ndarray]:
    x, w, b = make_workload()
    out = fn(x, w, b, stride=1, pad=1)  # warmup + value capture
    start = time.perf_counter()
    for _ in range(repeats):
        fn(x, w, b, stride=1, pad=1)
    return (time.perf_counter() - start) / repeats, out.data


@pytest.mark.benchmark(group="ablation")
def test_ablation_conv_algorithms(benchmark, report):
    def study():
        gemm_time, gemm_out = time_algorithm(conv2d)
        naive_time, naive_out = time_algorithm(conv2d_naive)
        return gemm_time, naive_time, gemm_out, naive_out

    gemm_time, naive_time, gemm_out, naive_out = benchmark.pedantic(
        study, rounds=1, iterations=1
    )

    report.line("Ablation: convolution algorithm (mathematically equivalent, "
                "different speed)")
    report.line()
    report.table(
        ["algorithm", "fwd time (ms)", "speedup"],
        [
            ["im2col + GEMM", gemm_time * 1e3, f"{naive_time / gemm_time:.1f}x"],
            ["direct loops", naive_time * 1e3, "1.0x"],
        ],
        widths=[16, 15, 9],
    )
    max_diff = float(np.abs(gemm_out - naive_out).max())
    report.line()
    report.line(f"max |output difference|: {max_diff:.2e} (finite-precision only)")

    # Equivalent results, materially different speed.
    np.testing.assert_allclose(gemm_out, naive_out, rtol=1e-4, atol=1e-5)
    assert gemm_time < naive_time
