"""Ablation: ring all-reduce vs parameter server in the system simulator.

The round simulator assumes ring all-reduce.  This ablation shows why that
choice matters for the Figure 5 conclusions: under a centralized parameter
server, communication grows linearly with worker count and the simulated
fastest entries stop scaling far earlier.
"""

from __future__ import annotations

import pytest

from repro.systems import REFERENCE_FABRIC

PAYLOAD = 102e6  # ResNet-50-scale gradients
CHIP_COUNTS = [2, 8, 32, 128, 512, 2048]


def run_comparison():
    rows = []
    for chips in CHIP_COUNTS:
        ring = REFERENCE_FABRIC.allreduce_time(chips, PAYLOAD)
        ps = REFERENCE_FABRIC.parameter_server_time(chips, PAYLOAD, num_servers=4)
        rows.append((chips, ring, ps))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_allreduce(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    report.line("Ablation: gradient-aggregation cost model (ResNet-size payload)")
    report.line()
    report.table(
        ["chips", "ring all-reduce (ms)", "param server x4 (ms)"],
        [[c, r * 1e3, p * 1e3] for c, r, p in rows],
        widths=[8, 22, 22],
    )
    report.line()
    report.line("ring cost saturates at 2*S/B; parameter-server cost grows "
                "linearly with workers")

    # Ring saturates: the bandwidth term approaches 2*S/B, and only the
    # (small) per-hop latency term keeps growing — 64x more chips costs
    # well under 2x.
    ring = {c: r for c, r, _ in rows}
    assert ring[2048] < 1.6 * ring[32]
    # Parameter server deteriorates linearly: 2048 chips >> 32 chips.
    ps = {c: p for c, _, p in rows}
    assert ps[2048] > 10 * ps[32]
    # At small scale the simple scheme can win; at datacenter scale the
    # ring always does — the regime the Figure 5 entries live in.
    assert ps[2048] > ring[2048]
