"""Figure 4: v0.5 → v0.6 speedup of the fastest 16-chip entry.

"Between the two submission rounds, the best performance results submitted
on a 16-chip system increased by an average of 1.3 times despite the
higher quality targets."  The round simulator reproduces the mechanism:
matured software stacks and rule changes (LARS) versus raised targets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.systems import ROUND_V05, ROUND_V06, best_entry_at_scale, figure4_speedups


def run_figure4():
    speedups = figure4_speedups(chips=16)
    details = {
        name: (
            best_entry_at_scale(name, ROUND_V05, 16),
            best_entry_at_scale(name, ROUND_V06, 16),
        )
        for name in speedups
    }
    return speedups, details


@pytest.mark.benchmark(group="fig4")
def test_fig4_speedup(benchmark, report):
    speedups, details = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    report.line("Figure 4 (reproduced): fastest 16-chip entry speedup v0.5 -> v0.6")
    report.line("(simulated; raised v0.6 quality targets included)")
    report.line()
    rows = []
    for name, speedup in speedups.items():
        v05, v06 = details[name]
        rows.append([name, f"{v05.time_to_train_s:.0f}", f"{v06.time_to_train_s:.0f}",
                     v05.global_batch, v06.global_batch, f"{speedup:.2f}x"])
    report.table(
        ["benchmark", "v0.5 TTT(s)", "v0.6 TTT(s)", "v0.5 batch", "v0.6 batch", "speedup"],
        rows,
        widths=[26, 13, 13, 12, 12, 9],
    )
    mean_speedup = float(np.mean(list(speedups.values())))
    report.line()
    report.line(f"average speedup: {mean_speedup:.2f}x   (paper: ~1.3x)")

    # Paper shape: every benchmark faster, average in the ~1.3x region.
    assert all(s > 1.0 for s in speedups.values())
    assert 1.1 <= mean_speedup <= 1.5
