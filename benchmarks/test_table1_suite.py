"""Table 1: the benchmark suite, run end-to-end.

Regenerates the paper's Table 1 (benchmark / dataset / model / quality
threshold) with measured columns appended: the quality actually achieved,
epochs to target, and wall-clock time-to-train for one reference-default
run of every benchmark in the suite.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkRunner
from repro.suite import REGISTRY, create_benchmark


def run_suite() -> list[dict]:
    runner = BenchmarkRunner()
    rows = []
    for name in REGISTRY:
        bench = create_benchmark(name)
        result = runner.run(bench, seed=0)
        rows.append(
            {
                "benchmark": name,
                "dataset": bench.spec.dataset,
                "model": bench.spec.model,
                "metric": bench.spec.quality_metric,
                "threshold": bench.spec.quality_threshold,
                "achieved": result.quality,
                "epochs": result.epochs,
                "ttt_s": result.time_to_train_s,
                "reached": result.reached_target,
            }
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_suite(benchmark, report):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Table 1 (reproduced): the benchmark suite, trained to target")
    report.line()
    report.table(
        ["benchmark", "model", "metric", "threshold", "achieved", "epochs", "TTT(s)"],
        [
            [r["benchmark"], r["model"], r["metric"], r["threshold"],
             r["achieved"], r["epochs"], r["ttt_s"]]
            for r in rows
        ],
        widths=[26, 18, 26, 11, 10, 8, 9],
    )
    assert len(rows) == 7
    for r in rows:
        assert r["reached"], f"{r['benchmark']} did not reach its quality target"
        assert r["achieved"] >= r["threshold"]
