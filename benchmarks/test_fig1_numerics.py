"""Figure 1: validation error vs epoch under different weight representations.

The paper's Figure 1 (from Zhu et al., 2016) trains the same network with
different numeric formats and shows that the validation-error curves only
separate after some epochs, with the coarsest formats never matching full
precision.  This bench trains the image-classification benchmark under a
range of emulated formats for a fixed epoch budget and reports the error
curves.

Expected shape: float32 / bfloat16 / fixed8 end close together; fixed4 and
ternary separate visibly and end with higher validation error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import Tensor, no_grad
from repro.numerics import QuantizedWeights
from repro.suite import create_benchmark

FORMATS = ["float32", "bfloat16", "fixed8", "fixed4", "ternary"]
EPOCHS = 7


def train_with_format(fmt: str, seed: int = 0) -> list[float]:
    """Validation error per epoch for one numeric format."""
    bench = create_benchmark("image_classification")
    bench.prepare_data()
    hp = bench.spec.resolve_hyperparameters(None)
    session = bench.create_session(seed, hp)
    quantized = QuantizedWeights(session.model, fmt)
    errors = []
    for epoch in range(EPOCHS):
        session.model.train()
        for images, labels in session.loader:
            from repro.framework import functional as F

            logits = session.model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            session.model.zero_grad()
            loss.backward()
            quantized.apply_gradients(session.optimizer)
            session.scheduler.step()
        errors.append(1.0 - session.evaluate())
    return errors


def run_figure1() -> dict[str, list[float]]:
    return {fmt: train_with_format(fmt) for fmt in FORMATS}


@pytest.mark.benchmark(group="fig1")
def test_fig1_numerics(benchmark, report):
    curves = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    report.line("Figure 1 (reproduced): validation error by weight representation")
    report.line(f"(image_classification, fixed {EPOCHS}-epoch budget, seed 0)")
    report.line()
    header = ["epoch"] + FORMATS
    rows = [[e + 1] + [curves[f][e] for f in FORMATS] for e in range(EPOCHS)]
    report.table(header, rows, widths=[7] + [11] * len(FORMATS))

    final = {f: curves[f][-1] for f in FORMATS}
    report.line()
    report.line(f"final errors: { {k: round(v, 3) for k, v in final.items()} }")

    # Paper shape 1: high-precision formats track full precision closely.
    assert abs(final["bfloat16"] - final["float32"]) < 0.08
    assert abs(final["fixed8"] - final["float32"]) < 0.08
    # Paper shape 2: the coarsest representation never reaches the
    # full-precision error ("some numerical representations never match") —
    # several times worse, with a clear absolute gap.
    assert final["ternary"] > 2.0 * final["float32"]
    assert final["ternary"] > final["float32"] + 0.04
    # Paper shape 3: curves separate over training — the gap at the end is
    # larger than the gap after the first epoch for the coarse formats.
    early_gap = curves["fixed4"][0] - curves["float32"][0]
    late_gap = final["fixed4"] - final["float32"]
    assert late_gap > early_gap - 0.05
