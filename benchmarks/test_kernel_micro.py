"""Micro-benchmark: hot-path kernels under the workspace arena + fusion.

§3.2.1 makes time-to-train the headline metric, and §2.2.4 credits much of
the gap between implementations to math libraries choosing equivalent-but-
faster algorithms.  This bench measures that effect inside the framework
itself: each kernel is timed under the ``naive`` reference mode and under
``fused`` (arena-recycled scratch, ``out=`` GEMMs, fused conv/linear/relu
nodes), and asserts the two agree bit-for-bit — same math, different speed.

The payload also lands in ``benchmarks/reports/BENCH_kernels.json`` (the
same file ``repro bench-kernels`` writes), recording the per-kernel ns/op,
the steady-state arena hit rate, and steady-state bytes allocated.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.framework.microbench import bench_kernels, gate_failures

REPORT_PATH = Path(__file__).parent / "reports" / "BENCH_kernels.json"


@pytest.mark.benchmark(group="kernels")
def test_kernel_micro(benchmark, report):
    payload = benchmark.pedantic(
        lambda: bench_kernels(mode="fused"), rounds=1, iterations=1
    )

    report.line("Kernel micro-benchmarks: fused (arena) mode vs naive reference")
    report.line()
    rows = [
        [
            name,
            entry["naive_ns_per_op"] / 1e3,
            entry["ns_per_op"] / 1e3,
            entry["speedup"],
            "yes" if entry["bit_identical"] else "NO",
        ]
        for name, entry in payload["kernels"].items()
    ]
    report.table(
        ["kernel", "naive (us)", "fused (us)", "speedup", "bit-identical"],
        rows,
        widths=[22, 14, 14, 10, 15],
    )
    stats = payload["arena"]
    report.line()
    report.line(f"steady-state arena: hit_rate={stats['hit_rate']:.3f} "
                f"bytes_allocated={stats['steady_state_bytes_allocated']} "
                f"pooled_bytes={stats['pooled_bytes']}")

    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Correctness gates: equivalence and allocator recycling are machine-
    # independent, so they hard-fail here (speed ratios are only reported).
    assert gate_failures(payload, min_hit_rate=0.9) == []
    assert payload["arena"]["steady_state_bytes_allocated"] == 0
