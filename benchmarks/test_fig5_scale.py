"""Figure 5: growth in chips of the fastest overall entry, v0.5 → v0.6.

"Between the two submission rounds, the number of chips in a system used
to produce the best overall performance result increased by an average of
5.5 times" — driven by rule changes (LARS enabling large ResNet batches)
and maturing large-batch software.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.systems import figure5_scale_growth


@pytest.mark.benchmark(group="fig5")
def test_fig5_scale(benchmark, report):
    growth = benchmark.pedantic(figure5_scale_growth, rounds=1, iterations=1)

    report.line("Figure 5 (reproduced): chips in the fastest overall entry per round")
    report.line()
    rows = []
    ratios = []
    for name, (v05, v06) in growth.items():
        ratio = v06.num_chips / v05.num_chips
        ratios.append(ratio)
        rows.append([name, v05.num_chips, v06.num_chips, v05.global_batch,
                     v06.global_batch, f"{ratio:.1f}x"])
    report.table(
        ["benchmark", "v0.5 chips", "v0.6 chips", "v0.5 batch", "v0.6 batch", "growth"],
        rows,
        widths=[26, 12, 12, 12, 12, 8],
    )
    mean_ratio = float(np.mean(ratios))
    report.line()
    report.line(f"average chip-count growth: {mean_ratio:.1f}x   (paper: ~5.5x)")

    # Paper shape: every benchmark's fastest entry grew; average in the
    # several-x region.
    assert all(r > 1.0 for r in ratios)
    assert 3.0 <= mean_ratio <= 8.0
    # The headline driver: v0.6 fastest entries exploit much larger batches.
    for name, (v05, v06) in growth.items():
        assert v06.global_batch >= v05.global_batch, name
