"""§2.2.4: the two momentum-SGD formulations diverge under LR schedules.

"The two approaches are not mathematically identical if the learning rate
lr changes during training, which is a commonly used technique."  We train
the same model twice — once with the Caffe formulation (Eq. 1), once with
the PyTorch/TF formulation (Eq. 2) — under (a) a constant LR and (b) a
step-decayed LR, and measure the weight-space distance between the
trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import SGD, StepDecayLR, Tensor, functional as F
from repro.models import MiniResNet

STEPS = 40


def weight_distance(with_decay: bool) -> tuple[float, float]:
    """Train two momentum styles in lockstep; return (distance, scale)."""
    rng_data = np.random.default_rng(0)
    images = rng_data.normal(size=(32, 3, 16, 16)).astype(np.float32)
    labels = rng_data.integers(0, 10, size=32)

    models, optimizers, schedulers = [], [], []
    for style in ("caffe", "torch"):
        model = MiniResNet(10, np.random.default_rng(7), blocks_per_stage=1)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, momentum_style=style)
        sched = StepDecayLR(opt, base_lr=0.05, milestones=[15, 30] if with_decay else [], gamma=0.1)
        models.append(model)
        optimizers.append(opt)
        schedulers.append(sched)

    for _ in range(STEPS):
        for model, opt, sched in zip(models, optimizers, schedulers):
            loss = F.cross_entropy(model(Tensor(images)), labels)
            model.zero_grad()
            loss.backward()
            opt.step()
            sched.step()

    a = np.concatenate([p.data.reshape(-1) for p in models[0].parameters()])
    b = np.concatenate([p.data.reshape(-1) for p in models[1].parameters()])
    return float(np.linalg.norm(a - b)), float(np.linalg.norm(a))


def run_study():
    return {
        "constant_lr": weight_distance(with_decay=False),
        "decayed_lr": weight_distance(with_decay=True),
    }


@pytest.mark.benchmark(group="sec224")
def test_sec224_momentum(benchmark, report):
    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    report.line("Section 2.2.4 (reproduced): Caffe vs PyTorch/TF momentum")
    report.line(f"(MiniResNet, {STEPS} steps, identical seeds/data)")
    report.line()
    rows = []
    for schedule, (dist, scale) in results.items():
        rows.append([schedule, dist, dist / scale])
    report.table(["LR schedule", "weight distance", "relative"], rows, widths=[15, 17, 12])

    const_rel = results["constant_lr"][0] / results["constant_lr"][1]
    decay_rel = results["decayed_lr"][0] / results["decayed_lr"][1]
    report.line()
    report.line(f"constant LR: relative distance {const_rel:.2e} (identical up to fp noise)")
    report.line(f"decayed LR:  relative distance {decay_rel:.2e} (mathematically different)")

    # Paper claim: identical at constant LR, divergent once LR changes.
    assert const_rel < 1e-4
    assert decay_rel > 100 * max(const_rel, 1e-12)
