"""§3.2.2: the multi-run scoring rule stabilizes reported times.

"Five runs are required for vision tasks to ensure 90% of entries from the
same system were within 5%, and for all other tasks, ten runs ... within
10%. The fastest and slowest times are dropped, and the arithmetic mean of
the remaining runs is the result."

This bench runs the recommendation benchmark many times, applies the rule,
and measures how much the olympic mean tightens result dispersion compared
to single-run reporting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BenchmarkRunner, olympic_mean
from repro.metrics import dispersion, fraction_within
from repro.suite import create_benchmark

TOTAL_RUNS = 30
RUNS_PER_SCORE = 10  # recommendation is a non-vision task: 10 runs


def collect_times() -> list[float]:
    bench = create_benchmark("recommendation")
    runner = BenchmarkRunner()
    times = []
    for seed in range(TOTAL_RUNS):
        result = runner.run(bench, seed=seed)
        assert result.reached_target
        times.append(result.time_to_train_s)
    return times


@pytest.mark.benchmark(group="sec322")
def test_sec322_timing_samples(benchmark, report):
    times = benchmark.pedantic(collect_times, rounds=1, iterations=1)

    single = dispersion(times)
    scores = [
        olympic_mean(times[i : i + RUNS_PER_SCORE])
        for i in range(0, TOTAL_RUNS - RUNS_PER_SCORE + 1, RUNS_PER_SCORE)
    ]
    # Bootstrap scores from resampled run-sets for a tighter estimate.
    rng = np.random.default_rng(0)
    boot = [
        olympic_mean(list(rng.choice(times, RUNS_PER_SCORE, replace=False)))
        for _ in range(200)
    ]

    report.line("Section 3.2.2 (reproduced): effect of the multi-run scoring rule")
    report.line(f"(recommendation, {TOTAL_RUNS} independent runs)")
    report.line()
    report.table(
        ["estimator", "cv", "within 10% of median"],
        [
            ["single run", single.coefficient_of_variation, fraction_within(times, 0.10)],
            ["olympic mean of 10", dispersion(boot).coefficient_of_variation,
             fraction_within(boot, 0.10)],
        ],
        widths=[20, 12, 22],
    )
    report.line()
    report.line(f"single-run times (s): min={single.minimum:.3f} max={single.maximum:.3f}")
    report.line(f"scored results (disjoint 10-run sets): {[round(s, 3) for s in scores]}")

    # Paper shape: the rule's output is far more stable than single runs —
    # the olympic mean at least halves the coefficient of variation — and
    # on an unloaded machine satisfies the 90%-within-10% criterion used to
    # pick run counts (the threshold here allows a margin for CPU-scheduler
    # noise, which inflates wall-clock spread beyond the algorithmic
    # stochasticity the paper's rule addresses).
    assert dispersion(boot).coefficient_of_variation < 0.5 * single.coefficient_of_variation
    assert fraction_within(boot, 0.10) >= 2.0 * fraction_within(times, 0.10)
    assert fraction_within(boot, 0.10) >= 0.5
