"""Figure 2: run-to-run variation of epochs-to-target (NCF and MiniGo).

The paper's Figure 2 histograms epochs-to-target across repetitions with
identical hyperparameters except the seed, for NCF (top) and MiniGo
(bottom), showing substantial spread — the §2.2.3 stochasticity that
motivates the multi-run scoring rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BenchmarkRunner
from repro.metrics import dispersion, epochs_to_target_histogram
from repro.suite import create_benchmark

NUM_SEEDS = 10


def epochs_across_seeds(name: str) -> list[int]:
    bench = create_benchmark(name)
    runner = BenchmarkRunner()
    epochs = []
    for seed in range(NUM_SEEDS):
        result = runner.run(bench, seed=seed)
        assert result.reached_target, f"{name} seed {seed} did not converge"
        epochs.append(result.epochs)
    return epochs


def run_figure2() -> dict[str, list[int]]:
    return {
        "recommendation": epochs_across_seeds("recommendation"),
        "reinforcement": epochs_across_seeds("reinforcement"),
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_variance(benchmark, report):
    results = benchmark.pedantic(run_figure2, rounds=1, iterations=1)

    report.line("Figure 2 (reproduced): epochs-to-target across seeds")
    report.line(f"({NUM_SEEDS} repetitions each, identical HPs except the seed)")
    for name, epochs in results.items():
        hist = epochs_to_target_histogram(epochs)
        d = dispersion([float(e) for e in epochs])
        report.line()
        report.line(f"{name} (NCF analog)" if name == "recommendation"
                    else f"{name} (MiniGo analog)")
        report.table(["epochs", "runs"], [[k, v] for k, v in hist.items()], widths=[9, 6])
        report.line(f"  spread: min={d.minimum:.0f} max={d.maximum:.0f} "
                    f"mean={d.mean:.2f} cv={d.coefficient_of_variation:.2f}")

    # Paper shape: nontrivial run-to-run variation in both workloads.
    for name, epochs in results.items():
        assert len(set(epochs)) > 1, f"{name}: no seed-to-seed variation observed"
    # MiniGo was the paper's high-variance example; ours should vary too.
    rl = results["reinforcement"]
    assert max(rl) > min(rl)
