"""Figure 3: ResNet accuracy-vs-epoch curves for 5 seeds.

The paper's Figure 3 plots top-1 accuracy over epochs for 5 training runs
of the ResNet-50 reference differing only in seed, and observes that "the
early phase of training is marked by significantly more variability" —
the justification for placing quality thresholds late (§3.3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.suite import create_benchmark

NUM_SEEDS = 5
EPOCHS = 8


def accuracy_curves() -> list[list[float]]:
    bench = create_benchmark("image_classification")
    bench.prepare_data()
    hp = bench.spec.resolve_hyperparameters(None)
    curves = []
    for seed in range(NUM_SEEDS):
        session = bench.create_session(seed, hp)
        curve = []
        for epoch in range(EPOCHS):
            session.run_epoch(epoch)
            curve.append(session.evaluate())
        curves.append(curve)
    return curves


@pytest.mark.benchmark(group="fig3")
def test_fig3_accuracy_curves(benchmark, report):
    curves = benchmark.pedantic(accuracy_curves, rounds=1, iterations=1)
    arr = np.array(curves)  # (seeds, epochs)

    report.line("Figure 3 (reproduced): top-1 accuracy over epochs, 5 seeds")
    report.line(f"(image_classification, identical HPs except the seed; "
                f"target = {create_benchmark('image_classification').spec.quality_threshold})")
    report.line()
    header = ["epoch"] + [f"seed{s}" for s in range(NUM_SEEDS)] + ["spread"]
    rows = []
    for e in range(EPOCHS):
        spread = arr[:, e].max() - arr[:, e].min()
        rows.append([e + 1] + [arr[s, e] for s in range(NUM_SEEDS)] + [spread])
    report.table(header, rows, widths=[7] + [9] * NUM_SEEDS + [9])

    early_spread = float((arr[:, :EPOCHS // 2].max(0) - arr[:, :EPOCHS // 2].min(0)).mean())
    late_spread = float((arr[:, EPOCHS // 2 :].max(0) - arr[:, EPOCHS // 2 :].min(0)).mean())
    report.line()
    report.line(f"mean seed-spread: early epochs {early_spread:.3f}, late epochs {late_spread:.3f}")

    # Paper shape: early epochs show more cross-seed variability than late.
    assert early_spread > late_spread
    # All runs converge to the target region by the end.
    assert (arr[:, -1] >= 0.85).all()
