"""Shared infrastructure for the experiment benches.

Each bench regenerates one table or figure from the paper's evaluation and
writes its rows to ``benchmarks/reports/<experiment>.txt`` (in addition to
pytest-benchmark's timing capture), so EXPERIMENTS.md can be checked
against fresh output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


class ReportWriter:
    """Collects lines for one experiment and writes them on close."""

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        print(text)
        self.lines.append(text)

    def table(self, header: list[str], rows: list[list], widths: list[int] | None = None) -> None:
        widths = widths or [max(14, len(h) + 2) for h in header]
        fmt = "".join(f"{{:<{w}}}" for w in widths)
        self.line(fmt.format(*header))
        self.line("-" * sum(widths))
        for row in rows:
            self.line(fmt.format(*[_render(cell) for cell in row]))

    def flush(self) -> None:
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{self.name}.txt").write_text("\n".join(self.lines) + "\n")


def _render(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@pytest.fixture
def report(request):
    writer = ReportWriter(request.node.name.removeprefix("test_"))
    yield writer
    writer.flush()
