"""Numerics study: why quality measurement can't be skipped (Figure 1, §2.2.1).

Trains the same image classifier under several emulated weight formats and
prints the validation-error trajectory of each — demonstrating the paper's
point that "the accuracy difference between single precision training and
significantly lower precision training can only be seen in later epochs",
so microbenchmarks alone cannot certify an optimization.

Run:  python examples/numerics_study.py [epochs]
"""

from __future__ import annotations

import sys

from repro.framework import Tensor, functional as F
from repro.numerics import QuantizedWeights, available_formats
from repro.suite import create_benchmark

FORMATS = ["float32", "fixed8", "fixed4", "ternary"]


def train(fmt: str, epochs: int) -> list[float]:
    bench = create_benchmark("image_classification")
    bench.prepare_data()
    session = bench.create_session(0, bench.spec.resolve_hyperparameters(None))
    quantized = QuantizedWeights(session.model, fmt)
    errors = []
    for _ in range(epochs):
        session.model.train()
        for images, labels in session.loader:
            loss = F.cross_entropy(session.model(Tensor(images)), labels)
            session.model.zero_grad()
            loss.backward()
            quantized.apply_gradients(session.optimizer)
            session.scheduler.step()
        errors.append(1.0 - session.evaluate())
    return errors


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"Available formats: {available_formats()}")
    print(f"Training image_classification for {epochs} epochs per format...\n")
    curves = {}
    for fmt in FORMATS:
        curves[fmt] = train(fmt, epochs)
        print(f"{fmt:<10} validation error by epoch: "
              + " ".join(f"{e:.3f}" for e in curves[fmt]))
    print()
    full = curves["float32"][-1]
    for fmt in FORMATS[1:]:
        gap = curves[fmt][-1] - full
        verdict = "tracking full precision" if gap < 0.05 else "separated from full precision"
        print(f"{fmt:<10} final gap vs float32: {gap:+.3f}  ({verdict})")
    print()
    print("Note: this is exactly the paper's §2.2.1 point — with few epochs the"
          "\ncurves have not yet separated; run with 7+ epochs to watch ternary"
          "\ndiverge while fixed8 stays with float32 (see benchmarks/reports/"
          "\nfig1_numerics.txt for the full study).")


if __name__ == "__main__":
    main()
