"""A complete submission round: submit, review, borrow, report.

Walks the full §4 process with two fictional submitters:

1. ``acme`` submits a compliant Closed-division entry.
2. ``zeta`` submits a Closed entry that illegally changes a fixed
   hyperparameter; review flags it; zeta fixes it by *borrowing* acme's
   modifiable hyperparameters (§4.1) and resubmits.
3. The round publishes a per-benchmark results table (no summary score —
   by design, §4.2.4).

Run:  python examples/submission_round.py
"""

from __future__ import annotations

from repro.core import (
    BenchmarkRunner,
    Category,
    Division,
    Submission,
    SummaryScoreRefused,
    SystemDescription,
    SystemType,
    borrow_hyperparameters,
    build_report,
    review_submission,
    summary_score,
)
from repro.suite import create_benchmark

BENCHMARK = "recommendation"


def make_submission(submitter: str, runs) -> Submission:
    system = SystemDescription(
        submitter=submitter,
        system_name=f"{submitter}-node",
        system_type=SystemType.CLOUD if submitter == "zeta" else SystemType.ON_PREMISE,
        num_nodes=1,
        processors_per_node=2,
        processor_type="cpu-x",
        accelerators_per_node=4,
        accelerator_type="gpu-large",
        host_memory_gb=128.0,
        interconnect="100GbE",
        software_stack={"framework": "repro-0.1.0"},
    )
    sub = Submission(system, Division.CLOSED, Category.AVAILABLE,
                     code_url=f"https://example.com/{submitter}/mlperf")
    sub.add_runs(BENCHMARK, runs)
    return sub


def run_benchmark(overrides=None):
    bench = create_benchmark(BENCHMARK)
    runner = BenchmarkRunner()
    return bench.spec, [
        runner.run(bench, seed=seed, hyperparameter_overrides=overrides)
        for seed in range(bench.spec.required_runs)
    ]


def main() -> None:
    spec, acme_runs = run_benchmark()
    acme = make_submission("acme", acme_runs)

    # zeta "tunes" a fixed hyperparameter — illegal in the Closed division.
    _, zeta_runs = run_benchmark({"gmf_dim": 16})
    zeta = make_submission("zeta", zeta_runs)

    specs = {spec.name: spec}
    print("== Review pass 1 ==")
    for sub in (acme, zeta):
        print(review_submission(sub, specs))
        print()

    # zeta resubmits after review: adopts acme's modifiable HPs (§4.1
    # hyperparameter borrowing) and drops the illegal change.
    print("== zeta resubmits with borrowed hyperparameters ==")
    borrowed = borrow_hyperparameters(
        dict(spec.default_hyperparameters), acme_runs[0].hyperparameters, spec
    )
    overrides = {k: v for k, v in borrowed.items()
                 if v != spec.default_hyperparameters[k]}
    _, zeta_runs2 = run_benchmark(overrides or None)
    zeta2 = make_submission("zeta", zeta_runs2)
    print(review_submission(zeta2, specs))
    print()

    print("== Published results (per-benchmark; no summary score) ==")
    report = build_report([acme, zeta2])
    print(report.render())

    print()
    try:
        summary_score(report)
    except SummaryScoreRefused as refusal:
        print(f"summary_score() refused, as §4.2.4 requires:\n  {refusal}")


if __name__ == "__main__":
    main()
