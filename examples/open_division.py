"""Open-division entry: a custom architecture on the same dataset + metric.

§4.2.1: "The Open division is intended to encourage innovative solutions
... It allows submissions to use model architectures, optimization
procedures, and data augmentations different from the reference
implementations" — but the dataset and the quality metric must match.

This example builds a DAWNBench-style alternative entry for the
image-classification task: a compact all-conv network trained with Adam
and cosine LR instead of the reference MiniResNet + momentum SGD.  It
reuses the benchmark's dataset and top-1 metric, wraps the custom trainer
in the standard ``Benchmark`` interface, and times it with the same rules.

Run:  python examples/open_division.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BenchmarkRunner
from repro.datasets import random_crop_flip
from repro.framework import (
    Adam,
    BatchNorm2d,
    Conv2d,
    CosineLR,
    DataLoader,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
    Tensor,
    functional as F,
    no_grad,
)
from repro.metrics import top1_accuracy
from repro.suite import create_benchmark
from repro.suite.base import Benchmark, TrainingSession


class AllConvNet(Module):
    """The Open entry's architecture: plain conv stack, no residuals."""

    def __init__(self, num_classes: int, rng: np.random.Generator, width: int = 32):
        super().__init__()
        self.body = Sequential(
            Conv2d(3, width, 3, rng, padding=1, bias=False),
            BatchNorm2d(width),
            _Relu(),
            Conv2d(width, width, 3, rng, stride=2, padding=1, bias=False),
            BatchNorm2d(width),
            _Relu(),
            Conv2d(width, 2 * width, 3, rng, stride=2, padding=1, bias=False),
            BatchNorm2d(2 * width),
            _Relu(),
        )
        self.pool = GlobalAvgPool2d()
        self.head = Linear(2 * width, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.pool(self.body(x)))


class _Relu(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class OpenSession(TrainingSession):
    def __init__(self, data, seed: int, hp):
        rng = np.random.default_rng(seed)
        self.data = data
        self.model = AllConvNet(data.config.num_classes, rng)
        self.optimizer = Adam(self.model.parameters(), lr=hp["base_lr"])
        steps = max(len(data.train) // hp["batch_size"], 1)
        self.scheduler = CosineLR(self.optimizer, hp["base_lr"], total_steps=12 * steps)
        self.loader = DataLoader(data.train, hp["batch_size"], seed=seed,
                                 drop_last=True, augment=random_crop_flip)

    def run_epoch(self, epoch: int) -> None:
        self.model.train()
        for images, labels in self.loader:
            loss = F.cross_entropy(self.model(Tensor(images)), labels,
                                   label_smoothing=0.05)
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()
            self.scheduler.step()

    def evaluate(self) -> float:
        self.model.eval()
        images, labels = self.data.val.arrays
        with no_grad():
            scores = np.concatenate([
                self.model(Tensor(images[s : s + 256])).data
                for s in range(0, len(images), 256)
            ])
        return top1_accuracy(scores, labels)


class OpenImageClassification(Benchmark):
    """Same dataset, same metric, same threshold — different everything else."""

    def __init__(self):
        self.reference = create_benchmark("image_classification")
        # Inherit the reference spec: Open entries are compared on the same
        # task definition, and review checks dataset + metric equivalence.
        self.spec = self.reference.spec

    def prepare_data(self) -> None:
        self.reference.prepare_data()

    def create_session(self, seed: int, hyperparameters) -> TrainingSession:
        return OpenSession(self.reference.data, seed, hyperparameters)


def main() -> None:
    runner = BenchmarkRunner()

    closed = create_benchmark("image_classification")
    print("Closed division (reference MiniResNet + momentum SGD):")
    closed_result = runner.run(closed, seed=0)
    print(f"  quality={closed_result.quality:.3f} epochs={closed_result.epochs} "
          f"time={closed_result.time_to_train_s:.1f}s")

    print("Open division (AllConvNet + Adam + cosine LR + label smoothing):")
    open_bench = OpenImageClassification()
    open_result = runner.run(open_bench, seed=0)
    print(f"  quality={open_result.quality:.3f} epochs={open_result.epochs} "
          f"time={open_result.time_to_train_s:.1f}s")

    faster = "Open" if open_result.time_to_train_s < closed_result.time_to_train_s else "Closed"
    print(f"\nFaster to target: {faster} entry "
          f"({min(open_result.time_to_train_s, closed_result.time_to_train_s):.1f}s vs "
          f"{max(open_result.time_to_train_s, closed_result.time_to_train_s):.1f}s)")
    print("Both trained on the identical dataset to the identical quality "
          "metric and threshold — the §4.2.1 Open-division contract.")


if __name__ == "__main__":
    main()
