"""Extending the suite: a new benchmark through the public API.

§6 lists "commerce (e.g. time series)" among the areas the suite should
grow to cover.  This example adds exactly that — a synthetic time-series
forecasting benchmark — using nothing but the public ``Benchmark`` /
``TrainingSession`` interfaces, and runs it under the standard harness
(timing rules, logging, scoring).  It is the template a working group
would start from when proposing a new suite entry.

Task: one-step-ahead forecasting of noisy seasonal AR sequences with an
LSTM.  Quality: R^2 on held-out sequences (threshold 0.80).

Run:  python examples/custom_benchmark.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BenchmarkRunner, score_runs
from repro.framework import LSTM, Adam, Linear, Module, Tensor, no_grad
from repro.suite.base import Benchmark, BenchmarkSpec, TrainingSession

WINDOW = 16


def generate_series(n_series: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """Noisy seasonal AR(2) sequences, per-series random parameters."""
    t = np.arange(length)
    out = np.empty((n_series, length), dtype=np.float32)
    for i in range(n_series):
        period = rng.uniform(6, 14)
        phase = rng.uniform(0, 2 * np.pi)
        seasonal = np.sin(2 * np.pi * t / period + phase)
        ar = np.zeros(length)
        a1, a2 = rng.uniform(0.4, 0.7), rng.uniform(-0.3, 0.0)
        noise = rng.normal(0, 0.15, size=length)
        for k in range(2, length):
            ar[k] = a1 * ar[k - 1] + a2 * ar[k - 2] + noise[k]
        out[i] = (seasonal + ar).astype(np.float32)
    return out


def windows(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sliding (window -> next value) training pairs over all series."""
    xs, ys = [], []
    for row in series:
        for start in range(len(row) - WINDOW):
            xs.append(row[start : start + WINDOW])
            ys.append(row[start + WINDOW])
    return np.stack(xs)[..., None], np.array(ys, dtype=np.float32)


class Forecaster(Module):
    def __init__(self, rng: np.random.Generator, hidden: int = 32):
        super().__init__()
        self.lstm = LSTM(1, hidden, num_layers=1, rng=rng)
        self.head = Linear(hidden, 1, rng)

    def forward(self, x: np.ndarray) -> Tensor:
        seq = Tensor(np.swapaxes(x, 0, 1))  # (T, N, 1)
        out, _ = self.lstm(seq)
        return self.head(out[-1]).reshape(-1)


class _Session(TrainingSession):
    def __init__(self, data, seed: int, hp):
        rng = np.random.default_rng(seed)
        self.model = Forecaster(rng, hidden=hp["hidden"])
        self.optimizer = Adam(self.model.parameters(), lr=hp["base_lr"])
        self.train_x, self.train_y = data["train"]
        self.val_x, self.val_y = data["val"]
        self.batch_size = hp["batch_size"]
        self.seed = seed

    def run_epoch(self, epoch: int) -> None:
        rng = np.random.default_rng((self.seed, epoch))
        order = rng.permutation(len(self.train_x))
        self.model.train()
        for start in range(0, len(order) - self.batch_size + 1, self.batch_size):
            idx = order[start : start + self.batch_size]
            pred = self.model(self.train_x[idx])
            loss = ((pred - Tensor(self.train_y[idx])) ** 2).mean()
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()

    def evaluate(self) -> float:
        self.model.eval()
        with no_grad():
            pred = self.model(self.val_x).data
        residual = float(((pred - self.val_y) ** 2).sum())
        total = float(((self.val_y - self.val_y.mean()) ** 2).sum())
        return 1.0 - residual / total  # R^2


class TimeSeriesBenchmark(Benchmark):
    """The proposed 8th suite entry, defined entirely via the public API."""

    spec = BenchmarkSpec(
        name="time_series_forecasting",
        area="commerce",
        dataset="SyntheticSeasonalAR",
        model="LSTMForecaster",
        quality_metric="R^2",
        quality_threshold=0.80,
        required_runs=10,
        max_epochs=15,
        default_hyperparameters={"batch_size": 64, "base_lr": 3e-3, "hidden": 32},
        modifiable_hyperparameters=frozenset({"batch_size", "base_lr"}),
    )

    def __init__(self):
        self.data = None

    def prepare_data(self) -> None:
        if self.data is not None:
            return
        rng = np.random.default_rng(2020)
        train_series = generate_series(40, 80, rng)
        val_series = generate_series(10, 80, rng)
        self.data = {"train": windows(train_series), "val": windows(val_series)}

    def create_session(self, seed: int, hyperparameters) -> TrainingSession:
        if self.data is None:
            raise RuntimeError("call prepare_data() first")
        return _Session(self.data, seed, hyperparameters)


def main() -> None:
    bench = TimeSeriesBenchmark()
    runner = BenchmarkRunner()
    print(f"Proposed suite entry: {bench.spec.name} "
          f"({bench.spec.quality_metric} >= {bench.spec.quality_threshold})")
    runs = []
    for seed in range(3):  # full submissions need required_runs=10
        result = runner.run(bench, seed=seed)
        print(f"  seed {seed}: quality={result.quality:.3f} epochs={result.epochs} "
              f"ttt={result.time_to_train_s:.1f}s reached={result.reached_target}")
        runs.append(result)
    if all(r.reached_target for r in runs):
        score = score_runs(runs)
        print(f"provisional score (3 runs): {score.time_to_train_s:.2f}s")
        print("The harness needed zero changes — the Benchmark interface is "
              "the suite's extension point.")


if __name__ == "__main__":
    main()
