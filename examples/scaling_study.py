"""Scaling study: batch size, chips, and the v0.5 → v0.6 story.

Three connected analyses using the system simulator:

1. the §2.2.2 trade-off — epochs-to-target grows with batch size, so
   throughput gains don't translate 1:1 into time-to-train;
2. scale-out curves — simulated TTT vs chip count for ResNet under both
   rounds' rules, showing where v0.5's batch cap bites;
3. the Figure 4/5 summary — fastest-entry speedups at 16 chips and the
   chip-count growth of the fastest overall entries.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.systems import (
    ROUND_V05,
    ROUND_V06,
    SCALING_BENCHMARKS,
    best_entry_at_scale,
    figure4_speedups,
    figure5_scale_growth,
)


def batch_size_tradeoff() -> None:
    profile = SCALING_BENCHMARKS["image_classification"]
    print("1. Batch size vs epochs-to-target (ResNet profile, §2.2.2):")
    print(f"   {'batch':>8} {'epochs':>8} {'overhead':>10}")
    reference = 4096
    for batch in (1024, 4096, 16384, 65536):
        epochs = profile.convergence.epochs_to_target(batch)
        overhead = profile.convergence.computation_overhead(batch, reference)
        print(f"   {batch:>8} {epochs:>8.1f} {overhead:>+9.0%}")
    print("   (paper: 4K -> 16K is a ~30% computation increase)")
    print()


def scale_out_curves() -> None:
    print("2. Simulated ResNet time-to-train vs chips, both rounds:")
    print(f"   {'chips':>6} {'v0.5 TTT':>12} {'v0.6 TTT':>12}")
    for chips in (16, 64, 256, 512, 1024, 2048, 4096):
        row = [f"{chips:>6}"]
        for round_ in (ROUND_V05, ROUND_V06):
            try:
                entry = best_entry_at_scale("image_classification", round_, chips)
                row.append(f"{entry.time_to_train_s:>10.0f}s")
            except ValueError:
                row.append(f"{'infeasible':>11}")
        print("   " + " ".join(row))
    print("   (v0.5's 8K-batch rule makes very large systems infeasible;")
    print("    v0.6's LARS rule unlocks them)")
    print()


def round_comparison() -> None:
    print("3. Figure 4: fastest 16-chip entry speedup v0.5 -> v0.6:")
    speedups = figure4_speedups(16)
    for name, speedup in speedups.items():
        print(f"   {name:<26} {speedup:.2f}x")
    print(f"   average: {np.mean(list(speedups.values())):.2f}x  (paper: ~1.3x)")
    print()
    print("   Figure 5: chips in the fastest overall entry:")
    ratios = []
    for name, (v05, v06) in figure5_scale_growth().items():
        ratios.append(v06.num_chips / v05.num_chips)
        print(f"   {name:<26} {v05.num_chips:>5} -> {v06.num_chips:<5} "
              f"({ratios[-1]:.1f}x)")
    print(f"   average: {np.mean(ratios):.1f}x  (paper: ~5.5x)")


def main() -> None:
    batch_size_tradeoff()
    scale_out_curves()
    round_comparison()


if __name__ == "__main__":
    main()
