"""Quickstart: run one MLPerf-style benchmark end-to-end.

Trains the recommendation benchmark (the fastest in the suite) to its
quality target under the full harness — timing rules, structured logging,
and the multi-run scoring rule — then prints the scored result.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import BenchmarkRunner, Keys, MLLogger, score_runs
from repro.suite import create_benchmark, table1


def main() -> None:
    print("The benchmark suite (Table 1):")
    print(table1())
    print()

    benchmark = create_benchmark("recommendation")
    runner = BenchmarkRunner()

    # §3.2.2: non-vision tasks require 10 runs; fastest and slowest are
    # dropped and the rest averaged.
    print(f"Running {benchmark.spec.required_runs} timed runs of "
          f"'{benchmark.name}' (threshold: {benchmark.spec.quality_metric} >= "
          f"{benchmark.spec.quality_threshold}) ...")
    runs = []
    for seed in range(benchmark.spec.required_runs):
        result = runner.run(benchmark, seed=seed)
        status = "reached" if result.reached_target else "FAILED"
        print(f"  seed {seed}: {status} quality={result.quality:.3f} "
              f"epochs={result.epochs} time={result.time_to_train_s:.3f}s")
        runs.append(result)

    score = score_runs(runs, required_runs=benchmark.spec.required_runs)
    print()
    print(f"Scored time-to-train (olympic mean of {score.num_runs} runs): "
          f"{score.time_to_train_s:.3f}s")
    print(f"  dropped fastest: {score.dropped_fastest_s:.3f}s")
    print(f"  dropped slowest: {score.dropped_slowest_s:.3f}s")

    # Every run produced a structured MLPerf-style log.
    log = MLLogger.from_lines(runs[0].log_lines)
    print()
    print("First run's log (first 6 events):")
    for event in log.events[:6]:
        print(f"  {event.to_line()}")
    final_eval = log.find(Keys.EVAL_ACCURACY)[-1]
    print(f"  ... final eval_accuracy: {final_eval.value:.4f} "
          f"(epoch {final_eval.metadata['epoch_num']})")


if __name__ == "__main__":
    main()
