"""Model/optimizer checkpointing to ``.npz`` files.

Real MLPerf training sessions checkpoint for fault tolerance, and the
Closed division's equivalence requirements (identical initialization,
§4.2.1) make exact state capture a first-class need.  Checkpoints store
the model's parameters plus, optionally, optimizer slot variables
(momentum/Adam moments) keyed by parameter name, so training resumes
bit-exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module
from .optim import SGD, Adam, LARS, Optimizer

__all__ = ["save_checkpoint", "load_checkpoint"]

_MODEL_PREFIX = "model/"
_OPT_PREFIX = "opt/"


def _optimizer_slots(optimizer: Optimizer, name_by_id: dict[int, str]) -> dict[str, np.ndarray]:
    """Extract per-parameter slot variables from known optimizer types."""
    slots: dict[str, np.ndarray] = {}
    if isinstance(optimizer, (SGD, LARS)):
        for pid, velocity in optimizer._velocity.items():
            slots[f"velocity/{name_by_id[pid]}"] = velocity
    elif isinstance(optimizer, Adam):
        for pid, m in optimizer._m.items():
            name = name_by_id[pid]
            slots[f"m/{name}"] = m
            slots[f"v/{name}"] = optimizer._v[pid]
            slots[f"t/{name}"] = np.array(optimizer._t[pid])
    return slots


def _restore_optimizer_slots(optimizer: Optimizer, slots: dict[str, np.ndarray],
                             id_by_name: dict[str, int]) -> None:
    if isinstance(optimizer, (SGD, LARS)):
        for key, value in slots.items():
            kind, _, name = key.partition("/")
            if kind == "velocity":
                optimizer._velocity[id_by_name[name]] = value.copy()
    elif isinstance(optimizer, Adam):
        for key, value in slots.items():
            kind, _, name = key.partition("/")
            pid = id_by_name[name]
            if kind == "m":
                optimizer._m[pid] = value.copy()
            elif kind == "v":
                optimizer._v[pid] = value.copy()
            elif kind == "t":
                optimizer._t[pid] = int(value)


def save_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None,
                    metadata: dict | None = None) -> Path:
    """Write model (and optionally optimizer) state to ``path``.

    Returns the written path (with ``.npz`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload: dict[str, np.ndarray] = {}
    name_by_id: dict[int, str] = {}
    for name, param in model.named_parameters():
        payload[_MODEL_PREFIX + name] = param.data
        name_by_id[id(param)] = name
    if optimizer is not None:
        payload["opt_meta/lr"] = np.array(optimizer.lr)
        payload["opt_meta/step_count"] = np.array(optimizer.step_count)
        for key, value in _optimizer_slots(optimizer, name_by_id).items():
            payload[_OPT_PREFIX + key] = value
    for key, value in (metadata or {}).items():
        payload[f"meta/{key}"] = np.asarray(value)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None) -> dict[str, np.ndarray]:
    """Restore model (and optionally optimizer) state; returns metadata."""
    data = np.load(Path(path))
    state = {
        key[len(_MODEL_PREFIX):]: data[key]
        for key in data.files
        if key.startswith(_MODEL_PREFIX)
    }
    model.load_state_dict(state)
    if optimizer is not None:
        if "opt_meta/lr" in data.files:
            optimizer.lr = float(data["opt_meta/lr"])
            optimizer.step_count = int(data["opt_meta/step_count"])
        id_by_name = {name: id(p) for name, p in model.named_parameters()}
        slots = {
            key[len(_OPT_PREFIX):]: data[key]
            for key in data.files
            if key.startswith(_OPT_PREFIX)
        }
        _restore_optimizer_slots(optimizer, slots, id_by_name)
    return {key[len("meta/"):]: data[key] for key in data.files if key.startswith("meta/")}
