"""Stateless differentiable functions built on :class:`~repro.framework.tensor.Tensor`.

Losses and activations used across the benchmark suite.  Everything here is
expressed either directly as a primitive with a custom adjoint (when that is
clearly more numerically stable, e.g. ``log_softmax``) or as a composition of
``Tensor`` primitives.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "gelu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "smooth_l1_loss",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT/GPT)."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = (x + (x * x * x) * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def _logsumexp(data: np.ndarray, axis: int) -> np.ndarray:
    m = data.max(axis=axis, keepdims=True)
    return m + np.log(np.exp(data - m).sum(axis=axis, keepdims=True))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax with a fused adjoint."""
    result = x.data - _logsumexp(x.data, axis)

    def backward(out: Tensor) -> None:
        softmax_vals = np.exp(out.data)
        g = out.grad
        x._accumulate(g - softmax_vals * g.sum(axis=axis, keepdims=True))

    return Tensor._make(result, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    result = exp / exp.sum(axis=axis, keepdims=True)

    def backward(out: Tensor) -> None:
        s, g = out.data, out.grad
        x._accumulate(s * (g - (g * s).sum(axis=axis, keepdims=True)))

    return Tensor._make(result, (x,), backward)


def nll_loss(
    log_probs: Tensor,
    targets: np.ndarray,
    *,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Negative log-likelihood over class-index targets.

    ``log_probs`` has shape ``(N, C)`` (flatten sequence dims first); entries
    whose target equals ``ignore_index`` contribute nothing to loss or count.
    """
    targets = np.asarray(targets).reshape(-1)
    n = targets.shape[0]
    if log_probs.ndim != 2 or log_probs.shape[0] != n:
        raise ValueError(f"log_probs shape {log_probs.shape} incompatible with {n} targets")
    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones(n, dtype=bool)
    count = max(int(valid.sum()), 1)
    safe_targets = np.where(valid, targets, 0)
    picked = log_probs.data[np.arange(n), safe_targets] * valid
    if reduction == "mean":
        value = -picked.sum() / count
        scale = 1.0 / count
    elif reduction == "sum":
        value = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(out: Tensor) -> None:
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), safe_targets] = -(valid.astype(grad.dtype)) * scale * out.grad
        log_probs._accumulate(grad)

    return Tensor._make(np.asarray(value, dtype=log_probs.dtype), (log_probs,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    *,
    ignore_index: int | None = None,
    label_smoothing: float = 0.0,
    reduction: str = "mean",
) -> Tensor:
    """Softmax cross-entropy over class-index targets with optional smoothing."""
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logits.shape[-1])
    hard = nll_loss(flat, targets, ignore_index=ignore_index, reduction=reduction)
    if label_smoothing <= 0.0:
        return hard
    # Smooth term: uniform distribution over classes.
    targets_flat = np.asarray(targets).reshape(-1)
    valid = (
        targets_flat != ignore_index if ignore_index is not None else np.ones_like(targets_flat, bool)
    )
    count = max(int(valid.sum()), 1)
    mask = Tensor(valid.astype(logits.dtype)[:, None])
    uniform = -(flat * mask).sum() * (1.0 / (count * logits.shape[-1]))
    return hard * (1.0 - label_smoothing) + uniform * label_smoothing


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, *, weight: np.ndarray | None = None, reduction: str = "mean"
) -> Tensor:
    """Stable BCE on logits: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    targets = np.asarray(targets, dtype=logits.dtype)
    x = logits.data
    loss_data = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    if weight is not None:
        loss_data = loss_data * weight

    def backward(out: Tensor) -> None:
        sig = 1.0 / (1.0 + np.exp(-x))
        grad = (sig - targets)
        if weight is not None:
            grad = grad * weight
        if reduction == "mean":
            grad = grad / x.size
        logits._accumulate(grad * out.grad)

    if reduction == "mean":
        value = loss_data.mean()
    elif reduction == "sum":
        value = loss_data.sum()
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    return Tensor._make(np.asarray(value, dtype=logits.dtype), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=pred.dtype))
    sq = diff * diff
    return sq.mean() if reduction == "mean" else sq.sum()


def smooth_l1_loss(pred: Tensor, target: np.ndarray, beta: float = 1.0, reduction: str = "mean") -> Tensor:
    """Huber-style loss used by detection box-regression heads."""
    target = np.asarray(target, dtype=pred.dtype)
    diff = pred - Tensor(target)
    absd = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear = absd - 0.5 * beta
    loss = Tensor.where(absd.data < beta, quadratic, linear)
    return loss.mean() if reduction == "mean" else loss.sum()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
