"""Size-keyed scratch-buffer arena for the framework's hot kernels.

Time-to-train (§3.2.1) is dominated by what happens inside the training
step, and on a NumPy substrate a large share of that is *allocator traffic*:
every ``conv2d`` forward/backward conjures multi-megabyte im2col columns,
GEMM outputs, and gradient scratch with ``np.empty`` — fresh pages each
time, faulted in and thrown away.  A :class:`Workspace` recycles those
buffers across steps: kernels *borrow* (:meth:`Workspace.take`) and
*release* scratch, so the steady-state training loop allocates almost
nothing.

Design:

- **Size-keyed pooling.**  Free buffers are flat 1-D arrays pooled by
  ``(dtype, element-count)``; :meth:`take` hands out a reshaped view.  A
  ``(64, 27, 144)`` borrow can be satisfied by a released ``(64*27*144,)``
  buffer regardless of its previous shape.
- **Alias safety.**  A buffer is either in the free pool or out on loan —
  never both — so two live borrows can never alias.  Double release and
  releasing a foreign array raise.
- **Leak tolerance.**  Borrows that die without being released (e.g. a
  backward closure that never ran because the graph was dropped) are
  reclaimed into the pool via a weakref callback, so kernels may hold
  scratch for the lifetime of an autograd closure without leaking.
- **Per-thread.**  :func:`arena` returns a thread-local instance; kernels
  running on different threads never contend or alias.
- **Telemetry-counted.**  Every take increments ``kernel_arena_hits`` /
  ``kernel_arena_misses`` (and ``kernel_arena_bytes_allocated`` on a miss)
  on the ambient :class:`~repro.telemetry.metrics.MetricsRegistry`, so
  traces show allocation pressure per phase;
  :func:`record_arena_gauges` snapshots hit rate and pool size as gauges.

The arena is engaged by the ``reuse`` and ``fused`` kernel modes (see
:mod:`repro.framework.config`); ``naive`` mode never touches it.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import Any, Iterable

import numpy as np

__all__ = ["Workspace", "arena", "record_arena_gauges"]


class Workspace:
    """A borrow/release arena of reusable NumPy scratch buffers."""

    def __init__(self, name: str = "default"):
        self.name = name
        # (dtype.str, size) -> list of free flat buffers (LIFO: warmest first).
        self._pool: dict[tuple[str, int], list[np.ndarray]] = {}
        # id(borrowed view) -> (key, flat buffer, weakref to view).
        self._live: dict[int, tuple[tuple[str, int], np.ndarray, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_allocated = 0
        # Memory accounting: bytes_requested counts every borrow whether
        # or not it hit the pool, so requested - allocated is the reuse
        # saving; live/peak track outstanding borrow footprint.
        self.bytes_requested = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- borrow / release ----------------------------------------------------
    def take(self, shape: tuple[int, ...] | int, dtype=np.float32) -> np.ndarray:
        """Borrow a buffer of ``shape``/``dtype`` (contents are arbitrary).

        The returned array must be handed back with :meth:`release` (or
        simply dropped — dead borrows are reclaimed automatically).
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        key = (dt.str, size)
        free = self._pool.get(key)
        if free:
            flat = free.pop()
            self.hits += 1
            _metrics_counter("kernel_arena_hits").inc()
        else:
            flat = np.empty(size, dtype=dt)
            self.misses += 1
            self.bytes_allocated += flat.nbytes
            _metrics_counter("kernel_arena_misses").inc()
            _metrics_counter("kernel_arena_bytes_allocated").inc(flat.nbytes)
        self.bytes_requested += flat.nbytes
        self.live_bytes += flat.nbytes
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        view = flat.reshape(shape)
        borrow_id = id(view)
        ref = weakref.ref(view, lambda wr, b=borrow_id: self._reclaim(b, wr))
        self._live[borrow_id] = (key, flat, ref)
        return view

    def release(self, buf: np.ndarray) -> None:
        """Return a borrowed buffer to the pool.

        Raises ``ValueError`` for arrays that are not live borrows of this
        workspace (including double releases).
        """
        entry = self._live.pop(id(buf), None)
        if entry is None:
            raise ValueError(
                f"workspace {self.name!r}: release() of an array that is not "
                "a live borrow (double release, or foreign buffer)"
            )
        key, flat, _ref = entry
        self.live_bytes -= flat.nbytes
        self._pool.setdefault(key, []).append(flat)

    def release_all(self, bufs: Iterable[np.ndarray]) -> None:
        for buf in bufs:
            self.release(buf)

    @contextlib.contextmanager
    def borrow(self, shape, dtype=np.float32):
        """``with ws.borrow((n, k)) as buf: ...`` — release on exit."""
        buf = self.take(shape, dtype)
        try:
            yield buf
        finally:
            self.release(buf)

    def _reclaim(self, borrow_id: int, wr) -> None:
        """Weakref callback: a borrowed view died unreleased — repool it."""
        entry = self._live.get(borrow_id)
        if entry is not None and entry[2] is wr:
            del self._live[borrow_id]
            key, flat, _ = entry
            self.live_bytes -= flat.nbytes
            self._pool.setdefault(key, []).append(flat)

    # -- introspection -------------------------------------------------------
    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def pooled_bytes(self) -> int:
        return sum(b.nbytes for free in self._pool.values() for b in free)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def bytes_saved(self) -> int:
        """Allocator traffic avoided by reuse: requested minus allocated."""
        return self.bytes_requested - self.bytes_allocated

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "bytes_allocated": self.bytes_allocated,
            "bytes_requested": self.bytes_requested,
            "bytes_saved": self.bytes_saved,
            "live_bytes": self.live_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "pooled_bytes": self.pooled_bytes,
            "live": self.live_count,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss/bytes counters (pool contents are kept).

        The live-borrow footprint is state, not a counter — it survives,
        and the peak restarts from the current live level.
        """
        self.hits = 0
        self.misses = 0
        self.bytes_allocated = 0
        self.bytes_requested = 0
        self.peak_live_bytes = self.live_bytes

    def clear(self) -> None:
        """Drop every pooled buffer and forget live-borrow tracking.

        Intended for test/bench isolation when no borrows are outstanding;
        releasing a borrow taken before ``clear()`` raises.
        """
        self._pool.clear()
        self._live.clear()
        self.live_bytes = 0
        self.peak_live_bytes = 0


_LOCAL = threading.local()


def arena() -> Workspace:
    """The calling thread's workspace (created on first use)."""
    ws = getattr(_LOCAL, "workspace", None)
    if ws is None:
        ws = Workspace(name=f"thread-{threading.get_ident()}")
        _LOCAL.workspace = ws
    return ws


def _metrics_counter(name: str):
    # Imported lazily to keep framework -> telemetry a soft dependency.
    from ..telemetry import current_metrics

    return current_metrics().counter(name)


def record_arena_gauges(metrics=None) -> dict[str, float]:
    """Publish the arena's current stats as ``kernel_*`` telemetry gauges.

    Called by the suite's ``run_epoch`` implementations at epoch boundaries
    so per-run telemetry shows allocation pressure alongside throughput.
    The same snapshot is published as an ``arena_stats`` event on the
    ambient bus, so live streams carry allocation pressure too.  Returns
    the stats dict (also handy for benches).
    """
    ws = arena()
    if metrics is None:
        from ..telemetry import current_metrics

        metrics = current_metrics()
    stats = ws.stats()
    metrics.gauge("kernel_arena_hit_rate").set(stats["hit_rate"])
    metrics.gauge("kernel_arena_live_borrows").set(stats["live"])
    metrics.gauge("kernel_arena_pooled_bytes").set(stats["pooled_bytes"])
    metrics.gauge("kernel_arena_peak_live_bytes").set(stats["peak_live_bytes"])
    metrics.gauge("kernel_arena_bytes_saved").set(stats["bytes_saved"])
    from ..telemetry import current_events

    current_events().publish("arena_stats", arena=ws.name, **stats)
    return stats
