"""Micro-benchmarks for the framework hot path (``repro bench-kernels``).

DAWNBench-style timing breakdowns argue that end-to-end numbers need
per-kernel decompositions to be actionable; this module times the kernels
the §3.2.1 timed region actually spends its wall clock in — conv2d
forward+backward, the fused linear, pooling, the SGD update, and one
``DataLoader`` epoch — under the active kernel mode *and* under ``naive``,
so every report carries its own baseline.

Each benchmark is a closure that runs one full forward+backward (or one
optimizer step / one epoch); timing takes the *minimum* over repeats after
a warmup, the standard micro-bench estimator for the noise-free cost.
Arena statistics are reset after warmup, so the reported hit rate and
bytes-allocated are steady-state numbers: a healthy arena shows a hit rate
near 1.0 and zero steady-state allocation.

The same closures double as the bit-identity oracle: ``--smoke`` (used in
CI) re-runs every kernel in ``naive`` vs the active mode and fails if any
output or gradient differs by even one bit, or if the steady-state conv
hit rate drops below 90%.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from .config import kernel_mode, use_kernel_mode
from .conv import avg_pool2d, max_pool2d
from .data import ArrayDataset, DataLoader
from .fused import conv2d_bias_relu, linear_bias_act
from .module import Parameter
from .optim import SGD
from .tensor import Tensor
from .workspace import arena

__all__ = ["bench_kernels", "gate_failures", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.bench_kernels.v1"

# A "step" returns the arrays that must be bit-identical across modes.
StepFn = Callable[[], tuple[np.ndarray, ...]]


def _time_ns(step: StepFn, repeats: int, warmup: int) -> float:
    for _ in range(warmup):
        step()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        step()
        t1 = time.perf_counter_ns()
        best = min(best, float(t1 - t0))
    return best


def _conv_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((8, 8, 16, 16)).astype(np.float32)
    w0 = (rng.standard_normal((16, 8, 3, 3)) * 0.1).astype(np.float32)
    b0 = rng.standard_normal(16).astype(np.float32)
    g0: np.ndarray | None = None

    def step() -> tuple[np.ndarray, ...]:
        nonlocal g0
        x = Tensor(x0, requires_grad=True)
        w = Parameter(w0)
        b = Parameter(b0)
        out = conv2d_bias_relu(x, w, b, stride=1, pad=1)
        if g0 is None:
            g0 = rng.standard_normal(out.shape).astype(np.float32)
        out.backward(g0)
        return out.data, x.grad, w.grad, b.grad

    return step


def _linear_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((128, 256)).astype(np.float32)
    w0 = (rng.standard_normal((256, 256)) * 0.05).astype(np.float32)
    b0 = rng.standard_normal(256).astype(np.float32)
    g0 = rng.standard_normal((128, 256)).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        x = Tensor(x0, requires_grad=True)
        w = Parameter(w0)
        b = Parameter(b0)
        out = linear_bias_act(x, w, b, act="relu")
        out.backward(g0)
        return out.data, x.grad, w.grad, b.grad

    return step


def _pool_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((8, 16, 16, 16)).astype(np.float32)
    g_max = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
    g_avg = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        x = Tensor(x0, requires_grad=True)
        mx = max_pool2d(x, 2)
        mx.backward(g_max)
        y = Tensor(x0, requires_grad=True)
        av = avg_pool2d(y, 2)
        av.backward(g_avg)
        return mx.data, x.grad, av.data, y.grad

    return step


def _sgd_step(rng: np.random.Generator) -> StepFn:
    """K momentum+weight-decay updates from a fixed start (state is local
    to each call, so repeated timing samples are identical work)."""
    p0 = rng.standard_normal((256, 256)).astype(np.float32)
    g0 = (rng.standard_normal((256, 256)) * 0.01).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        p = Parameter(p0.copy())
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=1e-4)
        for _ in range(5):
            p.grad = g0.copy()
            opt.step()
        return (p.data,)

    return step


def _loader_step(rng: np.random.Generator) -> StepFn:
    images = rng.standard_normal((512, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 10, size=512).astype(np.int64)
    dataset = ArrayDataset(images, labels)

    def step() -> tuple[np.ndarray, ...]:
        loader = DataLoader(dataset, 64, shuffle=True, seed=7, drop_last=True,
                            reuse_buffers=True)
        checksum = np.zeros(3, dtype=np.float64)
        count = 0
        for xb, yb in loader:
            checksum += xb.sum(axis=(0, 2, 3), dtype=np.float64)
            count += len(yb)
        return checksum, np.array([count])

    return step


_KERNELS: dict[str, Callable[[np.random.Generator], StepFn]] = {
    "conv2d_fwd_bwd": _conv_step,
    "linear_fwd_bwd": _linear_step,
    "pool2d_fwd_bwd": _pool_step,
    "sgd_momentum_step": _sgd_step,
    "dataloader_epoch": _loader_step,
}


def _bit_identical(a: tuple[np.ndarray, ...], b: tuple[np.ndarray, ...]) -> bool:
    return len(a) == len(b) and all(
        x.shape == y.shape and x.dtype == y.dtype and np.array_equal(x, y)
        for x, y in zip(a, b)
    )


def bench_kernels(mode: str | None = None, *, smoke: bool = False,
                  repeats: int | None = None, warmup: int | None = None,
                  seed: int = 0) -> dict[str, Any]:
    """Run every kernel micro-benchmark; return the BENCH_kernels payload.

    ``mode`` defaults to the active kernel mode.  Each kernel is timed
    under ``naive`` (the baseline) and under ``mode``, and checked for
    bit-identical outputs/gradients between the two.  Steady-state arena
    stats come from the conv loop with counters reset after warmup.
    """
    mode = mode or kernel_mode()
    if repeats is None:
        repeats = 5 if smoke else 30
    if warmup is None:
        warmup = 2 if smoke else 5

    kernels: dict[str, Any] = {}
    for name, factory in _KERNELS.items():
        rng = np.random.default_rng(seed)
        step = factory(rng)

        with use_kernel_mode("naive"):
            reference = step()
            naive_ns = _time_ns(step, repeats, warmup)

        with use_kernel_mode(mode):
            candidate = step()
            identical = _bit_identical(reference, candidate)
            ws = arena()
            is_conv = name == "conv2d_fwd_bwd"
            if is_conv:
                for _ in range(warmup):
                    step()
                ws.reset_stats()  # steady state: the pool is warm
            current_ns = _time_ns(step, repeats, 0 if is_conv else warmup)
            conv_arena = ws.stats() if is_conv else None

        entry: dict[str, Any] = {
            "naive_ns_per_op": naive_ns,
            "ns_per_op": current_ns,
            "speedup": naive_ns / current_ns if current_ns else float("inf"),
            "bit_identical": identical,
        }
        if conv_arena is not None:
            entry["arena"] = conv_arena
        kernels[name] = entry

    conv_stats = kernels["conv2d_fwd_bwd"]["arena"]
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "kernel_mode": mode,
        "smoke": smoke,
        "repeats": repeats,
        "warmup": warmup,
        "kernels": kernels,
        "arena": {
            "hit_rate": conv_stats["hit_rate"],
            "hits": conv_stats["hits"],
            "misses": conv_stats["misses"],
            "steady_state_bytes_allocated": conv_stats["bytes_allocated"],
            "pooled_bytes": conv_stats["pooled_bytes"],
            "live_borrows": conv_stats["live"],
        },
        "checks": {
            "bit_identical": all(k["bit_identical"] for k in kernels.values()),
            "conv_speedup": kernels["conv2d_fwd_bwd"]["speedup"],
        },
    }
    return payload


def gate_failures(payload: dict[str, Any], *, min_hit_rate: float = 0.9,
                  min_conv_speedup: float | None = None) -> list[str]:
    """CI gates over a bench payload; returns human-readable failures.

    The smoke job enforces bit-identity and the steady-state arena hit
    rate; ``min_conv_speedup`` is optional because wall-clock ratios are
    machine-dependent in a way correctness checks are not.
    """
    failures = []
    for name, entry in payload["kernels"].items():
        if not entry["bit_identical"]:
            failures.append(
                f"{name}: {payload['kernel_mode']} mode diverges from the naive reference"
            )
    hit_rate = payload["arena"]["hit_rate"]
    if hit_rate < min_hit_rate:
        failures.append(
            f"steady-state arena hit rate {hit_rate:.3f} < {min_hit_rate:.2f} "
            "on the conv loop"
        )
    if min_conv_speedup is not None:
        speedup = payload["checks"]["conv_speedup"]
        if speedup < min_conv_speedup:
            failures.append(
                f"conv2d fwd+bwd speedup {speedup:.2f}x < {min_conv_speedup:.2f}x"
            )
    return failures
