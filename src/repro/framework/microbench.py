"""Micro-benchmarks for the framework hot path (``repro bench-kernels``).

DAWNBench-style timing breakdowns argue that end-to-end numbers need
per-kernel decompositions to be actionable; this module times the kernels
the §3.2.1 timed region actually spends its wall clock in — conv2d
forward+backward, the fused linear, pooling, the SGD update, and one
``DataLoader`` epoch — under the active kernel mode *and* under ``naive``,
so every report carries its own baseline.

Each benchmark is a closure that runs one full forward+backward (or one
optimizer step / one epoch); timing takes the *minimum* over repeats after
a warmup, the standard micro-bench estimator for the noise-free cost.
Arena statistics are reset after warmup, so the reported hit rate and
bytes-allocated are steady-state numbers: a healthy arena shows a hit rate
near 1.0 and zero steady-state allocation.

The same closures double as the bit-identity oracle: ``--smoke`` (used in
CI) re-runs every kernel in ``naive`` vs the active mode and fails if any
output or gradient differs by even one bit, or if the steady-state conv
hit rate drops below 90%.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from .config import kernel_mode, use_kernel_mode
from .conv import avg_pool2d, max_pool2d
from .data import ArrayDataset, DataLoader
from .fused import conv2d_bias_relu, linear_bias_act
from .module import Parameter
from .optim import SGD
from .tensor import Tensor
from .workspace import arena

__all__ = ["bench_kernels", "gate_failures", "BENCH_SCHEMA",
           "bench_profile", "gate_profile_failures", "PROFILE_BENCH_SCHEMA",
           "bench_step", "gate_step_failures", "STEP_BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.bench_kernels.v1"
PROFILE_BENCH_SCHEMA = "repro.bench_profile.v1"
STEP_BENCH_SCHEMA = "repro.bench_step.v1"

# A "step" returns the arrays that must be bit-identical across modes.
StepFn = Callable[[], tuple[np.ndarray, ...]]


def _time_ns(step: StepFn, repeats: int, warmup: int) -> float:
    for _ in range(warmup):
        step()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        step()
        t1 = time.perf_counter_ns()
        best = min(best, float(t1 - t0))
    return best


def _conv_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((8, 8, 16, 16)).astype(np.float32)
    w0 = (rng.standard_normal((16, 8, 3, 3)) * 0.1).astype(np.float32)
    b0 = rng.standard_normal(16).astype(np.float32)
    g0: np.ndarray | None = None

    def step() -> tuple[np.ndarray, ...]:
        nonlocal g0
        x = Tensor(x0, requires_grad=True)
        w = Parameter(w0)
        b = Parameter(b0)
        out = conv2d_bias_relu(x, w, b, stride=1, pad=1)
        if g0 is None:
            g0 = rng.standard_normal(out.shape).astype(np.float32)
        out.backward(g0)
        return out.data, x.grad, w.grad, b.grad

    return step


def _linear_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((128, 256)).astype(np.float32)
    w0 = (rng.standard_normal((256, 256)) * 0.05).astype(np.float32)
    b0 = rng.standard_normal(256).astype(np.float32)
    g0 = rng.standard_normal((128, 256)).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        x = Tensor(x0, requires_grad=True)
        w = Parameter(w0)
        b = Parameter(b0)
        out = linear_bias_act(x, w, b, act="relu")
        out.backward(g0)
        return out.data, x.grad, w.grad, b.grad

    return step


def _pool_step(rng: np.random.Generator) -> StepFn:
    x0 = rng.standard_normal((8, 16, 16, 16)).astype(np.float32)
    g_max = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
    g_avg = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        x = Tensor(x0, requires_grad=True)
        mx = max_pool2d(x, 2)
        mx.backward(g_max)
        y = Tensor(x0, requires_grad=True)
        av = avg_pool2d(y, 2)
        av.backward(g_avg)
        return mx.data, x.grad, av.data, y.grad

    return step


def _sgd_step(rng: np.random.Generator) -> StepFn:
    """K momentum+weight-decay updates from a fixed start (state is local
    to each call, so repeated timing samples are identical work)."""
    p0 = rng.standard_normal((256, 256)).astype(np.float32)
    g0 = (rng.standard_normal((256, 256)) * 0.01).astype(np.float32)

    def step() -> tuple[np.ndarray, ...]:
        p = Parameter(p0.copy())
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=1e-4)
        for _ in range(5):
            p.grad = g0.copy()
            opt.step()
        return (p.data,)

    return step


def _loader_step(rng: np.random.Generator) -> StepFn:
    images = rng.standard_normal((512, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 10, size=512).astype(np.int64)
    dataset = ArrayDataset(images, labels)

    def step() -> tuple[np.ndarray, ...]:
        loader = DataLoader(dataset, 64, shuffle=True, seed=7, drop_last=True,
                            reuse_buffers=True)
        checksum = np.zeros(3, dtype=np.float64)
        count = 0
        for xb, yb in loader:
            checksum += xb.sum(axis=(0, 2, 3), dtype=np.float64)
            count += len(yb)
        return checksum, np.array([count])

    return step


_KERNELS: dict[str, Callable[[np.random.Generator], StepFn]] = {
    "conv2d_fwd_bwd": _conv_step,
    "linear_fwd_bwd": _linear_step,
    "pool2d_fwd_bwd": _pool_step,
    "sgd_momentum_step": _sgd_step,
    "dataloader_epoch": _loader_step,
}


def _bit_identical(a: tuple[np.ndarray, ...], b: tuple[np.ndarray, ...]) -> bool:
    return len(a) == len(b) and all(
        x.shape == y.shape and x.dtype == y.dtype and np.array_equal(x, y)
        for x, y in zip(a, b)
    )


def bench_kernels(mode: str | None = None, *, smoke: bool = False,
                  repeats: int | None = None, warmup: int | None = None,
                  seed: int = 0) -> dict[str, Any]:
    """Run every kernel micro-benchmark; return the BENCH_kernels payload.

    ``mode`` defaults to the active kernel mode.  Each kernel is timed
    under ``naive`` (the baseline) and under ``mode``, and checked for
    bit-identical outputs/gradients between the two.  Steady-state arena
    stats come from the conv loop with counters reset after warmup.
    """
    mode = mode or kernel_mode()
    if repeats is None:
        repeats = 5 if smoke else 30
    if warmup is None:
        warmup = 2 if smoke else 5

    kernels: dict[str, Any] = {}
    for name, factory in _KERNELS.items():
        rng = np.random.default_rng(seed)
        step = factory(rng)

        with use_kernel_mode("naive"):
            reference = step()
            naive_ns = _time_ns(step, repeats, warmup)

        with use_kernel_mode(mode):
            candidate = step()
            identical = _bit_identical(reference, candidate)
            ws = arena()
            is_conv = name == "conv2d_fwd_bwd"
            if is_conv:
                for _ in range(warmup):
                    step()
                ws.reset_stats()  # steady state: the pool is warm
            current_ns = _time_ns(step, repeats, 0 if is_conv else warmup)
            conv_arena = ws.stats() if is_conv else None

        entry: dict[str, Any] = {
            "naive_ns_per_op": naive_ns,
            "ns_per_op": current_ns,
            "speedup": naive_ns / current_ns if current_ns else float("inf"),
            "bit_identical": identical,
        }
        if conv_arena is not None:
            entry["arena"] = conv_arena
        kernels[name] = entry

    conv_stats = kernels["conv2d_fwd_bwd"]["arena"]
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "kernel_mode": mode,
        "smoke": smoke,
        "repeats": repeats,
        "warmup": warmup,
        "kernels": kernels,
        "arena": {
            "hit_rate": conv_stats["hit_rate"],
            "hits": conv_stats["hits"],
            "misses": conv_stats["misses"],
            "steady_state_bytes_allocated": conv_stats["bytes_allocated"],
            "pooled_bytes": conv_stats["pooled_bytes"],
            "live_borrows": conv_stats["live"],
        },
        "checks": {
            "bit_identical": all(k["bit_identical"] for k in kernels.values()),
            "conv_speedup": kernels["conv2d_fwd_bwd"]["speedup"],
        },
    }
    return payload


def gate_failures(payload: dict[str, Any], *, min_hit_rate: float = 0.9,
                  min_conv_speedup: float | None = None) -> list[str]:
    """CI gates over a bench payload; returns human-readable failures.

    The smoke job enforces bit-identity and the steady-state arena hit
    rate; ``min_conv_speedup`` is optional because wall-clock ratios are
    machine-dependent in a way correctness checks are not.
    """
    failures = []
    for name, entry in payload["kernels"].items():
        if not entry["bit_identical"]:
            failures.append(
                f"{name}: {payload['kernel_mode']} mode diverges from the naive reference"
            )
    hit_rate = payload["arena"]["hit_rate"]
    if hit_rate < min_hit_rate:
        failures.append(
            f"steady-state arena hit rate {hit_rate:.3f} < {min_hit_rate:.2f} "
            "on the conv loop"
        )
    if min_conv_speedup is not None:
        speedup = payload["checks"]["conv_speedup"]
        if speedup < min_conv_speedup:
            failures.append(
                f"conv2d fwd+bwd speedup {speedup:.2f}x < {min_conv_speedup:.2f}x"
            )
    return failures


# -- profiler overhead bench (``repro bench-profile``) -----------------------
#
# The op profiler's acceptance criterion is a *cost* bound, not a speed
# bound: REPRO_PROFILE=off must be free, sampled mode must stay under a
# few percent of a representative training step.  This harness times the
# same conv+linear+SGD step loop four ways — no telemetry at all, then
# under an active Telemetry session in each profiler mode — and reports
# the overhead ratios, plus the op profile the full-mode run recorded.


def _profile_workload(seed: int, steps: int):
    """A deterministic mini training loop exercising every profiled op.

    Returns ``(loop, params)``: calling ``loop(step_cb)`` runs ``steps``
    iterations of conv fwd+bwd, linear fwd+bwd, and an SGD update
    (invoking ``step_cb()`` first each iteration, where the caller hooks
    the profiler's sampling-window boundary); ``params`` are the live
    parameters, for bit-identity checks across profiler modes.
    """
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
    g_conv = rng.standard_normal((4, 8, 8, 8)).astype(np.float32)
    y0 = rng.standard_normal((32, 64)).astype(np.float32)
    g_lin = rng.standard_normal((32, 64)).astype(np.float32)
    wc = Parameter((rng.standard_normal((8, 3, 3, 3)) * 0.1).astype(np.float32))
    bc = Parameter(rng.standard_normal(8).astype(np.float32))
    wl = Parameter((rng.standard_normal((64, 64)) * 0.05).astype(np.float32))
    bl = Parameter(rng.standard_normal(64).astype(np.float32))
    params = [wc, bc, wl, bl]
    opt = SGD(params, lr=1e-3, momentum=0.9)

    def loop(step_cb=None) -> None:
        for _ in range(steps):
            if step_cb is not None:
                step_cb()
            opt.zero_grad()
            x = Tensor(x0, requires_grad=True)
            out = conv2d_bias_relu(x, wc, bc, stride=1, pad=1)
            out.backward(g_conv)
            y = Tensor(y0, requires_grad=True)
            out2 = linear_bias_act(y, wl, bl, act="relu")
            out2.backward(g_lin)
            opt.step()

    return loop, params


def _time_profile_once(mode: str | None, steps: int, sample_every: int,
                       seed: int):
    """One timed pass of the workload under one profiler mode.

    ``mode=None`` is the true baseline: no telemetry session at all (the
    ambient disabled context).  The workload is rebuilt from ``seed`` so
    every sample times identical work.  Returns
    ``(wall_ns, final_params, op_profile_snapshot)``.
    """
    from ..telemetry import Telemetry

    loop, params = _profile_workload(seed, steps)
    snapshot: dict[str, Any] = {}
    if mode is None:
        t0 = time.perf_counter_ns()
        loop()
        dt = time.perf_counter_ns() - t0
    else:
        tele = Telemetry(profile=mode, profile_every=sample_every)
        with tele.activate():
            t0 = time.perf_counter_ns()
            loop(step_cb=tele.profiler.step)
            dt = time.perf_counter_ns() - t0
        snapshot = tele.profiler.snapshot()
    return float(dt), tuple(p.data.copy() for p in params), snapshot


def bench_profile(*, steps: int | None = None, repeats: int | None = None,
                  sample_every: int = 4, smoke: bool = False,
                  seed: int = 0) -> dict[str, Any]:
    """Measure profiler overhead per mode; return the BENCH_profile payload.

    Overheads are reported relative to the no-telemetry baseline and
    floored at zero (min-over-repeats already strips most scheduler
    noise; a "negative overhead" is noise, not a speedup).  Repeats are
    interleaved round-robin across the four configurations — timing each
    configuration's repeats as a block would let machine drift (thermal
    ramps, a neighbour process waking up) masquerade as per-mode
    overhead, since every ratio compares blocks measured at different
    moments.
    """
    # Loops must be long enough to time: at ~0.3ms/step, 8-step loops sit
    # at scheduler-jitter granularity and min-over-repeats never
    # converges — overhead ratios then swing tens of percent on a busy
    # host.  32 steps (~10ms/loop) is the floor for a stable ratio.
    if steps is None:
        steps = 32 if smoke else 64
    if repeats is None:
        repeats = 10

    # Untimed warmup: the first configuration timed would otherwise absorb
    # all one-time costs (arena pool fill, BLAS thread spin-up, frequency
    # ramp) and bias every overhead ratio low.
    loop, _ = _profile_workload(seed, steps)
    loop()

    # Rotate the within-round order every round: with a fixed order,
    # periodic host activity (a poller waking every ~N ms) lands on the
    # same slot each round and reads as per-mode overhead.
    configs: tuple[str | None, ...] = (None, "off", "sampled", "full")
    rounds: list[dict[str | None, float]] = []
    finals: dict[str | None, Any] = {}
    snaps: dict[str | None, dict[str, Any]] = {}
    for r in range(repeats):
        row: dict[str | None, float] = {}
        for i in range(len(configs)):
            cfg = configs[(i + r) % len(configs)]
            dt, final, snap = _time_profile_once(cfg, steps, sample_every,
                                                 seed)
            row[cfg] = dt
            finals[cfg] = final
            snaps[cfg] = snap
        rounds.append(row)

    # Overhead is the lower quartile over rounds of the SAME-round
    # ratio, not a ratio of independent mins: baseline and mode samples
    # taken ~ms apart share whatever contention the host had that round,
    # so each ratio mostly cancels it.  Residual contention bursts land
    # on single samples and only ever INFLATE a ratio, so a low quantile
    # discards them; the min is degenerate (some round always has the
    # mode luckier than its baseline) but Q1 needs a quarter of the
    # rounds lucky to be fooled.  A real regression shifts the whole
    # distribution, Q1 included.  (Two separately-minimized times are
    # worst of all: their quotient swings with whichever config got the
    # one quiet round.)
    base_ns = min(row[None] for row in rounds)
    base_params = finals[None]
    timings = {"baseline": base_ns}
    overheads: dict[str, float] = {}
    profiles: dict[str, dict[str, Any]] = {}
    identical: dict[str, bool] = {}
    for mode in ("off", "sampled", "full"):
        timings[mode] = min(row[mode] for row in rounds)
        ratios = sorted(row[mode] / row[None] for row in rounds
                        if row[None] > 0)
        ratio = ratios[len(ratios) // 4] if ratios else 1.0
        overheads[mode] = max(ratio - 1.0, 0.0)
        profiles[mode] = snaps[mode]
        identical[mode] = _bit_identical(base_params, finals[mode])

    full_ops = profiles["full"].get("ops", {})
    ops_recorded = sum(len(ops) for ops in full_ops.values())
    return {
        "schema": PROFILE_BENCH_SCHEMA,
        "smoke": smoke,
        "steps": steps,
        "repeats": repeats,
        "sample_every": sample_every,
        "timings_ns": timings,
        "checks": {
            # Distinct (phase, op) rows the full-mode run recorded: conv
            # and linear forward+backward plus the optimizer step = 5.
            "ops_recorded": ops_recorded,
            "off_overhead": overheads["off"],
            "sampled_overhead": overheads["sampled"],
            "full_overhead": overheads["full"],
            "bit_identical": all(identical.values()),
            "bit_identical_by_mode": identical,
        },
        "op_profile": profiles["full"],
    }


def gate_profile_failures(payload: dict[str, Any], *,
                          max_sampled_overhead: float = 0.05,
                          min_ops_recorded: int = 5) -> list[str]:
    """CI gates for the profile-smoke job.

    Sampled-mode overhead is the documented acceptance bound (< 5%);
    bit-identity and op coverage are correctness, gated unconditionally.
    Off-mode overhead is gated only via bench-diff's tolerance band — an
    absolute bound on a near-zero ratio would be all noise.
    """
    failures = []
    checks = payload["checks"]
    if not checks["bit_identical"]:
        bad = [m for m, ok in checks["bit_identical_by_mode"].items() if not ok]
        failures.append(f"profiler modes {bad} changed training results")
    if checks["ops_recorded"] < min_ops_recorded:
        failures.append(
            f"full-mode profile recorded {checks['ops_recorded']} op rows "
            f"< {min_ops_recorded} (instrumentation hole)")
    if checks["sampled_overhead"] > max_sampled_overhead:
        failures.append(
            f"sampled-mode overhead {checks['sampled_overhead']:.1%} > "
            f"{max_sampled_overhead:.0%} of the baseline step loop")
    return failures


# -- whole-step compiled-replay bench (``repro bench-step``) ------------------
#
# The kernel bench above times individual primitives; this harness times
# *whole training steps* — forward, backward, optimizer update — because
# that is the unit the compiled executor (REPRO_KERNEL_MODE=compiled)
# optimises: graph-traversal dispatch, per-edge gradient allocation, and
# elementwise-chain materialisation are cross-op costs invisible to
# per-kernel timing.  Three step shapes cover the planner's regimes: a
# deep recurrent tape (long schedules, many small matmuls), a fused-linear
# MLP (closure-heavy plans), and an attention block (the reshape/transpose
# pass-through and 4-D matmul paths, where gradient memory *layout* — not
# just values — must match eager bit-for-bit).


def _rnn_step_workload(rng: np.random.Generator):
    """Unrolled tanh RNN: a deep tape of small matmuls and fused chains."""
    H, B, T = 64, 32, 12
    wx = Parameter(rng.standard_normal((H, H)).astype(np.float32) * 0.2)
    wh = Parameter(rng.standard_normal((H, H)).astype(np.float32) * 0.2)
    b = Parameter(rng.standard_normal(H).astype(np.float32) * 0.1)
    xs = [Tensor(rng.standard_normal((B, H)).astype(np.float32))
          for _ in range(T)]

    def forward() -> Tensor:
        h = xs[0] @ wx
        for t in range(T):
            h = (xs[t] @ wx + h @ wh + b).tanh()
        return (h * h).mean()

    return [wx, wh, b], forward


def _mlp_step_workload(rng: np.random.Generator):
    """Two fused linear layers: plans dominated by closure entries."""
    x0 = Tensor(rng.standard_normal((256, 128)).astype(np.float32))
    w1 = Parameter(rng.standard_normal((128, 128)).astype(np.float32) * 0.05)
    b1 = Parameter(rng.standard_normal(128).astype(np.float32) * 0.1)
    w2 = Parameter(rng.standard_normal((32, 128)).astype(np.float32) * 0.05)
    b2 = Parameter(rng.standard_normal(32).astype(np.float32) * 0.1)

    def forward() -> Tensor:
        h = linear_bias_act(x0, w1, b1, act="relu")
        y = linear_bias_act(h, w2, b2, act="none")
        return (y * y).mean()

    return [w1, b1, w2, b2], forward


def _attention_step_workload(rng: np.random.Generator):
    """One self-attention block: reshape/transpose pass-throughs, 4-D
    matmuls, and a tanh chain standing in for the softmax's elementwise
    tail (same tape structure, cheaper arithmetic)."""
    B, T, D, heads = 16, 16, 64, 4
    dh = D // heads
    x0 = Tensor(rng.standard_normal((B, T, D)).astype(np.float32))
    wq = Parameter(rng.standard_normal((D, D)).astype(np.float32) * 0.1)
    wk = Parameter(rng.standard_normal((D, D)).astype(np.float32) * 0.1)
    wv = Parameter(rng.standard_normal((D, D)).astype(np.float32) * 0.1)
    wo = Parameter(rng.standard_normal((D, D)).astype(np.float32) * 0.1)
    scale = 1.0 / float(np.sqrt(dh))

    def forward() -> Tensor:
        def split(w: Parameter) -> Tensor:
            return (x0 @ w).reshape(B, T, heads, dh).transpose(0, 2, 1, 3)

        q, k, v = split(wq), split(wk), split(wv)
        attn = ((q @ k.transpose(0, 1, 3, 2)) * scale).tanh()
        ctx = (attn @ v).transpose(0, 2, 1, 3).reshape(B, T, D)
        out = ctx @ wo
        return (out * out).mean()

    return [wq, wk, wv, wo], forward


_STEP_WORKLOADS: dict[str, Callable[[np.random.Generator], Any]] = {
    "rnn_tanh_unrolled": _rnn_step_workload,
    "mlp_fused_linear": _mlp_step_workload,
    "attention_block": _attention_step_workload,
}


def _step_harness(factory, mode: str, seed: int, name: str):
    """Fresh workload + executor + optimizer under ``mode``.

    Returns ``(one_step, params, executor)``; ``one_step`` runs a full
    zero-grad / forward / backward / SGD-update training step through
    :class:`~repro.framework.compile.StepExecutor` (an eager pass-through
    for non-compiled modes, so both sides of every comparison share the
    same harness overhead).
    """
    from .compile import StepExecutor

    rng = np.random.default_rng(seed)
    params, forward = factory(rng)
    opt = SGD(params, lr=1e-3, momentum=0.9)
    executor = StepExecutor(name=f"bench-step-{name}-{mode}")

    def zero() -> None:
        for p in params:
            p.grad = None

    def one_step() -> Tensor:
        loss = executor.step(forward, pre_backward=zero)
        opt.step()
        return loss

    return one_step, params, executor


def _step_outputs(factory, mode: str, seed: int, steps: int,
                  name: str) -> tuple[list, Any]:
    """Run ``steps`` optimizer steps; collect per-step loss+grad bits and
    the final parameters (so divergence anywhere in the horizon is caught,
    not just at the end)."""
    one_step, params, executor = _step_harness(factory, mode, seed, name)
    outs: list[tuple[np.ndarray, ...]] = []
    with use_kernel_mode(mode):
        for _ in range(steps):
            loss = one_step()
            outs.append((np.asarray(loss.data).copy(),)
                        + tuple(p.grad.copy() for p in params))
        outs.append(tuple(p.data.copy() for p in params))
    return outs, executor


def bench_step(mode: str | None = None, *, smoke: bool = False,
               repeats: int | None = None, warmup: int | None = None,
               identity_steps: int | None = None,
               seed: int = 0) -> dict[str, Any]:
    """Benchmark whole training steps under ``mode`` against fused eager.

    For each workload: (1) run a multi-step lockstep training horizon in
    ``fused`` and in ``mode`` from identical initial parameters and check
    every step's loss, every parameter gradient, and the final parameters
    for bit-identity; (2) time the steady-state step (plan cache warm) in
    both modes.  Returns the ``BENCH_step.json`` payload.
    """
    mode = mode or "compiled"
    if repeats is None:
        repeats = 8 if smoke else 40
    if warmup is None:
        warmup = 3 if smoke else 6
    if identity_steps is None:
        identity_steps = 4 if smoke else 6

    workloads: dict[str, Any] = {}
    for name, factory in _STEP_WORKLOADS.items():
        reference, _ = _step_outputs(factory, "fused", seed, identity_steps,
                                     name)
        candidate, _ = _step_outputs(factory, mode, seed, identity_steps,
                                     name)
        identical = len(reference) == len(candidate) and all(
            _bit_identical(a, b) for a, b in zip(reference, candidate))

        fused_step, _, _ = _step_harness(factory, "fused", seed, name)
        with use_kernel_mode("fused"):
            fused_ns = _time_ns(fused_step, repeats, warmup)
        mode_step, _, executor = _step_harness(factory, mode, seed, name)
        with use_kernel_mode(mode):
            mode_ns = _time_ns(mode_step, repeats, warmup)
        stats = executor.stats()
        # Every step after a plan's first sighting should hit the cache:
        # forgive exactly one miss per distinct plan, nothing else.
        replays = stats["hits"] + stats["misses"] - stats["plans"]
        hit_rate_after_first = (stats["hits"] / replays if replays > 0
                                else 1.0)
        workloads[name] = {
            "fused_ns_per_step": fused_ns,
            "ns_per_step": mode_ns,
            "speedup": fused_ns / mode_ns if mode_ns else float("inf"),
            "bit_identical": identical,
            "hit_rate_after_first": hit_rate_after_first,
            "executor": stats,
        }

    speedups = {name: w["speedup"] for name, w in workloads.items()}
    best = max(speedups, key=speedups.get)
    return {
        "schema": STEP_BENCH_SCHEMA,
        "kernel_mode": mode,
        "smoke": smoke,
        "repeats": repeats,
        "warmup": warmup,
        "identity_steps": identity_steps,
        "workloads": workloads,
        "checks": {
            "bit_identical": all(w["bit_identical"]
                                 for w in workloads.values()),
            "best_speedup": speedups[best],
            "best_speedup_workload": best,
            "hit_rate_after_first": min(w["hit_rate_after_first"]
                                        for w in workloads.values()),
            "fallbacks": sum(w["executor"]["fallbacks"]
                             for w in workloads.values()),
        },
    }


def gate_step_failures(payload: dict[str, Any], *,
                       min_speedup: float | None = 1.15,
                       min_hit_rate: float = 1.0) -> list[str]:
    """CI gates for the step-bench smoke job.

    Bit-identity, plan-cache hit rate, and fallback count are correctness/
    mechanism gates and always enforced; the wall-clock speedup gate
    (compiled's acceptance bound, best workload >= 1.15x over fused) can
    be disabled with ``min_speedup=None`` on hosts where timing is
    meaningless.
    """
    failures = []
    checks = payload["checks"]
    for name, entry in payload["workloads"].items():
        if not entry["bit_identical"]:
            failures.append(
                f"{name}: {payload['kernel_mode']} training diverges from "
                "fused eager (loss/grads/params not bit-identical)")
    hit_rate = checks["hit_rate_after_first"]
    if hit_rate < min_hit_rate:
        failures.append(
            f"plan-cache hit rate after first sighting {hit_rate:.3f} < "
            f"{min_hit_rate:.2f} (fingerprint instability)")
    if checks["fallbacks"]:
        failures.append(
            f"{checks['fallbacks']} eager fallback(s) on fixed-shape "
            "workloads (plans should always replay)")
    if min_speedup is not None and checks["best_speedup"] < min_speedup:
        failures.append(
            f"best whole-step speedup {checks['best_speedup']:.2f}x "
            f"({checks['best_speedup_workload']}) < {min_speedup:.2f}x "
            "over fused eager")
    return failures
