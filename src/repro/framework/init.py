"""Parameter initialization schemes.

The paper stresses (§3.1.1, §4.2.1) that the Closed division pins down
*parameter initialization* as part of workload equivalence; benchmarks in
this repo therefore name their initializers explicitly, and every scheme is
deterministic given the supplied generator.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "xavier_normal",
    "normal",
    "uniform",
    "zeros",
    "ones",
]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv weight shapes."""
    if len(shape) == 2:  # (out, in) linear
        return shape[1], shape[0]
    if len(shape) >= 3:  # (out_ch, in_ch, *kernel)
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    return shape[0], shape[0]


def kaiming_normal(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He initialization for ReLU networks: ``std = gain / sqrt(fan_in)``."""
    fan_in, _ = _fan(tuple(shape))
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan(tuple(shape))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot initialization, appropriate for tanh/sigmoid/attention layers."""
    fan_in, fan_out = _fan(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def normal(shape, rng: np.random.Generator, std: float = 0.01, mean: float = 0.0) -> np.ndarray:
    return rng.normal(mean, std, size=shape).astype(np.float32)


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
