"""Learning-rate schedules.

Schedules are pure functions of the step/epoch index attached to an
optimizer via :class:`LRScheduler`.  The set covers the schedules the paper's
workloads rely on: linear warmup + step decay (ResNet), inverse-square-root
warmup (Transformer), and cosine decay.  The *linear batch-size scaling*
helper implements the Goyal et al. rule the paper cites in §3.4.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "StepDecayLR",
    "WarmupStepLR",
    "CosineLR",
    "NoamLR",
    "linear_scaled_lr",
]


def linear_scaled_lr(base_lr: float, batch_size: int, base_batch_size: int) -> float:
    """Goyal et al. linear-scaling rule: lr grows with minibatch size."""
    if batch_size <= 0 or base_batch_size <= 0:
        raise ValueError("batch sizes must be positive")
    return base_lr * batch_size / base_batch_size


class LRScheduler:
    """Base: subclasses define ``lr_at(step)``; ``step()`` advances and applies."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.current_step = 0
        optimizer.lr = self.lr_at(0)

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.current_step += 1
        self.optimizer.lr = self.lr_at(self.current_step)
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, lr: float):
        self.lr = float(lr)
        super().__init__(optimizer)

    def lr_at(self, step: int) -> float:
        return self.lr


class StepDecayLR(LRScheduler):
    """Multiply the LR by ``gamma`` at each milestone step."""

    def __init__(self, optimizer: Optimizer, base_lr: float, milestones: list[int], gamma: float = 0.1):
        self.base_lr = float(base_lr)
        self.milestones = sorted(milestones)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def lr_at(self, step: int) -> float:
        drops = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * (self.gamma**drops)


class WarmupStepLR(LRScheduler):
    """Linear warmup to ``base_lr`` then step decay — the ResNet schedule."""

    def __init__(self, optimizer: Optimizer, base_lr: float, warmup_steps: int,
                 milestones: list[int], gamma: float = 0.1):
        self.base_lr = float(base_lr)
        self.warmup_steps = int(warmup_steps)
        self.milestones = sorted(milestones)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        drops = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * (self.gamma**drops)


class CosineLR(LRScheduler):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, base_lr: float, total_steps: int, min_lr: float = 0.0):
        self.base_lr = float(base_lr)
        self.total_steps = max(int(total_steps), 1)
        self.min_lr = float(min_lr)
        super().__init__(optimizer)

    def lr_at(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))


class NoamLR(LRScheduler):
    """The Transformer schedule: ``d_model^-0.5 * min(s^-0.5, s*warmup^-1.5)``."""

    def __init__(self, optimizer: Optimizer, d_model: int, warmup_steps: int, scale: float = 1.0):
        self.d_model = int(d_model)
        self.warmup_steps = max(int(warmup_steps), 1)
        self.scale = float(scale)
        super().__init__(optimizer)

    def lr_at(self, step: int) -> float:
        s = max(step, 1)
        return self.scale * self.d_model**-0.5 * min(s**-0.5, s * self.warmup_steps**-1.5)
