"""Framework-side hooks into the op-level profiler.

The framework must stay importable without telemetry (and telemetry
imports the framework at load time), so kernels never import
:mod:`repro.telemetry` directly.  This shim resolves the ambient
:class:`~repro.telemetry.opprof.OpProfiler` lazily, and provides the one
decorator kernels use:

    @profiled_op("conv2d")
    def conv2d(x, weight, ...): ...

When the profiler is inactive (the default), the wrapper is a cached
global lookup, one function call, and one attribute check — cheap enough
to leave on every kernel.  When active, it times the forward call,
estimates bytes moved from the tensor operands, and (if the result is a
graph node) wraps its backward closure so the same op's backward cost is
charged to the ``backward`` phase.  The wrapped closure calls the
original unchanged, so profiled runs stay bit-identical.
"""

from __future__ import annotations

import functools
from time import perf_counter_ns

__all__ = ["profiled_op", "profiler"]

_CURRENT_PROFILER = None


def profiler():
    """The ambient :class:`OpProfiler` (lazy import, cached resolver)."""
    global _CURRENT_PROFILER
    if _CURRENT_PROFILER is None:
        from ..telemetry.context import current_profiler

        _CURRENT_PROFILER = current_profiler
    return _CURRENT_PROFILER()


def _operand_bytes(args, out) -> int:
    """Bytes touched by an op: tensor operands in, result out."""
    total = 0
    data = getattr(out, "data", None)
    if data is not None and hasattr(data, "nbytes"):
        total += data.nbytes
    for arg in args:
        data = getattr(arg, "data", None)
        if data is not None and hasattr(data, "nbytes"):
            total += data.nbytes
    return total


def profiled_op(name: str):
    """Record ``fn``'s forward (and, for graph nodes, backward) cost."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            prof = profiler()
            if not prof.active:
                return fn(*args, **kwargs)
            prof.begin()
            t0 = perf_counter_ns()
            try:
                out = fn(*args, **kwargs)
            except BaseException:
                prof.cancel()
                raise
            dt = perf_counter_ns() - t0
            nbytes = _operand_bytes(args, out)
            prof.end(name, dt, nbytes)
            bwd = getattr(out, "_backward", None)
            if bwd is not None:
                def timed_backward(_bwd=bwd, _prof=prof, _nbytes=nbytes):
                    # begin() before the closure so nested profiled ops
                    # charge as children (self-time stays double-count free).
                    _prof.begin()
                    b0 = perf_counter_ns()
                    try:
                        _bwd()
                    except BaseException:
                        _prof.cancel()
                        raise
                    _prof.end(name, perf_counter_ns() - b0, _nbytes,
                              phase="backward")

                out._backward = timed_backward
            return out

        return wrapper

    return decorate
