"""Fused kernels: several autograd nodes collapsed into one.

§2.2.4's point that math libraries win by picking equivalent-but-faster
algorithms applies to graph shape too: ``conv → bias → relu`` as three
``Tensor`` nodes materializes two extra full activations and walks three
closures backward.  The kernels here compute the same values (bit-identical
— enforced by tests) in one node, with scratch drawn from the workspace
arena and element masks applied in place.

Fusion only engages in ``fused`` kernel mode (see
:mod:`repro.framework.config`); in ``naive``/``reuse`` modes these
functions run the equivalent composition of primitives, so call sites can
use them unconditionally.
"""

from __future__ import annotations

import numpy as np

from .config import kernel_mode
from .conv import _conv2d_arena, _uniform_float_dtype, conv2d
from .prof import profiled_op
from .tensor import Tensor, _unbroadcast, is_grad_enabled
from .workspace import arena

__all__ = ["conv2d_bias_relu", "linear_bias_act"]

_ACTS = ("none", "relu")


@profiled_op("conv2d_bias_relu")
def conv2d_bias_relu(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                     stride: int = 1, pad: int = 0) -> Tensor:
    """Fused ``relu(conv2d(x, w, b))`` — one graph node, in-place mask.

    Bit-identical to the composition in every mode; the fused single-node
    kernel runs only in ``fused`` mode (with uniform float dtypes).
    """
    if x.shape[1] != weight.shape[1]:
        raise ValueError(f"input channels {x.shape[1]} != weight channels {weight.shape[1]}")
    if kernel_mode() in ("fused", "compiled"):
        dt = _uniform_float_dtype(x, weight, bias)
        if dt is not None:
            return _conv2d_arena(x, weight, bias, stride, pad, dt, relu=True)
    return conv2d(x, weight, bias, stride=stride, pad=pad).relu()


@profiled_op("linear")
def linear_bias_act(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                    act: str = "none") -> Tensor:
    """Fused affine map ``act(x @ W.T + b)`` (``act``: ``none`` | ``relu``).

    One autograd node instead of up to three; the bias add and the ReLU
    mask are applied in place on the GEMM output, so no intermediate
    activations are materialized.  Bit-identical to the composition.
    """
    if act not in _ACTS:
        raise ValueError(f"act must be one of {_ACTS}, got {act!r}")
    if kernel_mode() in ("fused", "compiled") and x.ndim >= 2:
        dt = _uniform_float_dtype(x, weight, bias)
        if dt is not None:
            return _linear_fused(x, weight, bias, act, dt)
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out.relu() if act == "relu" else out


def _linear_fused(x: Tensor, weight: Tensor, bias: Tensor | None, act: str, dt) -> Tensor:
    ws = arena()
    wd = weight.data
    y = np.matmul(x.data, wd.T)  # escapes as the result tensor's data
    if bias is not None:
        y += bias.data
    mask = None
    if act == "relu":
        mask = ws.take(y.shape, np.bool_)
        np.greater(y, 0, out=mask)
        y *= mask

    parents = [x, weight] + ([bias] if bias is not None else [])
    if not (is_grad_enabled() and any(t.requires_grad for t in parents)):
        if mask is not None:
            ws.release(mask)
        return Tensor(y)

    def backward(result: Tensor) -> None:
        g = result.grad
        gm = None
        if mask is not None:
            gm = ws.take(g.shape, g.dtype)
            np.multiply(g, mask, out=gm)
            g = gm
            ws.release(mask)
        if bias is not None:
            bias._accumulate(_unbroadcast(g, bias.shape))
        if weight.requires_grad:
            # Mirror the unfused graph exactly: the matmul node's adjoint
            # for W.T, un-broadcast over batch dims, then the transpose
            # node's adjoint back to W's layout.
            gw_t = _unbroadcast(np.swapaxes(x.data, -1, -2) @ g, (wd.shape[1], wd.shape[0]))
            weight._accumulate(gw_t.transpose(1, 0))
        if x.requires_grad:
            x._accumulate(_unbroadcast(g @ wd, x.shape))
        if gm is not None:
            ws.release(gm)

    return Tensor._make(y, parents, backward)
