"""Optimizers.

§2.2.4 of the paper shows that frameworks disagree on the *mathematics* of
momentum SGD: Caffe folds the learning rate into the velocity
(``v = a*v + lr*g; w -= v``) while PyTorch/TensorFlow scale at the update
(``v = a*v + g; w -= lr*v``).  The two coincide only under a constant
learning rate.  Both variants are implemented here so that the §2.2.4 bench
can demonstrate exactly that divergence, and so the Closed-division
equivalence checker can insist on a specific formulation.

LARS (You et al., 2017) is included because allowing it for large ResNet
batches was the headline v0.5→v0.6 rule change (§5).
"""

from __future__ import annotations

import numpy as np

from .config import kernel_mode
from .module import Parameter
from .prof import profiler
from .workspace import arena

__all__ = ["Optimizer", "SGD", "Adam", "LARS", "MOMENTUM_STYLES", "clip_grad_norm"]

MOMENTUM_STYLES = ("caffe", "torch")


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters and the current learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        prof = profiler()
        if prof.active:
            nbytes = sum(p.data.nbytes + p.grad.nbytes for p in self.params
                         if p.grad is not None)
            with prof.op("optimizer_step", phase="update", nbytes=nbytes):
                self.step_count += 1
                for p in self.params:
                    if p.grad is not None:
                        self._update(p)
            return
        self.step_count += 1
        for p in self.params:
            if p.grad is not None:
                self._update(p)

    def _update(self, p: Parameter) -> None:
        raise NotImplementedError

    def hyperparameters(self) -> dict[str, float | str]:
        """Report tunables for the submission log (compliance checking)."""
        return {"lr": self.lr}


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    ``momentum_style`` selects between the two formulations of §2.2.4.
    Weight decay is applied as L2 regularization added to the gradient
    (the convention of both reference formulations in the paper's framing).
    """

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0,
                 momentum_style: str = "torch"):
        super().__init__(params, lr)
        if momentum_style not in MOMENTUM_STYLES:
            raise ValueError(f"momentum_style must be one of {MOMENTUM_STYLES}, got {momentum_style!r}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.momentum_style = momentum_style
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        if kernel_mode() != "naive" and p.grad.dtype == p.data.dtype:
            self._update_inplace(p)
            return
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        if self.momentum == 0.0:
            p.data -= self.lr * grad
            return
        v = self._velocity.get(id(p))
        if v is None:
            v = np.zeros_like(p.data)
            self._velocity[id(p)] = v
        if self.momentum_style == "caffe":
            # momentum = a*momentum + lr*dL/dw ; w -= momentum   (Eq. 1)
            v *= self.momentum
            v += self.lr * grad
            p.data -= v
        else:
            # momentum = a*momentum + dL/dw ; w -= lr*momentum   (Eq. 2)
            v *= self.momentum
            v += grad
            p.data -= self.lr * v

    def _update_inplace(self, p: Parameter) -> None:
        """The same update written through one reused arena buffer.

        Bit-identical to the naive path: IEEE-754 addition and
        multiplication commute, so ``wd*w + g`` equals ``g + wd*w`` and
        ``(g + wd*w) * lr`` equals ``lr * (g + wd*w)`` exactly.
        """
        ws = arena()
        buf = ws.take(p.data.shape, p.data.dtype)
        if self.weight_decay:
            np.multiply(p.data, self.weight_decay, out=buf)
            buf += p.grad
            grad = buf
        else:
            grad = p.grad
        if self.momentum == 0.0:
            np.multiply(grad, self.lr, out=buf)
            p.data -= buf
            ws.release(buf)
            return
        v = self._velocity.get(id(p))
        if v is None:
            v = np.zeros_like(p.data)
            self._velocity[id(p)] = v
        v *= self.momentum
        if self.momentum_style == "caffe":
            np.multiply(grad, self.lr, out=buf)
            v += buf
            p.data -= v
        else:
            v += grad
            np.multiply(v, self.lr, out=buf)
            p.data -= buf
        ws.release(buf)

    def hyperparameters(self) -> dict[str, float | str]:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "momentum_style": self.momentum_style,
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        key = id(p)
        if key not in self._m:
            self._m[key] = np.zeros_like(p.data)
            self._v[key] = np.zeros_like(p.data)
            self._t[key] = 0
        self._t[key] += 1
        t = self._t[key]
        m, v = self._m[key], self._v[key]
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def hyperparameters(self) -> dict[str, float | str]:
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
        }


class LARS(Optimizer):
    """Layer-wise Adaptive Rate Scaling (You et al., 2017).

    Each layer's update is rescaled by ``trust * ||w|| / (||g|| + wd*||w||)``,
    which keeps the update-to-weight ratio uniform across layers and is what
    makes very large minibatches trainable — the mechanism behind the v0.6
    large-batch ResNet entries (§5).
    """

    def __init__(self, params, lr: float, momentum: float = 0.9, weight_decay: float = 0.0,
                 trust_coefficient: float = 0.001, eps: float = 1e-9):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.trust = float(trust_coefficient)
        self.eps = eps
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, p: Parameter) -> None:
        grad = p.grad + self.weight_decay * p.data
        w_norm = float(np.linalg.norm(p.data))
        g_norm = float(np.linalg.norm(grad))
        if w_norm > 0 and g_norm > 0:
            local_lr = self.trust * w_norm / (g_norm + self.eps)
        else:
            local_lr = 1.0
        v = self._velocity.get(id(p))
        if v is None:
            v = np.zeros_like(p.data)
            self._velocity[id(p)] = v
        v *= self.momentum
        v += self.lr * local_lr * grad
        p.data -= v

    def hyperparameters(self) -> dict[str, float | str]:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "trust_coefficient": self.trust,
        }
