"""Graph capture and compiled whole-step replay (``REPRO_KERNEL_MODE=compiled``).

PR 3's kernel wins were per-op; this module goes after the *cross-op* cost of
the training step.  On a tape-based autodiff substrate every ``backward()``
pays three structural taxes per step even though the step graph is identical
every iteration:

1. a full DFS re-derivation of the reverse topological order,
2. a Python closure dispatch (plus ``grad is None`` bookkeeping) per node,
3. a fresh gradient allocation per edge (``_accumulate``'s copy or the
   VJP's product array).

:class:`StepExecutor` removes all three.  The first time a step shape is
seen, the forward runs under a **capture tape** (see
:func:`repro.framework.tensor._set_tape`), the backward executes *eagerly*
(so the miss step is bit-exact by construction) while the executor records
the DFS execution order, and the trace is distilled into a **plan**:

- a flat schedule of pre-resolved entries — no DFS, no re-wiring;
- a **registry** of exact-mirror ``out=`` adjoints for the hot primitive ops
  (matmul, elementwise arithmetic, activations, slicing, reductions) that
  write gradients into a liveness-planned **slab** borrowed once from the
  PR 3 workspace arena, eliminating steady-state gradient allocation;
- **fused elementwise chains**: runs of single-consumer elementwise nodes
  (relu→mul→tanh…) collapse into one entry that streams the running gradient
  product through a pair of scratch buffers, never materialising the
  intermediate gradients at all — automatic fusion beyond the hand-fused
  pairs in :mod:`repro.framework.fused`;
- leaf positions keep their grad-hook firing slots, so
  ``ShardedDataParallel``'s bucketed all-reduce overlap sees parameters in
  the same reverse-topological order as eager execution.

Subsequent steps **fingerprint** the captured tape (op code identity + shape
+ dtype + parent wiring + requires-grad bits) and replay the matching plan.
Any mismatch — the last partial batch, an eval-shaped graph, a graph whose
closures were built outside capture — falls back to plain eager backward,
so compiled mode is *never* less correct, only faster.

Bit-identity is a hard invariant, not a goal: every registry adjoint mirrors
the eager VJP's exact operation order (IEEE-754 addition is commutative but
not associative, so accumulation order is part of the contract), plans replay
the recorded DFS order, and scalar/index/mask operands are re-read from the
live closure cells each step (they may legally change without changing the
fingerprint).  ``repro bench-step --smoke`` enforces the invariant in CI.

Observability: the executor publishes ``compile_*`` counters and gauges
(cache hits/misses/fallbacks, hit rate, liveness peak bytes, slab bytes,
fused chains) through the ambient telemetry registry, and replay runs under
the op profiler's ``backward`` phase.  When the profiler is actively
sampling, replay uses the plan's closure schedule (still no DFS) so per-op
timings keep flowing.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from . import tensor as _tensor_module
from .config import kernel_mode
from .prof import profiler
from .tensor import Tensor
from .workspace import arena

__all__ = ["StepExecutor"]

_ALIGN = 64  # slab offset alignment, bytes

# ---------------------------------------------------------------------------
# Op registry: map VJP closure code objects -> op names
# ---------------------------------------------------------------------------

_OP_CODES: dict[int, str] | None = None


def _sample_nodes() -> dict[str, Tensor]:
    """Build one node per compilable primitive to learn its VJP code object.

    Closure code objects are per-definition constants, so ``id(code)`` keys
    are stable for the process lifetime regardless of operand values.
    """
    a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    return {
        "add_scalar": a + 1.0,
        "add_tensor": a + b,
        "neg": -a,
        "mul_scalar": a * 2.0,
        "mul_tensor": a * b,
        "div_tensor": a / b,
        "pow": a ** 2.0,
        "matmul": a @ b,
        "exp": a.exp(),
        "log": a.log(),
        "sqrt": a.sqrt(),
        "tanh": a.tanh(),
        "sigmoid": a.sigmoid(),
        "relu": a.relu(),
        "abs": a.abs(),
        "clip": a.clip(-1.0, 1.0),
        "sum": a.sum(),
        "reshape": a.reshape(4),
        "transpose": a.transpose(),
        "getitem": a[0:1],
        "stack": Tensor.stack([a, b]),
        "take_rows": a.take_rows(np.array([0, 1])),
    }


def _op_codes() -> dict[int, str]:
    global _OP_CODES
    if _OP_CODES is None:
        previous = _tensor_module._set_tape([])
        try:
            _OP_CODES = {
                id(node._vjp.__code__): name
                for name, node in _sample_nodes().items()
            }
        finally:
            _tensor_module._set_tape(previous)
    return _OP_CODES


def _cell_index(node: Tensor, name: str) -> int:
    return node._vjp.__code__.co_freevars.index(name)


# Ops whose VJP is "multiply the incoming gradient by a local factor" — the
# building blocks of fused elementwise chains (shape-preserving, unary).
_CHAIN_OPS = frozenset({
    "relu", "tanh", "sigmoid", "exp", "log", "sqrt", "abs", "clip", "neg",
    "mul_scalar", "pow", "add_scalar",
})

# Ops whose compiled kernel never reads forward *values* — only shapes and
# the incoming gradient — so operand memory layout cannot affect them.
# Everything else requires C-contiguous operands to compile (see
# ``_PlanBuilder._compilable``).
_LAYOUT_FREE_OPS = frozenset({
    "add_scalar", "add_tensor", "reshape", "transpose", "sum", "stack",
})


# ---------------------------------------------------------------------------
# Per-op ``apply(node, gin, out)`` kernels
# ---------------------------------------------------------------------------
# Each mirrors the eager VJP's arithmetic *exactly* (same operand order, same
# association) but writes into a preallocated ``out``.  ``gin`` and ``out``
# are always distinct arrays; ``out`` may be used as workspace before ``gin``
# is consumed.  Scalars, masks, and indices are read from the live closure
# cells each call — they can change between steps without changing the
# fingerprint.

def _apply_relu(node: Tensor, k: int) -> Callable:
    def apply(nd, gin, out):
        np.multiply(gin, nd._vjp.__closure__[k].cell_contents, out=out)
    return apply


def _apply_clip(node: Tensor, k: int) -> Callable:
    return _apply_relu(node, k)  # same shape: g * mask


def _apply_abs(node: Tensor, k: int) -> Callable:
    return _apply_relu(node, k)  # g * sign


def _apply_mul_scalar(node: Tensor, k: int) -> Callable:
    def apply(nd, gin, out):
        np.multiply(gin, nd._vjp.__closure__[k].cell_contents, out=out)
    return apply


def _apply_tanh() -> Callable:
    # eager: g * (1.0 - y*y)
    def apply(nd, gin, out):
        y = nd.data
        np.multiply(y, y, out=out)
        np.subtract(1.0, out, out=out)
        np.multiply(gin, out, out=out)
    return apply


def _apply_sigmoid(aux: np.ndarray) -> Callable:
    # eager: (g * y) * (1.0 - y)  — left-associated, so a temp is required
    def apply(nd, gin, out):
        y = nd.data
        np.multiply(gin, y, out=aux)
        np.subtract(1.0, y, out=out)
        np.multiply(aux, out, out=out)
    return apply


def _apply_exp() -> Callable:
    def apply(nd, gin, out):
        np.multiply(gin, nd.data, out=out)
    return apply


def _apply_log() -> Callable:
    def apply(nd, gin, out):
        np.divide(gin, nd._prev[0].data, out=out)
    return apply


def _apply_sqrt() -> Callable:
    # eager: (g * 0.5) / y
    def apply(nd, gin, out):
        np.multiply(gin, 0.5, out=out)
        np.divide(out, nd.data, out=out)
    return apply


def _apply_neg() -> Callable:
    def apply(nd, gin, out):
        np.negative(gin, out=out)
    return apply


def _apply_pow(k: int, aux: np.ndarray) -> Callable:
    # eager: (g * e) * x**(e-1)
    def apply(nd, gin, out):
        e = nd._vjp.__closure__[k].cell_contents
        np.multiply(gin, e, out=out)
        np.power(nd._prev[0].data, e - 1, out=aux)
        np.multiply(out, aux, out=out)
    return apply


def _make_apply(op: str, node: Tensor, scratch: Callable) -> Callable | None:
    """Build the gradient-product kernel for a chainable unary op.

    ``scratch(shape, dtype, tag)`` returns a plan-persistent buffer.
    Returns None for ``add_scalar`` (identity: the running product passes
    through unchanged — eager's defensive copy does not change values).
    """
    if op == "add_scalar":
        return None
    if op in ("relu", "clip"):
        return _apply_relu(node, _cell_index(node, "mask"))
    if op == "abs":
        return _apply_abs(node, _cell_index(node, "sign"))
    if op == "mul_scalar":
        return _apply_mul_scalar(node, _cell_index(node, "other"))
    if op == "tanh":
        return _apply_tanh()
    if op == "sigmoid":
        return _apply_sigmoid(scratch(node.data.shape, node.data.dtype, "aux"))
    if op == "exp":
        return _apply_exp()
    if op == "log":
        return _apply_log()
    if op == "sqrt":
        return _apply_sqrt()
    if op == "neg":
        return _apply_neg()
    if op == "pow":
        return _apply_pow(_cell_index(node, "exponent"),
                          scratch(node.data.shape, node.data.dtype, "aux"))
    raise AssertionError(f"not a chain op: {op}")


# ---------------------------------------------------------------------------
# Gradient sinks
# ---------------------------------------------------------------------------
# A "sink" lands a freshly computed gradient contribution on a target tensor
# with _accumulate's exact semantics, but (when a slab/leaf view is planned)
# without allocating.  The first-writer decision is dynamic (``t.grad is
# None``), which keeps mixed registry/closure writer sets correct: whoever
# writes first owns the storage, later writers add in place.


def _sink_product(t: Tensor, view: np.ndarray | None, scratch: np.ndarray,
                  apply: Callable, node: Tensor, g: np.ndarray) -> None:
    """Land ``apply(node, g, ·)`` (a fresh product in eager mode) on ``t``."""
    tg = t.grad
    if tg is None:
        if view is not None:
            apply(node, g, view)
            t.grad = view
        else:
            fresh = np.empty(t.data.shape, t.data.dtype)
            apply(node, g, fresh)
            t.grad = fresh
    else:
        apply(node, g, scratch)
        np.add(tg, scratch, out=tg)


def _sink_view(t: Tensor, view: np.ndarray | None, gv: np.ndarray) -> None:
    """Land a pass-through gradient (a view of the consumer's grad) on ``t``.

    Mirrors ``_accumulate(gv)`` without ownership: first write copies.
    """
    tg = t.grad
    if tg is None:
        if view is not None:
            np.copyto(view, gv)
            t.grad = view
        else:
            t.grad = gv.astype(t.data.dtype, copy=True)
    else:
        np.add(tg, gv, out=tg)


def _sink_passthrough(t: Tensor, view: np.ndarray | None, gv: np.ndarray) -> None:
    """Like :func:`_sink_view`, but preserves ``gv``'s memory layout.

    Eager's first-write copy is ``astype(copy=True)`` with NumPy's default
    ``order='K'``: a transposed adjoint view lands as a dense array in the
    *permuted* layout, not C order.  Downstream reductions (``sum`` over
    multiple axes in ``_unbroadcast``) are layout-sensitive — pairwise
    summation blocks follow memory order — so copying such a view into a
    C-contiguous slab would change bits that eager preserves.  The slab
    fast path is therefore only taken when the layouts agree; otherwise the
    first write falls back to eager's exact heap copy.
    """
    tg = t.grad
    if tg is None and not gv.flags.c_contiguous:
        t.grad = gv.astype(t.data.dtype, copy=True)  # order='K', as eager
        return
    _sink_view(t, view, gv)


def _fire_hooks(node: Tensor) -> None:
    if node._grad_hooks and node.grad is not None:
        for hook in tuple(node._grad_hooks):
            hook(node)


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------


class _Plan:
    """One compiled step: a flat entry schedule plus planned storage."""

    __slots__ = ("entries", "closure_refs", "scheduled", "root_idx",
                 "root_buf", "chain_guard", "peak_grad_bytes", "slab_bytes",
                 "fused_chains", "fused_links", "registry_nodes",
                 "closure_nodes", "n_nodes")

    def __init__(self) -> None:
        self.entries: list[Callable[[list], None]] = []
        # (kind, a, b): kind 0 -> tape[a]; kind 1 -> tape[a]._prev[b].
        self.closure_refs: list[tuple[int, int, int]] = []
        self.scheduled: list[int] = []       # tape indices to release after
        self.root_idx = -1
        self.root_buf: np.ndarray | None = None
        self.chain_guard: list[int] = []     # tape indices that must stay hook-free
        self.peak_grad_bytes = 0
        self.slab_bytes = 0
        self.fused_chains = 0
        self.fused_links = 0
        self.registry_nodes = 0
        self.closure_nodes = 0
        self.n_nodes = 0

    # -- replay -----------------------------------------------------------

    def replay(self, tape: list[Tensor], root: Tensor,
               seed: np.ndarray | None) -> bool:
        """Execute the plan on this step's tape.  Returns False when the
        dynamic preconditions fail and the caller must run eager instead."""
        if root.grad is not None:
            return False  # pre-seeded root: accumulate semantics -> eager
        rb = self.root_buf
        if seed is None:
            np.copyto(rb, 1.0)
        else:
            seed = np.asarray(seed, dtype=root.data.dtype)
            if seed.shape != root.data.shape:
                raise ValueError(
                    f"seed gradient shape {seed.shape} != tensor shape {root.data.shape}")
            np.copyto(rb, seed)
        root.grad = rb

        prof = profiler()
        prev_phase = prof.phase
        if prof.active:
            prof.phase = "backward"
        try:
            use_closures = prof.active or any(
                tape[i]._grad_hooks for i in self.chain_guard)
            if use_closures:
                self._replay_closures(tape)
            else:
                for entry in self.entries:
                    entry(tape)
        finally:
            prof.phase = prev_phase
        return True

    def _replay_closures(self, tape: list[Tensor]) -> None:
        """Closure-schedule replay: the eager loop minus the DFS.

        Used when the op profiler is sampling (timed closures must run) or a
        grad hook appeared on a chain-fused interior node after capture.
        """
        for kind, a, b in self.closure_refs:
            node = tape[a] if kind == 0 else tape[a]._prev[b]
            if node._backward is not None and node.grad is not None:
                node._backward()
            if node._grad_hooks and node.grad is not None:
                for hook in tuple(node._grad_hooks):
                    hook(node)

    def release(self, tape: list[Tensor]) -> None:
        """Sever the traversed graph (cf. ``backward(release_tape=True)``)."""
        for i in self.scheduled:
            node = tape[i]
            node._backward = None
            node._vjp = None
            node._prev = ()


_UNCOMPILABLE = _Plan()  # sentinel: fingerprint known, permanently eager


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


class _PlanBuilder:
    def __init__(self, tape: list[Tensor], root: Tensor):
        self.tape = tape
        self.root = root
        self.ws = arena()
        self.plan = _Plan()
        self._buffers: dict[Any, np.ndarray | None] = {}  # target key -> view
        self._scratch: dict[Any, np.ndarray] = {}
        self._slab: np.ndarray | None = None

    # -- eager execution (the miss step itself) ---------------------------

    def topo_order(self) -> list[Tensor]:
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return topo

    def on_tape(self, node: Tensor) -> int:
        """Tape index of ``node``, or -1 when it is not a captured node."""
        idx = getattr(node, "_tape_idx", -1)
        if 0 <= idx < len(self.tape) and self.tape[idx] is node:
            return idx
        return -1

    def execute_eager(self, topo: list[Tensor],
                      seed: np.ndarray | None) -> list[bool]:
        """Run the backward exactly as ``Tensor.backward`` would, recording
        which scheduled nodes actually ran."""
        root = self.root
        if seed is None:
            grad = np.ones_like(root.data)
            fresh = True
        else:
            raw = seed
            grad = np.asarray(seed, dtype=root.data.dtype)
            fresh = grad is not raw
            if grad.shape != root.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {root.data.shape}")
        if root.grad is not None:
            root.grad = root.grad + grad
        else:
            root.grad = grad if fresh else grad.copy()

        ran: list[bool] = []
        prof = profiler()
        prev_phase = prof.phase
        if prof.active:
            prof.phase = "backward"
        try:
            for node in reversed(topo):
                fired = node._backward is not None and node.grad is not None
                if fired:
                    node._backward()
                if node._grad_hooks and node.grad is not None:
                    for hook in tuple(node._grad_hooks):
                        hook(node)
                ran.append(fired)
        finally:
            prof.phase = prev_phase
        return ran

    # -- storage ----------------------------------------------------------

    def scratch(self, shape, dtype, tag: str = "w") -> np.ndarray:
        """A plan-persistent scratch buffer (arena borrow, shared by key)."""
        key = (np.dtype(dtype).str, tuple(shape), tag)
        buf = self._scratch.get(key)
        if buf is None:
            buf = self.ws.take(tuple(shape), dtype)
            self._scratch[key] = buf
        return buf

    def _target_key(self, t: Tensor, consumer_idx: int, slot: int):
        ti = self.on_tape(t)
        if ti >= 0:
            return ("t", ti)
        return ("l", consumer_idx, slot)

    def plan_storage(self, schedule: list[Tensor], pos_of: dict[int, int],
                     consumers: dict[int, list[int]],
                     registry: dict[int, str],
                     chain_member_pos: set[int],
                     chain_target_pos: set[int],
                     chain_exec_pos: dict[int, int]) -> dict[Any, np.ndarray | None]:
        """Liveness-planned gradient storage.

        Interior targets written by registry entries share one arena slab via
        first-fit interval assignment; leaf targets get persistent buffers
        (they outlive the step — the optimizer reads them).  Also computes the
        theoretical liveness peak over all interior gradients.
        """
        plan = self.plan
        intervals: list[tuple[int, int, int, Any, Tensor]] = []
        events: list[tuple[int, int]] = []
        seen: set[Any] = set()
        for k, node in enumerate(schedule):
            idx = self.on_tape(node)
            if idx < 0 or idx not in registry:
                continue
            if k in chain_member_pos and k not in chain_target_pos:
                continue  # head/interior chain link: targets fold into the chain
            for slot, t in enumerate(node._prev):
                if not t.requires_grad:
                    continue
                key = self._target_key(t, idx, slot)
                if key in seen:
                    continue
                seen.add(key)
                ti = self.on_tape(t)
                interior = ti >= 0 and t._backward is not None and id(t) in pos_of
                if not interior:
                    # Leaf (or off-schedule) target: persistent buffer.
                    self._buffers[key] = self.ws.take(t.data.shape, t.data.dtype)
                    continue
                if t is self.root:
                    self._buffers[key] = None  # root grad handled separately
                    continue
                writer_positions = [pos_of[id(self.tape[c])]
                                    for c in consumers.get(ti, ())]
                birth = min(writer_positions) if writer_positions else pos_of[id(t)]
                death = chain_exec_pos.get(pos_of[id(t)], pos_of[id(t)])
                intervals.append((birth, death, t.data.nbytes, key, t))

        # Liveness peak over interior gradients that materialise on replay
        # (chain-interior grads never do): birth at the first consumer write,
        # death at the node's own execution position.
        for k, node in enumerate(schedule):
            idx = self.on_tape(node)
            if idx < 0 or node is self.root or node.grad is None:
                continue
            if k in chain_member_pos and k not in chain_exec_pos:
                continue  # interior/deep chain link: streamed, never stored
            writer_positions = [pos_of[id(self.tape[c])]
                                for c in consumers.get(idx, ())]
            birth = min(writer_positions) if writer_positions else k
            death = chain_exec_pos.get(k, k)
            events.append((birth, node.grad.nbytes))
            events.append((death + 1, -node.grad.nbytes))
        events.sort()
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        plan.peak_grad_bytes = peak

        # First-fit interval assignment into one byte slab.
        placed: list[tuple[int, int, int, int]] = []  # (off, end, birth, death)
        offsets: dict[Any, tuple[int, int]] = {}
        slab_end = 0
        for birth, death, nbytes, key, _t in sorted(intervals):
            need = max(int(nbytes), 1)
            taken = sorted(
                (off, end) for off, end, b, d in placed
                if not (d < birth or b > death))
            off = 0
            for o, e in taken:
                if off + need <= o:
                    break
                off = max(off, e)
                off = (off + _ALIGN - 1) // _ALIGN * _ALIGN
            placed.append((off, off + need, birth, death))
            offsets[key] = (off, need)
            slab_end = max(slab_end, off + need)
        plan.slab_bytes = slab_end

        views: dict[Any, np.ndarray | None] = dict(self._buffers)
        if slab_end:
            self._slab = self.ws.take((slab_end,), np.uint8)
            by_key = {key: (b, d, nb, t)
                      for b, d, nb, key, t in intervals}
            for key, (off, need) in offsets.items():
                t = by_key[key][3]
                dt = t.data.dtype
                views[key] = (self._slab[off:off + need]
                              .view(dt)[:t.data.size].reshape(t.data.shape))
        return views

    # -- entry compilation -------------------------------------------------

    def build(self, seed: np.ndarray | None) -> _Plan | None:
        """Execute the miss step eagerly and distil the plan.

        Returns None when the graph cannot be compiled (the caller then runs
        plain eager backward — note in that case this method did NOT execute
        anything yet: all rejection checks precede execution).
        """
        tape, root, plan = self.tape, self.root, self.plan
        if self.on_tape(root) < 0:
            return None
        topo = self.topo_order()
        for node in topo:
            if node._backward is not None and self.on_tape(node) < 0:
                return None  # closure node created outside capture

        ran = self.execute_eager(topo, seed)
        schedule = list(reversed(topo))
        plan.root_idx = self.on_tape(root)
        plan.n_nodes = len(schedule)
        plan.root_buf = self.ws.take(root.data.shape, root.data.dtype)

        pos_of = {id(node): k for k, node in enumerate(schedule)}
        # Topo consumers of each tape node (writers of its gradient).
        consumers: dict[int, list[int]] = {}
        leaf_ref: dict[int, tuple[int, int]] = {}
        for node in schedule:
            idx = self.on_tape(node)
            if idx < 0:
                continue
            for slot, p in enumerate(node._prev):
                pi = self.on_tape(p)
                if pi >= 0:
                    consumers.setdefault(pi, []).append(idx)
                elif id(p) not in leaf_ref:
                    leaf_ref[id(p)] = (idx, slot)

        codes = _op_codes()
        registry: dict[int, str] = {}
        for k, node in enumerate(schedule):
            if not ran[k]:
                continue
            idx = self.on_tape(node)
            if idx < 0:
                continue
            op = codes.get(id(node._vjp.__code__))
            if op is not None and self._compilable(op, node):
                registry[idx] = op
        # Root always replays through its closure (``loss.grad`` must survive
        # the step exactly as eager leaves it).
        registry.pop(plan.root_idx, None)

        chains = self._find_chains(schedule, pos_of, consumers, registry, ran)
        chain_member_pos: set[int] = set()
        chain_target_pos: set[int] = set()
        chain_exec_pos: dict[int, int] = {}
        for chain in chains:
            exec_pos = pos_of[id(chain[-1])]
            head_pos = pos_of[id(chain[0])]
            chain_exec_pos[head_pos] = exec_pos  # head grad lives to exec
            chain_target_pos.add(exec_pos)       # deepest link sinks the target
            for link in chain:
                chain_member_pos.add(pos_of[id(link)])
            plan.chain_guard.extend(self.on_tape(link) for link in chain)
        plan.fused_chains = len(chains)
        plan.fused_links = sum(len(c) for c in chains)

        views = self.plan_storage(schedule, pos_of, consumers, registry,
                                  chain_member_pos, chain_target_pos,
                                  chain_exec_pos)

        chain_at: dict[int, list[Tensor]] = {
            pos_of[id(chain[-1])]: chain for chain in chains}
        for k, node in enumerate(schedule):
            idx = self.on_tape(node)
            # Closure-schedule reference (used by the profiling replay path).
            if idx >= 0:
                plan.closure_refs.append((0, idx, 0))
                plan.scheduled.append(idx)
            else:
                # Every leaf in the schedule has at least one on-tape
                # consumer (the topo walk reached it through one).
                ci, slot = leaf_ref[id(node)]
                plan.closure_refs.append((1, ci, slot))

            if k in chain_member_pos and k not in chain_at:
                continue  # head/interior chain link: folded into chain entry
            if k in chain_at:
                self._emit_chain(chain_at[k], views)
                continue

            if idx < 0:
                self._emit_leaf_hooks(leaf_ref[id(node)])
            elif not ran[k]:
                # Structurally present but grad-less during the miss step:
                # keep the eager closure (its own None-grad check applies).
                self._emit_closure(idx, node is root)
            elif idx in registry:
                self._emit_registry(registry[idx], idx, node, views)
            else:
                self._emit_closure(idx, node is root)

        plan.registry_nodes = len(registry)
        plan.closure_nodes = sum(
            1 for k, node in enumerate(schedule)
            if ran[k] and self.on_tape(node) >= 0
            and self.on_tape(node) not in registry)
        return plan

    # -- compilability gates ----------------------------------------------

    def _compilable(self, op: str, node: Tensor) -> bool:
        g = node.grad
        if g is None or g.dtype != node.data.dtype:
            return False
        prev = node._prev
        if any(p.requires_grad and p.data.dtype != g.dtype for p in prev):
            return False
        if op not in _LAYOUT_FREE_OPS:
            # Kernels below read forward values (or zero a buffer shaped like
            # them) with ``out=`` C-order storage, while eager's fresh arrays
            # follow the operands' layout (order='K').  Equal bits, different
            # strides — and downstream reductions are layout-sensitive — so
            # only compile when every operand is C-contiguous (the closure
            # handles the rest).  Adjoint-only layout hazards are caught at
            # replay time via the grad-contiguity guards.
            if not node.data.flags.c_contiguous:
                return False
            if any(not p.data.flags.c_contiguous for p in prev):
                return False
        if op in ("add_tensor", "mul_tensor", "div_tensor"):
            return all(p.data.shape == node.data.shape for p in prev)
        if op == "matmul":
            return prev[0].data.ndim == 2 and prev[1].data.ndim == 2
        if op == "getitem":
            # np.add.at accepts any index the forward accepted.
            return True
        return True

    def _find_chains(self, schedule, pos_of, consumers, registry, ran):
        """Maximal fusable elementwise chains.

        A chain starts at a registry chain-op node and extends to its parent
        while the parent is itself a chain-op registry node whose *only*
        scheduled consumer is the current link and which carries no grad
        hooks.  The chain executes at the deepest link's schedule position,
        so every materialised write keeps its eager accumulation order.
        """
        chains: list[list[Tensor]] = []
        in_chain: set[int] = set()
        for k, node in enumerate(schedule):
            idx = self.on_tape(node)
            if idx < 0 or idx in in_chain or idx not in registry:
                continue
            if registry[idx] not in _CHAIN_OPS or not ran[k]:
                continue
            if node._grad_hooks or node is self.root:
                continue  # hooks must fire at this exact position; keep eager
            chain = [node]
            current = node
            while True:
                parent = current._prev[0]
                pi = self.on_tape(parent)
                if pi < 0 or pi in in_chain or pi not in registry:
                    break
                if registry[pi] not in _CHAIN_OPS:
                    break
                if len(consumers.get(pi, ())) != 1:
                    break
                if parent._grad_hooks or parent is self.root:
                    break
                if parent.data.shape != current.data.shape:
                    break
                chain.append(parent)
                current = parent
            if len(chain) >= 2:
                chains.append(chain)
                in_chain.update(self.on_tape(c) for c in chain)
        return chains

    # -- entry emitters ----------------------------------------------------

    def _emit_closure(self, i: int, is_root: bool) -> None:
        if is_root:
            def run(tape: list) -> None:
                node = tape[i]
                if node._backward is not None and node.grad is not None:
                    node._backward()
                _fire_hooks(node)
        else:
            def run(tape: list) -> None:
                node = tape[i]
                if node._backward is not None and node.grad is not None:
                    node._backward()
                    _fire_hooks(node)
                    node.grad = None
        self.plan.entries.append(run)

    def _emit_leaf_hooks(self, ref: tuple[int, int]) -> None:
        ci, slot = ref

        def run(tape: list) -> None:
            node = tape[ci]._prev[slot]
            if node._grad_hooks and node.grad is not None:
                for hook in tuple(node._grad_hooks):
                    hook(node)
        self.plan.entries.append(run)

    def _edge_storage(self, node_idx: int, slot: int, t: Tensor,
                      views: dict) -> tuple[np.ndarray | None, np.ndarray | None]:
        key = self._target_key(t, node_idx, slot)
        view = views.get(key)
        scr = self.scratch(t.data.shape, t.data.dtype)
        return view, scr

    def _emit_registry(self, op: str, i: int, node: Tensor, views: dict) -> None:
        emit = getattr(self, f"_emit_{op}", None)
        if emit is not None:
            emit(i, node, views)
            return
        if op in _CHAIN_OPS:
            self._emit_unary_product(op, i, node, views)
            return
        raise AssertionError(f"registry op {op} has no emitter")

    def _emit_unary_product(self, op: str, i: int, node: Tensor, views: dict) -> None:
        apply = _make_apply(op, node, self.scratch)
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, scr = self._edge_storage(i, 0, t, views)
        if apply is None:  # add_scalar: pure pass-through
            def run(tape: list) -> None:
                nd = tape[i]
                g = nd.grad
                if g is not None:
                    _sink_passthrough(nd._prev[0], view, g)
                    _fire_hooks(nd)
                    nd.grad = None
        else:
            def run(tape: list) -> None:
                nd = tape[i]
                g = nd.grad
                if g is not None:
                    if not g.flags.c_contiguous:
                        # Eager would produce an order='K' product here; the
                        # out= kernel writes C order.  Defer to the closure so
                        # downstream layout-sensitive reductions match eager.
                        nd._vjp(nd)
                    else:
                        _sink_product(nd._prev[0], view, scr, apply, nd, g)
                    _fire_hooks(nd)
                    nd.grad = None
        self.plan.entries.append(run)

    def _emit_chain(self, chain: list[Tensor], views: dict) -> None:
        """One fused entry streaming head->...->deepest gradient products."""
        codes = _op_codes()
        head_idx = self.on_tape(chain[0])
        deep = chain[-1]
        deep_idx = self.on_tape(deep)
        applies: list[tuple[int, Callable | None]] = []
        for link in chain:
            op = codes[id(link._vjp.__code__)]
            applies.append((self.on_tape(link), _make_apply(op, link, self.scratch)))
        target = deep._prev[0]
        if not target.requires_grad:  # unreachable for unary ops; stay safe
            for link in chain:
                self._emit_closure(self.on_tape(link), False)
            return
        view, scr = self._edge_storage(deep_idx, 0, target, views)
        shape, dtype = chain[0].data.shape, chain[0].data.dtype
        buf_a = self.scratch(shape, dtype, "chain_a")
        buf_b = self.scratch(shape, dtype, "chain_b")
        # add_scalar links are identity pass-throughs (apply None): drop them.
        steps = tuple((ti, ap) for ti, ap in applies if ap is not None)
        link_idxs = tuple(ti for ti, _ in applies)

        def run(tape: list) -> None:
            head = tape[head_idx]
            g = head.grad
            if g is None:
                return
            if not g.flags.c_contiguous:
                # Layout-sensitive case (see _sink_passthrough): run each
                # link's closure in eager order instead of the fused kernel.
                for li in link_idxs:
                    link = tape[li]
                    if link.grad is not None:
                        link._vjp(link)
                        link.grad = None
                return
            t = tape[deep_idx]._prev[0]
            if not steps:
                _sink_passthrough(t, view, g)
            else:
                cur = g
                for ti, ap in steps[:-1]:
                    nxt = buf_b if cur is buf_a else buf_a
                    ap(tape[ti], cur, nxt)
                    cur = nxt
                ti, ap = steps[-1]
                _sink_product(t, view, scr, ap, tape[ti], cur)
            _fire_hooks(head)
            head.grad = None
        self.plan.entries.append(run)

    # binary / n-ary emitters ---------------------------------------------

    def _emit_add_tensor(self, i: int, node: Tensor, views: dict) -> None:
        edges = []
        for slot, t in enumerate(node._prev):
            if t.requires_grad:
                view, _ = self._edge_storage(i, slot, t, views)
                edges.append((slot, view))
        edges = tuple(edges)

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                for slot, view in edges:
                    _sink_passthrough(nd._prev[slot], view, g)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_mul_tensor(self, i: int, node: Tensor, views: dict) -> None:
        edges = []
        for slot, t in enumerate(node._prev):
            if t.requires_grad:
                view, scr = self._edge_storage(i, slot, t, views)
                edges.append((slot, 1 - slot, view, scr))
        edges = tuple(edges)

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                if not g.flags.c_contiguous:
                    nd._vjp(nd)
                    _fire_hooks(nd)
                    nd.grad = None
                    return
                prev = nd._prev
                for slot, oslot, view, scr in edges:
                    t = prev[slot]
                    other = prev[oslot].data
                    tg = t.grad
                    if tg is None:
                        if view is not None:
                            np.multiply(g, other, out=view)
                            t.grad = view
                        else:
                            t.grad = g * other
                    else:
                        np.multiply(g, other, out=scr)
                        np.add(tg, scr, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_div_tensor(self, i: int, node: Tensor, views: dict) -> None:
        edges = []
        for slot, t in enumerate(node._prev):
            if t.requires_grad:
                view, scr = self._edge_storage(i, slot, t, views)
                edges.append((slot, view, scr))
        edges = tuple(edges)
        aux = self.scratch(node.data.shape, node.data.dtype, "aux")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                if not g.flags.c_contiguous:
                    nd._vjp(nd)
                    _fire_hooks(nd)
                    nd.grad = None
                    return
                a, b = nd._prev[0].data, nd._prev[1].data
                for slot, view, scr in edges:
                    t = nd._prev[slot]
                    tg = t.grad
                    out = view if (tg is None and view is not None) else scr
                    if slot == 0:
                        np.divide(g, b, out=out)             # g / b
                    else:
                        np.negative(g, out=out)              # ((-g) * a) / (b*b)
                        np.multiply(out, a, out=out)
                        np.multiply(b, b, out=aux)
                        np.divide(out, aux, out=out)
                    if tg is None:
                        t.grad = out if out is view else out.copy()
                    else:
                        np.add(tg, out, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_matmul(self, i: int, node: Tensor, views: dict) -> None:
        edges = []
        for slot, t in enumerate(node._prev):
            if t.requires_grad:
                view, scr = self._edge_storage(i, slot, t, views)
                edges.append((slot, view, scr))
        edges = tuple(edges)

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                if not g.flags.c_contiguous:
                    nd._vjp(nd)
                    _fire_hooks(nd)
                    nd.grad = None
                    return
                a, b = nd._prev[0].data, nd._prev[1].data
                for slot, view, scr in edges:
                    t = nd._prev[slot]
                    tg = t.grad
                    out = view if (tg is None and view is not None) else scr
                    if slot == 0:
                        np.matmul(g, np.swapaxes(b, -1, -2), out=out)
                    else:
                        np.matmul(np.swapaxes(a, -1, -2), g, out=out)
                    if tg is None:
                        t.grad = out if out is view else out.copy()
                    else:
                        np.add(tg, out, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_reshape(self, i: int, node: Tensor, views: dict) -> None:
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, _ = self._edge_storage(i, 0, t, views)

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                t = nd._prev[0]
                _sink_passthrough(t, view, g.reshape(t.data.shape))
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_transpose(self, i: int, node: Tensor, views: dict) -> None:
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, _ = self._edge_storage(i, 0, t, views)
        k_inv = _cell_index(node, "inverse")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                inverse = nd._vjp.__closure__[k_inv].cell_contents
                _sink_passthrough(nd._prev[0], view, g.transpose(inverse))
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_sum(self, i: int, node: Tensor, views: dict) -> None:
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, _ = self._edge_storage(i, 0, t, views)
        k_axis = _cell_index(node, "axis")
        k_keep = _cell_index(node, "keepdims")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                t = nd._prev[0]
                cl = nd._vjp.__closure__
                axis = cl[k_axis].cell_contents
                keepdims = cl[k_keep].cell_contents
                if axis is not None and not keepdims:
                    axes = (axis,) if np.isscalar(axis) else tuple(axis)
                    axes = tuple(a % t.data.ndim for a in axes)
                    g = np.expand_dims(g, tuple(sorted(axes)))
                bv = np.broadcast_to(g, t.data.shape)
                tg = t.grad
                if tg is None:
                    if view is not None:
                        np.copyto(view, bv)
                        t.grad = view
                    else:
                        t.grad = bv.copy()  # C order, as eager's .copy()
                else:
                    np.add(tg, bv, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_getitem(self, i: int, node: Tensor, views: dict) -> None:
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, scr = self._edge_storage(i, 0, t, views)
        k_index = _cell_index(node, "index")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                t = nd._prev[0]
                index = nd._vjp.__closure__[k_index].cell_contents
                tg = t.grad
                if tg is None:
                    if view is not None:
                        view[...] = 0
                        np.add.at(view, index, g)
                        t.grad = view
                    else:
                        fresh = np.zeros_like(t.data)
                        np.add.at(fresh, index, g)
                        t.grad = fresh
                else:
                    scr[...] = 0
                    np.add.at(scr, index, g)
                    np.add(tg, scr, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_take_rows(self, i: int, node: Tensor, views: dict) -> None:
        t = node._prev[0]
        if not t.requires_grad:
            self._emit_closure(i, False)
            return
        view, scr = self._edge_storage(i, 0, t, views)
        k_idx = _cell_index(node, "indices")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                t = nd._prev[0]
                indices = nd._vjp.__closure__[k_idx].cell_contents
                flat = indices.reshape(-1)
                gf = g.reshape(-1, *t.data.shape[1:])
                tg = t.grad
                if tg is None:
                    if view is not None:
                        view[...] = 0
                        np.add.at(view, flat, gf)
                        t.grad = view
                    else:
                        fresh = np.zeros_like(t.data)
                        np.add.at(fresh, flat, gf)
                        t.grad = fresh
                else:
                    scr[...] = 0
                    np.add.at(scr, flat, gf)
                    np.add(tg, scr, out=tg)
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)

    def _emit_stack(self, i: int, node: Tensor, views: dict) -> None:
        edges = []
        for slot, t in enumerate(node._prev):
            if t.requires_grad:
                view, _ = self._edge_storage(i, slot, t, views)
                edges.append((slot, view))
        edges = tuple(edges)
        k_axis = _cell_index(node, "axis")

        def run(tape: list) -> None:
            nd = tape[i]
            g = nd.grad
            if g is not None:
                axis = nd._vjp.__closure__[k_axis].cell_contents
                grads = np.moveaxis(g, axis, 0)
                for slot, view in edges:
                    _sink_passthrough(nd._prev[slot], view, grads[slot])
                _fire_hooks(nd)
                nd.grad = None
        self.plan.entries.append(run)


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _fingerprint(tape: list[Tensor], root: Tensor) -> tuple | None:
    """Structural identity of a captured step graph.

    Encodes, per node: VJP code identity, result shape/dtype, and the wiring
    of each parent (tape index for captured parents; shape/dtype for leaves)
    plus the parent's requires-grad bit (conditional gradient flow inside
    closures keys off it).  Values (weights, masks, indices) are deliberately
    excluded — they may change every step under one plan.
    """
    root_idx = getattr(root, "_tape_idx", -1)
    if not (0 <= root_idx < len(tape) and tape[root_idx] is root):
        return None
    parts: list = [root_idx]
    append = parts.append
    for i, node in enumerate(tape):
        append(id(node._vjp.__code__))
        append(node.data.dtype.num)
        append(node.data.shape)
        for p in node._prev:
            pi = getattr(p, "_tape_idx", -1)
            if 0 <= pi < i and tape[pi] is p:
                append(pi * 2 + (1 if p.requires_grad else 0))
            else:
                append(-1)
                append(p.data.dtype.num)
                append(p.data.shape)
                append(p.requires_grad)
        append(-9)
    return tuple(parts)


# ---------------------------------------------------------------------------
# The public executor
# ---------------------------------------------------------------------------


class StepExecutor:
    """Capture-compile-replay driver for one training-step call site.

    Usage::

        executor = StepExecutor()
        ...
        loss = executor.step(lambda: loss_fn(model, batch),
                             pre_backward=model.zero_grad)

    Under any kernel mode except ``compiled`` this is exactly
    ``loss = forward(); pre_backward(); loss.backward(seed)``.  Under
    ``compiled`` the forward is captured, the step graph fingerprinted, and
    identical steps replay a compiled plan; mismatches (partial batches,
    graph changes) transparently fall back to eager execution.
    """

    MAX_PLANS = 64

    def __init__(self, name: str = "step", *, release_tape: bool = True):
        self.name = name
        self.release_tape = release_tape
        self._plans: dict[tuple, _Plan] = {}
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    # -- metrics -----------------------------------------------------------

    def _metrics(self):
        from ..telemetry import current_metrics

        return current_metrics()

    def _record_step(self, kind: str) -> None:
        m = self._metrics()
        m.counter(f"compile_cache_{kind}").inc()
        total = self.hits + self.misses + self.fallbacks
        if total:
            m.gauge("compile_cache_hit_rate").set(self.hits / total)

    def _record_plan(self, plan: _Plan) -> None:
        m = self._metrics()
        m.gauge("compile_plans").set(len(self._plans))
        m.gauge("compile_peak_grad_bytes").set(
            max((p.peak_grad_bytes for p in self._plans.values()), default=0))
        m.gauge("compile_plan_slab_bytes").set(
            sum(p.slab_bytes for p in self._plans.values()))
        m.gauge("compile_fused_chains").set(
            sum(p.fused_chains for p in self._plans.values()))
        from ..telemetry import current_events

        current_events().publish(
            "compile_plan", executor=self.name, nodes=plan.n_nodes,
            registry_nodes=plan.registry_nodes, closure_nodes=plan.closure_nodes,
            fused_chains=plan.fused_chains, fused_links=plan.fused_links,
            peak_grad_bytes=plan.peak_grad_bytes, slab_bytes=plan.slab_bytes,
        )

    def stats(self) -> dict[str, Any]:
        plans = [p for p in self._plans.values() if p is not _UNCOMPILABLE]
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "hit_rate": self.hits / max(self.hits + self.misses + self.fallbacks, 1),
            "plans": len(plans),
            "peak_grad_bytes": max((p.peak_grad_bytes for p in plans), default=0),
            "slab_bytes": sum(p.slab_bytes for p in plans),
            "fused_chains": sum(p.fused_chains for p in plans),
            "fused_links": sum(p.fused_links for p in plans),
            "registry_nodes": sum(p.registry_nodes for p in plans),
            "closure_nodes": sum(p.closure_nodes for p in plans),
        }

    # -- the step ----------------------------------------------------------

    def step(self, forward: Callable[[], Tensor],
             seed: np.ndarray | None = None, *,
             pre_backward: Callable[[], None] | None = None) -> Tensor:
        """Run ``forward()`` then backpropagate from its result.

        ``pre_backward`` (e.g. ``model.zero_grad``) runs between the forward
        and the backward, exactly as in the eager training-loop idiom.
        """
        if kernel_mode() != "compiled":
            loss = forward()
            if pre_backward is not None:
                pre_backward()
            loss.backward(seed)
            return loss

        tape: list[Tensor] = []
        previous = _tensor_module._set_tape(tape)
        try:
            loss = forward()
        finally:
            _tensor_module._set_tape(previous)
        if pre_backward is not None:
            pre_backward()

        fp = _fingerprint(tape, loss)
        if fp is None:
            self.fallbacks += 1
            self._record_step("fallbacks")
            loss.backward(seed, release_tape=self.release_tape)
            return loss

        plan = self._plans.get(fp)
        if plan is None:
            if len(self._plans) >= self.MAX_PLANS:
                self.fallbacks += 1
                self._record_step("fallbacks")
                loss.backward(seed, release_tape=self.release_tape)
                return loss
            built = _PlanBuilder(tape, loss).build(seed)
            if built is None:
                self._plans[fp] = _UNCOMPILABLE
                self.fallbacks += 1
                self._record_step("fallbacks")
                loss.backward(seed, release_tape=self.release_tape)
                return loss
            self._plans[fp] = built
            self.misses += 1
            self._record_step("misses")
            self._record_plan(built)
            if self.release_tape:
                built.release(tape)
            return loss

        if plan is _UNCOMPILABLE:
            self.fallbacks += 1
            self._record_step("fallbacks")
            loss.backward(seed, release_tape=self.release_tape)
            return loss

        if plan.replay(tape, loss, seed):
            self.hits += 1
            self._record_step("hits")
            if self.release_tape:
                plan.release(tape)
        else:
            self.fallbacks += 1
            self._record_step("fallbacks")
            loss.backward(seed, release_tape=self.release_tape)
        return loss
