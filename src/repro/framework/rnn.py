"""Recurrent layers: LSTM cell and multi-layer sequence LSTM.

GNMT (§3.1.3) is the suite's only RNN workload; these layers provide the
LSTM-with-skip-connections building blocks it needs.  The implementation
composes ``Tensor`` primitives, so gradients flow through time without any
bespoke BPTT code.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, ModuleList, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step with fused gate projection.

    Gates are computed as one ``(4H)``-wide affine map of ``[x, h]`` and
    split into input/forget/cell/output parts.  Forget-gate bias starts at
    1.0, the standard trick for stable early training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.w_h = Parameter(init.xavier_uniform((4 * hidden_size, hidden_size), rng))
        bias = np.zeros(4 * hidden_size, dtype=np.float32)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_x.T + h_prev @ self.w_h.T + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def zero_state(self, batch: int) -> tuple[Tensor, Tensor]:
        z = np.zeros((batch, self.hidden_size), dtype=np.float32)
        return Tensor(z), Tensor(z.copy())


class LSTM(Module):
    """Multi-layer LSTM over ``(T, N, input)`` sequences.

    ``residual`` adds skip connections between stacked layers from layer 2
    on — the GNMT trick the paper references ("1024 LSTM cells with skip
    connections").
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int,
                 rng: np.random.Generator, residual: bool = False):
        super().__init__()
        if residual and num_layers > 1 and hidden_size != input_size:
            # Residual stacking needs matching widths past the first layer,
            # which it has by construction; only the first layer may differ.
            pass
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.residual = residual
        self.cells = ModuleList(
            [LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng) for i in range(num_layers)]
        )

    def forward(
        self,
        x: Tensor,
        states: list[tuple[Tensor, Tensor]] | None = None,
        mask: np.ndarray | None = None,
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the stack over a full sequence.

        Parameters
        ----------
        x: ``(T, N, input_size)`` input sequence.
        states: optional initial per-layer ``(h, c)`` states.
        mask: optional ``(T, N)`` validity mask; masked steps carry the
            previous state forward (standard padded-batch handling).

        Returns ``(outputs, final_states)`` with outputs ``(T, N, H)``.
        """
        t_steps, batch = x.shape[0], x.shape[1]
        if states is None:
            states = [cell.zero_state(batch) for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(t_steps):
            inp = x[t]
            step_mask = None if mask is None else mask[t].astype(np.float32)[:, None]
            for layer, cell in enumerate(self.cells):
                h, c = cell(inp, states[layer])
                if step_mask is not None:
                    h_prev, c_prev = states[layer]
                    h = h * step_mask + h_prev * (1.0 - step_mask)
                    c = c * step_mask + c_prev * (1.0 - step_mask)
                states[layer] = (h, c)
                if self.residual and layer >= 1:
                    inp = h + inp
                else:
                    inp = h
            outputs.append(inp)
        return Tensor.stack(outputs, axis=0), states
