"""Attention layers: multi-head attention and Transformer blocks.

Implements the architecture of Vaswani et al. (2017) at configurable width —
the suite's non-recurrent translation benchmark (§3.1.3) is a stack of these
blocks ("each block is composed of multi-head attention and point-wise,
fully connected layers").
"""

from __future__ import annotations

import numpy as np

from . import init
from .functional import softmax
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor

__all__ = [
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "positional_encoding",
    "causal_mask",
]

_NEG_INF = -1e9


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal position encodings, shape ``(length, dim)``."""
    position = np.arange(length)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim), dtype=np.float32)
    enc[:, 0::2] = np.sin(position * div)
    enc[:, 1::2] = np.cos(position * div[: (dim - dim // 2)])
    return enc


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask, True where attention is allowed."""
    return np.tril(np.ones((length, length), dtype=bool))


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` parallel heads.

    Inputs are ``(N, T, d_model)``.  ``mask`` broadcasts against the
    ``(N, heads, T_q, T_k)`` attention logits; False entries are masked out.
    """

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_q = Linear(d_model, d_model, rng, init_fn=init.xavier_uniform)
        self.w_k = Linear(d_model, d_model, rng, init_fn=init.xavier_uniform)
        self.w_v = Linear(d_model, d_model, rng, init_fn=init.xavier_uniform)
        self.w_o = Linear(d_model, d_model, rng, init_fn=init.xavier_uniform)
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def _split(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None) -> Tensor:
        n, tq, _ = query.shape
        q = self._split(self.w_q(query))  # (N, H, Tq, dh)
        k = self._split(self.w_k(key))
        v = self._split(self.w_v(value))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))
        if mask is not None:
            bias = np.where(mask, 0.0, _NEG_INF).astype(np.float32)
            scores = scores + Tensor(bias)
        attn = softmax(scores, axis=-1)
        if self.drop is not None:
            attn = self.drop(attn)
        context = attn @ v  # (N, H, Tq, dh)
        merged = context.transpose(0, 2, 1, 3).reshape(n, tq, self.d_model)
        return self.w_o(merged)


class FeedForward(Module):
    """Position-wise two-layer MLP with ReLU."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, rng, init_fn=init.xavier_uniform)
        self.fc2 = Linear(d_ff, d_model, rng, init_fn=init.xavier_uniform)
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        h = self.fc1(x).relu()
        if self.drop is not None:
            h = self.drop(h)
        return self.fc2(h)


class TransformerEncoderLayer(Module):
    """Pre-norm encoder block: self-attention + feed-forward, each residual."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, num_heads, rng, dropout)
        self.ff = FeedForward(d_model, d_ff, rng, dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)

    def forward(self, x: Tensor, src_mask: np.ndarray | None = None) -> Tensor:
        h = self.norm1(x)
        x = x + self.self_attn(h, h, h, mask=src_mask)
        x = x + self.ff(self.norm2(x))
        return x


class TransformerDecoderLayer(Module):
    """Pre-norm decoder block: causal self-attention, cross-attention, FFN."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, num_heads, rng, dropout)
        self.cross_attn = MultiHeadAttention(d_model, num_heads, rng, dropout)
        self.ff = FeedForward(d_model, d_ff, rng, dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        tgt_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        h = self.norm1(x)
        x = x + self.self_attn(h, h, h, mask=tgt_mask)
        h = self.norm2(x)
        x = x + self.cross_attn(h, memory, memory, mask=memory_mask)
        x = x + self.ff(self.norm3(x))
        return x
