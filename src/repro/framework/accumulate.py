"""Gradient accumulation: large effective batches on small memory.

§3.4 makes the minibatch size the suite's scale knob; real systems that
cannot fit the target global batch per step emulate it by accumulating
gradients over micro-batches before the optimizer step.  Accumulated
training is mathematically equivalent to one large-batch step when the
loss is a mean over samples — a property the tests pin down.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module
from .optim import Optimizer
from .tensor import Tensor

__all__ = ["GradientAccumulator"]


class GradientAccumulator:
    """Accumulate micro-batch gradients; step once per ``accumulation_steps``.

    Usage::

        acc = GradientAccumulator(model, optimizer, accumulation_steps=4)
        for micro_batch in loader:
            loss = compute_loss(model, micro_batch)
            stepped = acc.backward(loss)   # True on the step that applied

    Each micro-batch loss is scaled by ``1/accumulation_steps`` so the
    applied gradient equals the gradient of the mean loss over the full
    effective batch.
    """

    def __init__(self, model: Module, optimizer: Optimizer, accumulation_steps: int):
        if accumulation_steps < 1:
            raise ValueError("accumulation_steps must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.accumulation_steps = int(accumulation_steps)
        self._micro_step = 0

    @property
    def pending_micro_steps(self) -> int:
        """Micro-batches accumulated since the last optimizer step."""
        return self._micro_step

    def backward(self, loss: Tensor) -> bool:
        """Accumulate one micro-batch; returns True if a step was applied."""
        (loss * (1.0 / self.accumulation_steps)).backward()
        self._micro_step += 1
        if self._micro_step < self.accumulation_steps:
            return False
        self.optimizer.step()
        self.model.zero_grad()
        self._micro_step = 0
        return True

    def flush(self) -> bool:
        """Apply a step from any leftover micro-batches (end of epoch).

        The leftover gradient is rescaled so it still averages over the
        micro-batches actually seen.  Returns True if a step was applied.
        """
        if self._micro_step == 0:
            return False
        correction = self.accumulation_steps / self._micro_step
        for p in self.model.parameters():
            if p.grad is not None:
                p.grad *= correction
        self.optimizer.step()
        self.model.zero_grad()
        self._micro_step = 0
        return True
