"""Module system: parameter containers with PyTorch-like ergonomics.

A :class:`Module` registers :class:`Parameter` and sub-``Module`` attributes
automatically, exposes ``parameters()`` / ``named_parameters()`` for
optimizers, ``train()`` / ``eval()`` mode switching, and a flat
``state_dict`` for checkpointing and the equivalence checks the Closed
division requires.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor, is_inference_mode

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a learnable model weight (always requires grad)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        # Parameters track grads even inside no_grad(); only the explicit
        # forward-only inference mode suppresses that, so a model built
        # for serving carries no grad bookkeeping anywhere.
        self.requires_grad = not is_inference_mode()


class Module:
    """Base class for all network components."""

    # Class-level empty default so the per-call hook check is one truthiness
    # test and modules that never register hooks pay nothing.
    _forward_hooks: tuple = ()

    def __init__(self) -> None:
        self.training = True

    # -- attribute walking --------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode ----------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradient & state management ------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
            p.data = state[name].astype(p.data.dtype).copy()

    # -- hooks -----------------------------------------------------------------
    def register_forward_hook(self, hook) -> "callable":
        """Call ``hook(module, args, output)`` after every forward pass.

        The profiling/observability attachment point: telemetry wrappers
        register here instead of subclassing.  Returns a zero-argument
        remover.  Hooks may replace the output by returning non-None.
        """
        if not isinstance(self._forward_hooks, list):
            self._forward_hooks = []
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove

    # -- call protocol ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in tuple(self._forward_hooks):
                replacement = hook(self, args, out)
                if replacement is not None:
                    out = replacement
        return out


class Sequential(Module):
    """Chain modules; each must map one tensor to one tensor."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """A registered list of modules (no implicit forward)."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.items = list(modules or [])

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, idx: int) -> Module:
        return self.items[idx]

    def __len__(self) -> int:
        return len(self.items)
