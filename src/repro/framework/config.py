"""Framework-wide kernel configuration: the ``REPRO_KERNEL_MODE`` switch.

The paper's §2.2.4 observation — math libraries win by choosing
mathematically-equivalent-but-faster algorithms — is made executable here.
Every hot kernel (convolution, pooling, linear, the SGD update, and the
``DataLoader`` batch assembly) consults :func:`kernel_mode` and picks one of
three bit-identical implementations:

- ``naive`` — the straightforward reference path: every call allocates its
  own scratch (the original seed behaviour).  Always available as the
  gold standard the other two modes are checked against.
- ``reuse`` — identical math, but scratch buffers are borrowed from the
  per-thread :class:`~repro.framework.workspace.Workspace` arena and GEMMs
  write into reused outputs (``out=``).  Values are bit-identical to
  ``naive``.
- ``fused`` — ``reuse`` plus fused kernels (``conv2d_bias_relu``,
  ``linear_bias_act``, the in-place SGD/momentum update) that collapse
  several autograd nodes into one.  Still bit-identical.
- ``compiled`` — ``fused`` plus whole-step graph capture and compiled
  replay (see :mod:`repro.framework.compile`): training steps driven
  through a :class:`~repro.framework.compile.StepExecutor` fingerprint the
  autograd tape once, then replay a pre-resolved plan with liveness-planned
  gradient storage and automatically fused elementwise backward chains.
  Still bit-identical; non-matching steps fall back to eager replay.

The mode is process-wide (read once from the environment, overridable with
:func:`set_kernel_mode` / :func:`use_kernel_mode`), not per-tensor: the
Closed division requires one declared configuration per run.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["KERNEL_MODES", "kernel_mode", "set_kernel_mode", "use_kernel_mode"]

KERNEL_MODES = ("naive", "reuse", "fused", "compiled")

_DEFAULT_MODE = "fused"


def _validated(mode: str) -> str:
    if mode not in KERNEL_MODES:
        raise ValueError(f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}")
    return mode


_MODE = _validated(os.environ.get("REPRO_KERNEL_MODE", _DEFAULT_MODE))


def kernel_mode() -> str:
    """The active kernel mode (``naive`` | ``reuse`` | ``fused`` | ``compiled``)."""
    return _MODE


def set_kernel_mode(mode: str) -> str:
    """Set the process-wide kernel mode; returns the previous mode."""
    global _MODE
    previous = _MODE
    _MODE = _validated(mode)
    return previous


@contextlib.contextmanager
def use_kernel_mode(mode: str):
    """Temporarily switch kernel mode for the enclosed extent (tests, benches)."""
    previous = set_kernel_mode(mode)
    try:
        yield mode
    finally:
        set_kernel_mode(previous)
