"""Data pipeline: datasets, seeded shuffling, minibatch loading.

The paper's timing rules (§3.2.1) distinguish *reformatting* (untimed,
done once) from *per-session augmentation* (timed, must not be hoisted out).
:class:`DataLoader` therefore applies augmentation lazily at batch-assembly
time, and the dataset protocol exposes raw samples only.

Epoch traversal is seeded: Figures 2/3 vary only the seed, so the random
data order (one of the paper's named sources of run-to-run variance,
§2.2.3) must be controlled by it.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from typing import Callable, Iterator, Sequence

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_val_split"]


class ArrayDataset:
    """A dataset backed by parallel arrays (features, labels, ...)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("need at least one array")
        n = len(arrays[0])
        for a in arrays:
            if len(a) != n:
                raise ValueError("all arrays must have equal length")
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, idx):
        items = tuple(a[idx] for a in self.arrays)
        return items if len(items) > 1 else items[0]


def train_val_split(dataset: ArrayDataset, val_fraction: float, rng: np.random.Generator):
    """Random split into (train, val) ``ArrayDataset`` pair."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    n = len(dataset)
    perm = rng.permutation(n)
    n_val = max(int(round(n * val_fraction)), 1)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    train = ArrayDataset(*(a[train_idx] for a in dataset.arrays))
    val = ArrayDataset(*(a[val_idx] for a in dataset.arrays))
    return train, val


class DataLoader:
    """Seeded minibatch iterator with optional per-batch augmentation.

    Each epoch reshuffles with a generator derived from ``(seed, epoch)``,
    so traversal order is reproducible per-run yet differs across epochs.
    ``augment(batch_arrays, rng) -> batch_arrays`` runs inside iteration —
    i.e. inside the timed region, as §3.2.1 requires.

    **Epoch semantics.** ``self.epoch`` advances only after a *complete*
    pass; abandoning an iterator early (``break``, ``next()`` probing) does
    not burn an epoch seed, so the next full traversal replays the same
    order.  Use :meth:`set_epoch` to position the schedule explicitly
    (e.g. when resuming a run).

    **Fast paths** (active unless ``REPRO_KERNEL_MODE=naive``):

    - with ``shuffle=False`` and no augmentation over an
      :class:`ArrayDataset`, batches are contiguous zero-copy slices of the
      underlying arrays — treat them as read-only;
    - with ``reuse_buffers=True``, full-size batches are gathered into
      preallocated per-loader buffers instead of fresh fancy-index copies.
      Each yielded batch is then only valid until the next iteration, so
      callers must consume batches immediately (as ``run_epoch`` loops do)
      and must not hold references across steps, e.g. ``list(loader)``.

    **Prefetch.** ``prefetch=1`` (opt-in) assembles and augments batches on
    a background thread, up to ``prefetch`` ahead of the consumer, so the
    data pipeline overlaps with compute.  The producer runs the *same*
    sequential code path — same shuffle permutation, same per-epoch RNG,
    same augment call order — so batch contents, order, and RNG draws are
    bit-identical to the non-prefetch loader.  Combined with
    ``reuse_buffers``, the loader rotates ``prefetch + 2`` buffer sets (one
    being consumed, ``prefetch`` queued, one being filled), preserving the
    valid-until-next-iteration contract without copies.  Abandoning the
    iterator early stops and joins the producer thread; start any
    fork-based worker pool (e.g. ``ShardedDataParallel``) *before* iterating
    a prefetching loader so the fork happens while no producer is running.
    """

    def __init__(
        self,
        dataset: ArrayDataset | Sequence,
        batch_size: int,
        *,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
        augment: Callable[..., tuple] | None = None,
        reuse_buffers: bool = False,
        prefetch: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if prefetch < 0:
            raise ValueError("prefetch cannot be negative")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.seed = int(seed)
        self.drop_last = drop_last
        self.augment = augment
        self.reuse_buffers = reuse_buffers
        self.prefetch = int(prefetch)
        self.epoch = 0
        self._buf_ring: list[tuple[np.ndarray, ...]] | None = None
        self._buf_idx = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def set_epoch(self, epoch: int) -> None:
        """Position the shuffle schedule: the next pass uses this epoch's seed."""
        self.epoch = int(epoch)

    def _fast_mode(self) -> bool:
        from .config import kernel_mode

        return kernel_mode() != "naive"

    def _gather(self, idx: np.ndarray) -> tuple:
        """Assemble one batch, reusing per-loader buffers when enabled."""
        if (
            self.reuse_buffers
            and isinstance(self.dataset, ArrayDataset)
            and len(idx) == self.batch_size
            and self._fast_mode()
        ):
            if self._buf_ring is None:
                # With prefetch, batches are alive in three places at once
                # (consumer, queue, producer) — rotate enough buffer sets
                # that none is overwritten while still referenced.
                depth = self.prefetch + 2 if self.prefetch > 0 else 1
                self._buf_ring = [
                    tuple(
                        np.empty((self.batch_size,) + a.shape[1:], dtype=a.dtype)
                        for a in self.dataset.arrays
                    )
                    for _ in range(depth)
                ]
            bufs = self._buf_ring[self._buf_idx]
            self._buf_idx = (self._buf_idx + 1) % len(self._buf_ring)
            for a, buf in zip(self.dataset.arrays, bufs):
                np.take(a, idx, axis=0, out=buf)
            return bufs
        batch = self.dataset[idx]
        return batch if isinstance(batch, tuple) else (batch,)

    def _produce(self) -> Iterator[tuple]:
        n = len(self.dataset)
        rng = np.random.default_rng((self.seed, self.epoch))
        # Sequential unaugmented traversal of plain arrays needs no index
        # gather at all: contiguous slices are zero-copy views.
        zero_copy = (
            not self.shuffle
            and self.augment is None
            and isinstance(self.dataset, ArrayDataset)
            and self._fast_mode()
        )
        order = rng.permutation(n) if self.shuffle else None
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            if self.drop_last and stop - start < self.batch_size:
                break
            if zero_copy:
                batch = tuple(a[start:stop] for a in self.dataset.arrays)
            else:
                idx = order[start:stop] if order is not None else np.arange(start, stop)
                batch = self._gather(idx)
            if self.augment is not None:
                batch = self.augment(*batch, rng=rng)
                if not isinstance(batch, tuple):
                    batch = (batch,)
            yield batch if len(batch) > 1 else batch[0]
        # Reached only on a completed pass: an abandoned iterator does not
        # advance the schedule (see class docstring).
        self.epoch += 1

    def __iter__(self) -> Iterator[tuple]:
        if self.prefetch <= 0:
            yield from self._produce()
            return

        out: queue_mod.Queue = queue_mod.Queue(maxsize=self.prefetch)
        stop = threading.Event()
        done = object()

        def producer() -> None:
            try:
                for batch in self._produce():
                    while not stop.is_set():
                        try:
                            out.put(batch, timeout=0.05)
                            break
                        except queue_mod.Full:
                            continue
                    if stop.is_set():
                        return
                out.put(done)
            except BaseException as exc:  # surfaced on the consumer side
                out.put(exc)

        thread = threading.Thread(target=producer, daemon=True,
                                  name="repro-dataloader-prefetch")
        thread.start()
        try:
            while True:
                item = out.get()
                if item is done:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            # Unblock a producer stuck on a full queue, then reap it.
            try:
                while True:
                    out.get_nowait()
            except queue_mod.Empty:
                pass
            thread.join(timeout=5.0)
