"""Data pipeline: datasets, seeded shuffling, minibatch loading.

The paper's timing rules (§3.2.1) distinguish *reformatting* (untimed,
done once) from *per-session augmentation* (timed, must not be hoisted out).
:class:`DataLoader` therefore applies augmentation lazily at batch-assembly
time, and the dataset protocol exposes raw samples only.

Epoch traversal is seeded: Figures 2/3 vary only the seed, so the random
data order (one of the paper's named sources of run-to-run variance,
§2.2.3) must be controlled by it.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_val_split"]


class ArrayDataset:
    """A dataset backed by parallel arrays (features, labels, ...)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("need at least one array")
        n = len(arrays[0])
        for a in arrays:
            if len(a) != n:
                raise ValueError("all arrays must have equal length")
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, idx):
        items = tuple(a[idx] for a in self.arrays)
        return items if len(items) > 1 else items[0]


def train_val_split(dataset: ArrayDataset, val_fraction: float, rng: np.random.Generator):
    """Random split into (train, val) ``ArrayDataset`` pair."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    n = len(dataset)
    perm = rng.permutation(n)
    n_val = max(int(round(n * val_fraction)), 1)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    train = ArrayDataset(*(a[train_idx] for a in dataset.arrays))
    val = ArrayDataset(*(a[val_idx] for a in dataset.arrays))
    return train, val


class DataLoader:
    """Seeded minibatch iterator with optional per-batch augmentation.

    Each epoch reshuffles with a generator derived from ``(seed, epoch)``,
    so traversal order is reproducible per-run yet differs across epochs.
    ``augment(batch_arrays, rng) -> batch_arrays`` runs inside iteration —
    i.e. inside the timed region, as §3.2.1 requires.
    """

    def __init__(
        self,
        dataset: ArrayDataset | Sequence,
        batch_size: int,
        *,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
        augment: Callable[..., tuple] | None = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.seed = int(seed)
        self.drop_last = drop_last
        self.augment = augment
        self.epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple]:
        n = len(self.dataset)
        rng = np.random.default_rng((self.seed, self.epoch))
        order = rng.permutation(n) if self.shuffle else np.arange(n)
        self.epoch += 1
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            batch = self.dataset[idx]
            if not isinstance(batch, tuple):
                batch = (batch,)
            if self.augment is not None:
                batch = self.augment(*batch, rng=rng)
                if not isinstance(batch, tuple):
                    batch = (batch,)
            yield batch if len(batch) > 1 else batch[0]
