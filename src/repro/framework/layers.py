"""Standard neural-network layers.

Each layer takes an explicit ``np.random.Generator`` at construction so that
parameter initialization is reproducible — the Closed division (§4.2.1)
requires identical initialization across submissions, and Figures 2/3 vary
*only* the seed.
"""

from __future__ import annotations

import numpy as np

from . import init
from .conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from .functional import dropout
from .fused import conv2d_bias_relu, linear_bias_act
from .module import Module, Parameter
from .tensor import Tensor

_LAYER_ACTS = ("none", "relu")


def _validated_act(activation: str) -> str:
    if activation not in _LAYER_ACTS:
        raise ValueError(f"activation must be one of {_LAYER_ACTS}, got {activation!r}")
    return activation

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
]


class Linear(Module):
    """Affine map ``y = act(x W^T + b)``.

    ``activation="relu"`` folds the nonlinearity into the layer so the
    ``fused`` kernel mode can run the whole map as one graph node
    (bit-identical to the unfused composition in every mode).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True,
                 init_fn=init.kaiming_uniform, activation: str = "none"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((out_features, in_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None
        self.activation = _validated_act(activation)

    def forward(self, x: Tensor) -> Tensor:
        return linear_bias_act(x, self.weight, self.bias, act=self.activation)


class Conv2d(Module):
    """2-D convolution layer (square kernels)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0, bias: bool = True,
                 activation: str = "none"):
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None
        self.activation = _validated_act(activation)

    def forward(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return conv2d_bias_relu(x, self.weight, self.bias,
                                    stride=self.stride, pad=self.padding)
        return conv2d(x, self.weight, self.bias, stride=self.stride, pad=self.padding)


class _BatchNorm(Module):
    """Shared batch-norm machinery (axes differ between 1d/2d)."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def _normalize(self, x: Tensor, axes: tuple[int, ...], shape: tuple[int, ...]) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            # The moving-average decay here is itself a hyperparameter the
            # paper lists as an example of layer-level HPs (§2.1).
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        xhat = (x - mean) / (var + self.eps).sqrt()
        return xhat * self.gamma.reshape(shape) + self.beta.reshape(shape)


class BatchNorm2d(_BatchNorm):
    """Batch normalization over (N, H, W) for each channel of NCHW input."""

    def forward(self, x: Tensor) -> Tensor:
        c = x.shape[1]
        return self._normalize(x, axes=(0, 2, 3), shape=(1, c, 1, 1))


class BatchNorm1d(_BatchNorm):
    """Batch normalization over the batch axis of (N, C) input."""

    def forward(self, x: Tensor) -> Tensor:
        c = x.shape[1]
        return self._normalize(x, axes=(0,), shape=(1, c))


class LayerNorm(Module):
    """Layer normalization over the trailing feature axis."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mean) / (var + self.eps).sqrt()
        return xhat * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows.

    The paper singles recommendation workloads out as "large embedding
    tables followed by linear layers" (§3.1.5); this layer is their core.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, std: float = 0.05):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=std))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError(f"embedding ids out of range [0, {self.num_embeddings})")
        return self.weight.take_rows(ids)


class Dropout(Module):
    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0,1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.rng, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
