"""A from-scratch NumPy deep-learning framework.

This package stands in for the PyTorch/TensorFlow substrate the MLPerf
reference implementations are built on: tensors with reverse-mode autodiff,
the layer zoo the seven benchmarks need, optimizers (including both §2.2.4
momentum formulations and LARS), LR schedules, and a seeded data pipeline.
"""

from .tensor import Tensor, inference_mode, is_grad_enabled, is_inference_mode, no_grad
from .module import Module, ModuleList, Parameter, Sequential
from . import functional
from . import init
from .config import KERNEL_MODES, kernel_mode, set_kernel_mode, use_kernel_mode
from .workspace import Workspace, arena, record_arena_gauges
from .conv import conv2d, conv2d_naive, conv2d_same, max_pool2d, avg_pool2d, global_avg_pool2d, im2col, col2im
from .fused import conv2d_bias_relu, linear_bias_act
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from .rnn import LSTM, LSTMCell
from .attention import (
    FeedForward,
    MultiHeadAttention,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    positional_encoding,
)
from .optim import LARS, SGD, Adam, Optimizer, clip_grad_norm, MOMENTUM_STYLES
from .schedules import (
    ConstantLR,
    CosineLR,
    LRScheduler,
    NoamLR,
    StepDecayLR,
    WarmupStepLR,
    linear_scaled_lr,
)
from .data import ArrayDataset, DataLoader, train_val_split
from .checkpoint import load_checkpoint, save_checkpoint
from .accumulate import GradientAccumulator

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "functional",
    "init",
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "Workspace",
    "arena",
    "record_arena_gauges",
    "conv2d",
    "conv2d_naive",
    "conv2d_same",
    "conv2d_bias_relu",
    "linear_bias_act",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2d",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "LSTM",
    "LSTMCell",
    "FeedForward",
    "MultiHeadAttention",
    "TransformerDecoderLayer",
    "TransformerEncoderLayer",
    "causal_mask",
    "positional_encoding",
    "LARS",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "MOMENTUM_STYLES",
    "ConstantLR",
    "CosineLR",
    "LRScheduler",
    "NoamLR",
    "StepDecayLR",
    "WarmupStepLR",
    "linear_scaled_lr",
    "ArrayDataset",
    "DataLoader",
    "train_val_split",
    "load_checkpoint",
    "save_checkpoint",
    "GradientAccumulator",
]
