"""Convolution and pooling primitives (NCHW layout).

The production path implements convolution with im2col + GEMM — the same
"algorithmic choice" the paper discusses in §2.2.4 when noting that math
libraries offer many mathematically-equivalent convolution algorithms.  A
deliberately naive direct convolution is also provided as the gold-standard
reference (used in tests and the im2col-vs-naive ablation bench).

Every public kernel dispatches on :func:`repro.framework.config.kernel_mode`:

- ``naive`` runs the original allocate-per-call implementations below;
- ``reuse``/``fused`` run arena-backed variants that draw all scratch
  (padded images, patch columns, GEMM outputs, gradient scratch) from the
  per-thread :class:`~repro.framework.workspace.Workspace` and unfold
  patches directly into the patch-major layout the GEMM wants — skipping
  the big ``ascontiguousarray`` transpose copies of the naive path.

The arena variants are **bit-identical** to ``naive``: same element values,
same accumulation order, same dtypes (enforced by tests).  The only
behavioural difference is that a graph produced in ``reuse``/``fused`` mode
recycles its scratch when its backward runs, so calling ``backward()``
twice through the same conv node is unsupported outside ``naive`` mode.
"""

from __future__ import annotations

import numpy as np

from .config import kernel_mode
from .prof import profiled_op
from .tensor import Tensor, is_grad_enabled
from .workspace import arena

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_naive",
    "conv2d_same",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``(N,C,H,W)`` into ``(N, C*kh*kw, OH*OW)`` patch columns."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    img = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    col = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            col[:, :, i, j] = img[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    return col.reshape(n, c * kh * kw, oh * ow)


def col2im(
    col: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Adjoint of :func:`im2col`: fold patch columns back, accumulating overlaps."""
    n, c, h, w = x_shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    col = col.reshape(n, c, kh, kw, oh, ow)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for i in range(kh):
        for j in range(kw):
            img[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += col[:, :, i, j]
    return img[:, :, pad : pad + h, pad : pad + w]


# ---------------------------------------------------------------------------
# Arena-backed helpers (reuse/fused modes)
# ---------------------------------------------------------------------------

def _uniform_float_dtype(x: Tensor, weight: Tensor, bias: Tensor | None):
    """The shared float dtype of the operands, or ``None`` when mixed.

    The arena kernels add bias in place, which would silently demote a
    mixed-precision promotion the naive path performs; mixed-dtype calls
    therefore fall back to the reference implementation.
    """
    dt = x.dtype
    if dt.kind != "f" or weight.dtype != dt:
        return None
    if bias is not None and bias.dtype != dt:
        return None
    return dt


def _pad_into(ws, x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-padded copy of ``x`` in an arena borrow (caller releases)."""
    n, c, h, w = x.shape
    buf = ws.take((n, c, h + 2 * pad, w + 2 * pad), x.dtype)
    buf[...] = 0
    buf[:, :, pad : pad + h, pad : pad + w] = x
    return buf


def _unfold_patch_major(img: np.ndarray, kh: int, kw: int, stride: int,
                        oh: int, ow: int, colT: np.ndarray) -> None:
    """Unfold ``img`` directly into patch-major ``(N, OH, OW, C, kh, kw)``.

    Flattening ``colT`` to ``(N*OH*OW, C*kh*kw)`` yields *exactly* the
    array the naive path builds with ``ascontiguousarray(transpose(...))``
    — same values, one pass, no transpose copy.
    """
    for i in range(kh):
        for j in range(kw):
            src = img[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
            colT[:, :, :, :, i, j] = src.transpose(0, 2, 3, 1)


def _conv2d_arena(x: Tensor, weight: Tensor, bias: Tensor | None,
                  stride: int, pad: int, dt, relu: bool = False) -> Tensor:
    """im2col + GEMM convolution with arena scratch and ``out=`` GEMMs.

    With ``relu=True`` this is the fused conv→bias→ReLU kernel: the mask is
    applied to the GEMM output in place and one backward closure handles
    the whole chain (bit-identical to ``relu(conv2d(...))``).
    """
    ws = arena()
    n, c = x.shape[0], x.shape[1]
    f, _, kh, kw = weight.shape
    h, w = x.shape[2], x.shape[3]
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    p = oh * ow
    ck = c * kh * kw

    if pad:
        img = _pad_into(ws, x.data, pad)
    else:
        img = x.data
    colT = ws.take((n, oh, ow, c, kh, kw), dt)
    _unfold_patch_major(img, kh, kw, stride, oh, ow, colT)
    if pad:
        ws.release(img)

    col_t = colT.reshape(n * p, ck)
    w2 = weight.data.reshape(f, ck)
    out_flat = ws.take((n * p, f), dt)
    np.matmul(col_t, w2.T, out=out_flat)
    if bias is not None:
        out_flat += bias.data
    mask = None
    if relu:
        mask = ws.take((n * p, f), np.bool_)
        np.greater(out_flat, 0, out=mask)
        out_flat *= mask
    out = np.empty((n, f, oh, ow), dtype=dt)
    out.reshape(n, f, p)[...] = out_flat.reshape(n, p, f).transpose(0, 2, 1)
    ws.release(out_flat)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not (is_grad_enabled() and any(t.requires_grad for t in parents)):
        ws.release(colT)
        if mask is not None:
            ws.release(mask)
        return Tensor(out)

    def backward(result: Tensor) -> None:
        g2 = ws.take((n * p, f), dt)
        g2.reshape(n, p, f)[...] = result.grad.reshape(n, f, p).transpose(0, 2, 1)
        if mask is not None:
            g2 *= mask
            ws.release(mask)
        if bias is not None:
            bias._accumulate(g2.sum(axis=0))
        if weight.requires_grad:
            wg = ws.take((f, ck), dt)
            np.matmul(g2.T, col_t, out=wg)
            weight._accumulate(wg.reshape(weight.shape))
            ws.release(wg)
        if x.requires_grad:
            dcolT = ws.take((n * p, ck), dt)
            np.matmul(g2, w2, out=dcolT)
            cT = dcolT.reshape(n, oh, ow, c, kh, kw)
            # Fold channels-last (contiguous inner axis), then hand the
            # NCHW transpose view to _accumulate — same per-element add
            # order as col2im, one less transpose copy.
            img_cl = ws.take((n, h + 2 * pad, w + 2 * pad, c), dt)
            img_cl[...] = 0
            for i in range(kh):
                for j in range(kw):
                    img_cl[:, i : i + stride * oh : stride,
                           j : j + stride * ow : stride, :] += cT[:, :, :, :, i, j]
            x._accumulate(
                img_cl[:, pad : pad + h, pad : pad + w, :].transpose(0, 3, 1, 2))
            ws.release(dcolT)
            ws.release(img_cl)
        ws.release(g2)
        ws.release(colT)

    return Tensor._make(out, parents, backward)


# ---------------------------------------------------------------------------
# Public kernels
# ---------------------------------------------------------------------------

@profiled_op("conv2d")
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, pad: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) via im2col + batched GEMM.

    ``x``: ``(N, C, H, W)``; ``weight``: ``(F, C, kh, kw)``; ``bias``: ``(F,)``.
    """
    if x.shape[1] != weight.shape[1]:
        raise ValueError(f"input channels {x.shape[1]} != weight channels {weight.shape[1]}")
    if kernel_mode() != "naive":
        dt = _uniform_float_dtype(x, weight, bias)
        if dt is not None:
            return _conv2d_arena(x, weight, bias, stride, pad, dt)
    return _conv2d_reference(x, weight, bias, stride, pad)


def _conv2d_reference(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int, pad: int) -> Tensor:
    """The allocate-per-call reference implementation (``naive`` mode)."""
    n = x.shape[0]
    f, c, kh, kw = weight.shape
    oh = (x.shape[2] + 2 * pad - kh) // stride + 1
    ow = (x.shape[3] + 2 * pad - kw) // stride + 1

    p = oh * ow
    ck = c * kh * kw
    col = im2col(x.data, kh, kw, stride, pad)  # (N, CK, P)
    # Flatten batch and spatial dims into one big GEMM: (N*P, CK) @ (CK, F).
    col_t = np.ascontiguousarray(col.transpose(0, 2, 1)).reshape(n * p, ck)
    w2 = weight.data.reshape(f, ck)
    out_flat = col_t @ w2.T  # (N*P, F)
    if bias is not None:
        out_flat = out_flat + bias.data
    out = out_flat.reshape(n, p, f).transpose(0, 2, 1).reshape(n, f, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(result: Tensor) -> None:
        g2 = np.ascontiguousarray(
            result.grad.reshape(n, f, p).transpose(0, 2, 1)
        ).reshape(n * p, f)
        if bias is not None:
            bias._accumulate(g2.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((g2.T @ col_t).reshape(weight.shape))
        if x.requires_grad:
            dcol = (g2 @ w2).reshape(n, p, ck).transpose(0, 2, 1)
            x._accumulate(col2im(dcol, x.shape, kh, kw, stride, pad))

    return Tensor._make(out, parents, backward)


def conv2d_naive(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, pad: int = 0) -> Tensor:
    """Direct convolution with explicit spatial loops.

    Mathematically identical to :func:`conv2d`; orders of magnitude slower.
    Kept as the easy-to-audit reference implementation and the baseline of
    the convolution-algorithm ablation.
    """
    f, c, kh, kw = weight.shape
    n = x.shape[0]
    oh = (x.shape[2] + 2 * pad - kh) // stride + 1
    ow = (x.shape[3] + 2 * pad - kw) // stride + 1
    img = np.pad(x.data, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x.data
    out = np.zeros((n, f, oh, ow), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            patch = img[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,fchw->nf", patch, weight.data)
    if bias is not None:
        out += bias.data.reshape(1, f, 1, 1)
    # Reuse the im2col adjoint: the two algorithms share gradients exactly.
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(result: Tensor) -> None:
        # im2col/w2 are built *here*, not at forward time: under no_grad
        # this closure is never created, so eval-mode naive conv skips the
        # whole unfold allocation.  (Gradients therefore read x.data and
        # weight.data as of backward time — which, in the standard
        # forward/backward/step cycle, is when they are needed anyway.)
        col = im2col(x.data, kh, kw, stride, pad)
        w2 = weight.data.reshape(f, -1)
        g = result.grad.reshape(n, f, oh * ow)
        if bias is not None:
            bias._accumulate(g.sum(axis=(0, 2)))
        if weight.requires_grad:
            weight._accumulate(np.matmul(g, col.transpose(0, 2, 1)).sum(axis=0).reshape(weight.shape))
        if x.requires_grad:
            x._accumulate(col2im(np.matmul(w2.T[None], g), x.shape, kh, kw, stride, pad))

    return Tensor._make(out, parents, backward)


def conv2d_same(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1,
                convention: str = "tf") -> Tensor:
    """"SAME" convolution with explicit asymmetric-padding convention.

    §2.2.4: "PyTorch and Tensorflow have different interpretations of
    asymmetric padding, creating difficulties in porting model weights
    between frameworks."  When SAME padding needs an odd total (e.g.
    stride-2 over an even extent), the extra row/column must go somewhere:

    - ``convention="tf"`` pads the extra at the **bottom/right** (the
      TensorFlow rule);
    - ``convention="torch_port"`` pads the extra at the **top/left** (what
      a naive port using symmetric-padding frameworks effectively does).

    The two produce different outputs from identical weights whenever the
    required padding is asymmetric — the porting pitfall, executable.
    """
    if convention not in ("tf", "torch_port"):
        raise ValueError(f"unknown padding convention {convention!r}")
    _, _, kh, kw = weight.shape
    n, c, h, w = x.shape
    oh = -(-h // stride)  # ceil division: SAME output size
    ow = -(-w // stride)
    pad_h = max((oh - 1) * stride + kh - h, 0)
    pad_w = max((ow - 1) * stride + kw - w, 0)
    if convention == "tf":
        pads = ((0, 0), (0, 0), (pad_h // 2, pad_h - pad_h // 2),
                (pad_w // 2, pad_w - pad_w // 2))
    else:
        pads = ((0, 0), (0, 0), (pad_h - pad_h // 2, pad_h // 2),
                (pad_w - pad_w // 2, pad_w // 2))
    padded = x.pad(pads)
    return conv2d(padded, weight, bias, stride=stride, pad=0)


def _pool_unfold(ws, x: Tensor, kernel: int, stride: int, oh: int, ow: int) -> np.ndarray:
    """Arena-backed channel-major unfold for pooling: ``(N*C, k*k, OH*OW)``."""
    n, c, h, w = x.shape
    x4 = x.data.reshape(n * c, h, w)
    col = ws.take((n * c, kernel * kernel, oh * ow), x.dtype)
    col4 = col.reshape(n * c, kernel, kernel, oh, ow)
    for i in range(kernel):
        for j in range(kernel):
            col4[:, i, j] = x4[:, i : i + stride * oh : stride, j : j + stride * ow : stride]
    return col


def _pool_fold(ws, dcol: np.ndarray, n: int, c: int, h: int, w: int,
               kernel: int, stride: int, oh: int, ow: int) -> np.ndarray:
    """Arena-backed adjoint of :func:`_pool_unfold` (caller releases result)."""
    img = ws.take((n * c, h, w), dcol.dtype)
    img[...] = 0
    d5 = dcol.reshape(n * c, kernel, kernel, oh, ow)
    for i in range(kernel):
        for j in range(kernel):
            img[:, i : i + stride * oh : stride, j : j + stride * ow : stride] += d5[:, i, j]
    return img


@profiled_op("max_pool2d")
def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if kernel_mode() != "naive" and x.dtype.kind == "f":
        return _max_pool2d_arena(x, kernel, stride, oh, ow)
    col = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    col = col.reshape(n * c, kernel * kernel, oh * ow)
    arg = col.argmax(axis=1)  # (N*C, OH*OW)
    out = np.take_along_axis(col, arg[:, None, :], axis=1).reshape(n, c, oh, ow)

    def backward(result: Tensor) -> None:
        if not x.requires_grad:
            return
        g = result.grad.reshape(n * c, 1, oh * ow)
        dcol = np.zeros_like(col)
        np.put_along_axis(dcol, arg[:, None, :], g, axis=1)
        dx = col2im(dcol, (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def _max_pool2d_arena(x: Tensor, kernel: int, stride: int, oh: int, ow: int) -> Tensor:
    ws = arena()
    n, c, h, w = x.shape
    p = oh * ow
    kk = kernel * kernel
    col = _pool_unfold(ws, x, kernel, stride, oh, ow)
    arg = ws.take((n * c, p), np.intp)
    np.argmax(col, axis=1, out=arg)
    out = np.take_along_axis(col, arg.reshape(n * c, 1, p), axis=1).reshape(n, c, oh, ow)
    ws.release(col)  # backward only needs the argmax indices, not the values

    if not (is_grad_enabled() and x.requires_grad):
        ws.release(arg)
        return Tensor(out)

    def backward(result: Tensor) -> None:
        if x.requires_grad:
            g = result.grad.reshape(n * c, 1, p)
            dcol = ws.take((n * c, kk, p), x.dtype)
            dcol[...] = 0
            np.put_along_axis(dcol, arg.reshape(n * c, 1, p), g, axis=1)
            img = _pool_fold(ws, dcol, n, c, h, w, kernel, stride, oh, ow)
            x._accumulate(img.reshape(n, c, h, w))
            ws.release(dcol)
            ws.release(img)
        ws.release(arg)

    return Tensor._make(out, (x,), backward)


@profiled_op("avg_pool2d")
def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if kernel_mode() != "naive" and x.dtype.kind == "f":
        return _avg_pool2d_arena(x, kernel, stride, oh, ow)
    col = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    col = col.reshape(n * c, kernel * kernel, oh * ow)
    out = col.mean(axis=1).reshape(n, c, oh, ow)
    scale = 1.0 / (kernel * kernel)

    def backward(result: Tensor) -> None:
        if not x.requires_grad:
            return
        g = result.grad.reshape(n * c, 1, oh * ow)
        dcol = np.broadcast_to(g * scale, col.shape).astype(col.dtype)
        dx = col2im(dcol, (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def _avg_pool2d_arena(x: Tensor, kernel: int, stride: int, oh: int, ow: int) -> Tensor:
    ws = arena()
    n, c, h, w = x.shape
    p = oh * ow
    kk = kernel * kernel
    col = _pool_unfold(ws, x, kernel, stride, oh, ow)
    out = col.mean(axis=1).reshape(n, c, oh, ow)
    ws.release(col)  # the average's adjoint needs only shapes
    scale = 1.0 / kk

    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out)

    def backward(result: Tensor) -> None:
        if not x.requires_grad:
            return
        g = result.grad.reshape(n * c, 1, p)
        dcol = ws.take((n * c, kk, p), x.dtype)
        dcol[...] = g * scale
        img = _pool_fold(ws, dcol, n, c, h, w, kernel, stride, oh, ow)
        x._accumulate(img.reshape(n, c, h, w))
        ws.release(dcol)
        ws.release(img)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: ``(N,C,H,W) -> (N,C)``."""
    return x.mean(axis=(2, 3))
