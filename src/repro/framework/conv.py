"""Convolution and pooling primitives (NCHW layout).

The production path implements convolution with im2col + GEMM — the same
"algorithmic choice" the paper discusses in §2.2.4 when noting that math
libraries offer many mathematically-equivalent convolution algorithms.  A
deliberately naive direct convolution is also provided as the gold-standard
reference (used in tests and the im2col-vs-naive ablation bench).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_naive",
    "conv2d_same",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``(N,C,H,W)`` into ``(N, C*kh*kw, OH*OW)`` patch columns."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    img = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    col = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            col[:, :, i, j] = img[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    return col.reshape(n, c * kh * kw, oh * ow)


def col2im(
    col: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Adjoint of :func:`im2col`: fold patch columns back, accumulating overlaps."""
    n, c, h, w = x_shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    col = col.reshape(n, c, kh, kw, oh, ow)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for i in range(kh):
        for j in range(kw):
            img[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += col[:, :, i, j]
    return img[:, :, pad : pad + h, pad : pad + w]


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, pad: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) via im2col + batched GEMM.

    ``x``: ``(N, C, H, W)``; ``weight``: ``(F, C, kh, kw)``; ``bias``: ``(F,)``.
    """
    n = x.shape[0]
    f, c, kh, kw = weight.shape
    if x.shape[1] != c:
        raise ValueError(f"input channels {x.shape[1]} != weight channels {c}")
    oh = (x.shape[2] + 2 * pad - kh) // stride + 1
    ow = (x.shape[3] + 2 * pad - kw) // stride + 1

    p = oh * ow
    ck = c * kh * kw
    col = im2col(x.data, kh, kw, stride, pad)  # (N, CK, P)
    # Flatten batch and spatial dims into one big GEMM: (N*P, CK) @ (CK, F).
    col_t = np.ascontiguousarray(col.transpose(0, 2, 1)).reshape(n * p, ck)
    w2 = weight.data.reshape(f, ck)
    out_flat = col_t @ w2.T  # (N*P, F)
    if bias is not None:
        out_flat = out_flat + bias.data
    out = out_flat.reshape(n, p, f).transpose(0, 2, 1).reshape(n, f, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(result: Tensor) -> None:
        g2 = np.ascontiguousarray(
            result.grad.reshape(n, f, p).transpose(0, 2, 1)
        ).reshape(n * p, f)
        if bias is not None:
            bias._accumulate(g2.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((g2.T @ col_t).reshape(weight.shape))
        if x.requires_grad:
            dcol = (g2 @ w2).reshape(n, p, ck).transpose(0, 2, 1)
            x._accumulate(col2im(dcol, x.shape, kh, kw, stride, pad))

    return Tensor._make(out, parents, backward)


def conv2d_naive(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, pad: int = 0) -> Tensor:
    """Direct convolution with explicit spatial loops.

    Mathematically identical to :func:`conv2d`; orders of magnitude slower.
    Kept as the easy-to-audit reference implementation and the baseline of
    the convolution-algorithm ablation.
    """
    f, c, kh, kw = weight.shape
    n = x.shape[0]
    oh = (x.shape[2] + 2 * pad - kh) // stride + 1
    ow = (x.shape[3] + 2 * pad - kw) // stride + 1
    img = np.pad(x.data, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x.data
    out = np.zeros((n, f, oh, ow), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            patch = img[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,fchw->nf", patch, weight.data)
    if bias is not None:
        out += bias.data.reshape(1, f, 1, 1)
    # Reuse the im2col adjoint: the two algorithms share gradients exactly.
    parents = (x, weight) if bias is None else (x, weight, bias)
    col = im2col(x.data, kh, kw, stride, pad)
    w2 = weight.data.reshape(f, -1)

    def backward(result: Tensor) -> None:
        g = result.grad.reshape(n, f, oh * ow)
        if bias is not None:
            bias._accumulate(g.sum(axis=(0, 2)))
        if weight.requires_grad:
            weight._accumulate(np.matmul(g, col.transpose(0, 2, 1)).sum(axis=0).reshape(weight.shape))
        if x.requires_grad:
            x._accumulate(col2im(np.matmul(w2.T[None], g), x.shape, kh, kw, stride, pad))

    return Tensor._make(out, parents, backward)


def conv2d_same(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1,
                convention: str = "tf") -> Tensor:
    """"SAME" convolution with explicit asymmetric-padding convention.

    §2.2.4: "PyTorch and Tensorflow have different interpretations of
    asymmetric padding, creating difficulties in porting model weights
    between frameworks."  When SAME padding needs an odd total (e.g.
    stride-2 over an even extent), the extra row/column must go somewhere:

    - ``convention="tf"`` pads the extra at the **bottom/right** (the
      TensorFlow rule);
    - ``convention="torch_port"`` pads the extra at the **top/left** (what
      a naive port using symmetric-padding frameworks effectively does).

    The two produce different outputs from identical weights whenever the
    required padding is asymmetric — the porting pitfall, executable.
    """
    if convention not in ("tf", "torch_port"):
        raise ValueError(f"unknown padding convention {convention!r}")
    _, _, kh, kw = weight.shape
    n, c, h, w = x.shape
    oh = -(-h // stride)  # ceil division: SAME output size
    ow = -(-w // stride)
    pad_h = max((oh - 1) * stride + kh - h, 0)
    pad_w = max((ow - 1) * stride + kw - w, 0)
    if convention == "tf":
        pads = ((0, 0), (0, 0), (pad_h // 2, pad_h - pad_h // 2),
                (pad_w // 2, pad_w - pad_w // 2))
    else:
        pads = ((0, 0), (0, 0), (pad_h - pad_h // 2, pad_h // 2),
                (pad_w - pad_w // 2, pad_w // 2))
    padded = x.pad(pads)
    return conv2d(padded, weight, bias, stride=stride, pad=0)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    col = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    col = col.reshape(n * c, kernel * kernel, oh * ow)
    arg = col.argmax(axis=1)  # (N*C, OH*OW)
    out = np.take_along_axis(col, arg[:, None, :], axis=1).reshape(n, c, oh, ow)

    def backward(result: Tensor) -> None:
        g = result.grad.reshape(n * c, 1, oh * ow)
        dcol = np.zeros_like(col)
        np.put_along_axis(dcol, arg[:, None, :], g, axis=1)
        dx = col2im(dcol, (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    col = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    col = col.reshape(n * c, kernel * kernel, oh * ow)
    out = col.mean(axis=1).reshape(n, c, oh, ow)
    scale = 1.0 / (kernel * kernel)

    def backward(result: Tensor) -> None:
        g = result.grad.reshape(n * c, 1, oh * ow)
        dcol = np.broadcast_to(g * scale, col.shape).astype(col.dtype)
        dx = col2im(dcol, (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: ``(N,C,H,W) -> (N,C)``."""
    return x.mean(axis=(2, 3))
