"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the numerical heart of the framework substrate: a ``Tensor``
wraps an ``np.ndarray`` and records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients through arbitrary compositions
of the primitives defined here.

The design follows the classic tape-based approach: every differentiable
operation returns a new ``Tensor`` whose ``_backward`` closure knows how to
accumulate gradients into the operation's inputs, and ``backward`` walks the
graph in reverse topological order.  All heavy lifting is vectorized NumPy;
there are no per-element Python loops on hot paths.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .prof import profiled_op, profiler

__all__ = ["Tensor", "no_grad", "inference_mode", "is_grad_enabled",
           "is_inference_mode", "set_alloc_tracker"]

_GRAD_ENABLED = True
_INFERENCE_MODE = False

# Tensor-construction hook for per-phase memory accounting.  None (the
# default) keeps ``Tensor.__init__`` at a single global check; the
# telemetry session installs the profiler's tracker only while profiling.
_ALLOC_TRACKER: Callable[[int], None] | None = None

# Graph-capture tape.  When a list is installed here (by the compiled step
# executor, see :mod:`repro.framework.compile`), every tensor wired into the
# autodiff graph is appended in creation order and remembers its position in
# ``_tape_idx``.  None (the default) keeps ``_make`` at one global check.
_TAPE: "list[Tensor] | None" = None


def _set_tape(tape: "list[Tensor] | None"):
    """Install (or remove, with None) the graph-capture tape.

    Returns the previous tape so capture extents can nest/restore.  This is
    framework-internal plumbing for :class:`repro.framework.compile.StepExecutor`.
    """
    global _TAPE
    previous = _TAPE
    _TAPE = tape
    return previous


def set_alloc_tracker(tracker: Callable[[int], None] | None):
    """Install a ``tracker(nbytes)`` called per tensor construction.

    Returns the previous tracker so callers can restore it (the
    install/restore pair lives in ``Telemetry.activate``).
    """
    global _ALLOC_TRACKER
    previous = _ALLOC_TRACKER
    _ALLOC_TRACKER = tracker
    return previous


class no_grad:
    """Context manager disabling graph construction (for eval loops)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


class inference_mode:
    """Context manager for forward-only serving; stronger than :class:`no_grad`.

    Inside the extent there is *no* gradient bookkeeping at all: operations
    record no tape nodes (as under ``no_grad``), but additionally
    ``requires_grad`` never propagates — even :class:`~repro.framework.module.Parameter`
    construction and explicit ``Tensor(x, requires_grad=True)`` yield
    ``requires_grad=False`` tensors, and calling :meth:`Tensor.backward`
    raises immediately instead of walking an empty graph.  Forward results
    are bit-identical to a training-mode forward (asserted by test): the
    mode changes what is *recorded*, never what is *computed*.
    """

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED, _INFERENCE_MODE
        self._prev = (_GRAD_ENABLED, _INFERENCE_MODE)
        _GRAD_ENABLED = False
        _INFERENCE_MODE = True
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED, _INFERENCE_MODE
        _GRAD_ENABLED, _INFERENCE_MODE = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def is_inference_mode() -> bool:
    """Return whether the forward-only inference mode is active."""
    return _INFERENCE_MODE


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may both prepend axes and stretch length-1 axes; the adjoint
    of a broadcast is a sum over the broadcasted axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    if (
        dtype is None
        and isinstance(value, (int, float))
        and not isinstance(value, (bool, np.generic))
    ):
        # Python scalars coerce to float32 so that a scalar operand never
        # silently promotes a float32 network to float64 (0-d float64
        # arrays are not "weak" under NumPy promotion rules).  Mixing with
        # float64 tensors still promotes correctly to float64.
        return np.asarray(value, dtype=np.float32)
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype.kind in "iub" and dtype is None:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Integer input is promoted to ``float32``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "_grad_hooks", "_vjp", "_tape_idx")
    __array_priority__ = 100  # make ndarray defer to Tensor in mixed ops

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = data if isinstance(data, np.ndarray) else _as_array(data)
        if _ALLOC_TRACKER is not None:
            _ALLOC_TRACKER(self.data.nbytes)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name
        self._grad_hooks: list[Callable[["Tensor"], None]] | None = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def register_grad_hook(self, hook: Callable[["Tensor"], None]) -> Callable[[], None]:
        """Call ``hook(tensor)`` when this tensor's gradient is final.

        "Final" means: during a :meth:`backward` pass in which this tensor
        participates, every consumer of the tensor has propagated its
        contribution — no further accumulation into ``self.grad`` will
        happen for that pass.  This is the attachment point for gradient
        bucketing: a data-parallel engine can start reducing a parameter's
        gradient while the rest of the backward pass is still running
        (compute/communication overlap).  Hooks fire once per backward pass
        that reaches the tensor; a tensor outside the traversed graph never
        fires.  Returns a zero-argument remover.
        """
        if self._grad_hooks is None:
            self._grad_hooks = []
        self._grad_hooks.append(hook)

        def remove() -> None:
            if self._grad_hooks and hook in self._grad_hooks:
                self._grad_hooks.remove(hook)

        return remove

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        """Create a result tensor wired into the autodiff graph."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and backward is not None:
            out._prev = tuple(parents)
            out._backward = lambda: backward(out)
            if _TAPE is not None:
                # ``_vjp`` keeps the *raw* adjoint (``_backward`` may later be
                # wrapped by the profiler); its ``__code__`` identifies the op
                # across steps for the compiled executor's registry.
                out._vjp = backward
                out._tape_idx = len(_TAPE)
                _TAPE.append(out)
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad`` (lazily allocated).

        ``owned=True`` asserts that ``grad`` is a freshly allocated array the
        caller will never touch again and that aliases no other live gradient
        — the first accumulation may then take ownership instead of paying an
        ``astype(..., copy=True)`` duplicate.  Pass-through adjoints (views of
        the consumer's ``out.grad``, slices, transposes) must keep the default:
        taking ownership there would alias two tensors' gradients.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if owned and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None, *,
                 release_tape: bool = False) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a sum of its
        elements); for scalar losses this is the conventional seed of 1.0.

        ``release_tape=True`` severs the traversed graph afterwards: every
        visited interior node drops its ``_backward`` closure and parent
        links, so activation arrays (and arena borrows captured in closures)
        become collectible immediately instead of surviving until the next
        forward rebinds the Python names holding them.  The graph cannot be
        backpropagated again after release; leaf gradients are untouched.
        """
        if _INFERENCE_MODE:
            raise RuntimeError(
                "backward() inside inference_mode: no tape was recorded"
            )
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            # np.ones_like is a fresh allocation owned by this frame: seed it
            # directly instead of paying a same-size copy per step.
            grad = np.ones_like(self.data)
            seed_fresh = True
        else:
            raw = grad
            grad = np.asarray(grad, dtype=self.data.dtype)
            # asarray only copies when it casts; a caller-held array must
            # still be defensively copied below.
            seed_fresh = grad is not raw
            if grad.shape != self.data.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if self.grad is not None:
            self.grad = self.grad + grad
        else:
            self.grad = grad if seed_fresh else grad.copy()
        # While the reverse walk runs, forward-path records from ops built
        # inside backward closures belong to the backward phase.
        prof = profiler()
        prev_phase = prof.phase
        if prof.active:
            prof.phase = "backward"
        try:
            # Reverse topological order guarantees every consumer of ``node``
            # has already propagated when ``node`` is visited — so at that
            # point ``node.grad`` is final for this pass and its grad hooks
            # may fire (leaf parameters fire roughly in reverse forward
            # order, which is what gradient bucketing relies on for overlap).
            for node in reversed(topo):
                if node._backward is not None and node.grad is not None:
                    node._backward()
                if node._grad_hooks and node.grad is not None:
                    for hook in tuple(node._grad_hooks):
                        hook(node)
        finally:
            prof.phase = prev_phase
        if release_tape:
            for node in topo:
                if node._backward is not None:
                    node._backward = None
                    node._vjp = None
                    node._prev = ()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @staticmethod
    def _is_scalar(value) -> bool:
        # Pure Python scalars only: NumPy scalars (np.float64 subclasses
        # float) are strongly typed and would change promotion semantics.
        return isinstance(value, (int, float)) and not isinstance(value, (bool, np.generic))

    def __add__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            # Scalar fast path: NumPy weak promotion keeps the tensor dtype
            # (no silent float64 upcast) and full scalar precision.
            def backward_s(out: Tensor) -> None:
                self._accumulate(out.grad)

            return Tensor._make(self.data + other, (self,), backward_s)
        other = Tensor._coerce(other)

        def backward(out: Tensor) -> None:
            g = out.grad
            ga = _unbroadcast(g, self.shape)
            self._accumulate(ga, owned=ga is not g)
            gb = _unbroadcast(g, other.shape)
            other._accumulate(gb, owned=gb is not g)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            return self + (-other)
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            return (-self) + other
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            def backward_s(out: Tensor) -> None:
                self._accumulate(out.grad * other, owned=True)

            return Tensor._make(self.data * other, (self,), backward_s)
        other = Tensor._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape), owned=True)
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape), owned=True)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            return self * (1.0 / other)
        other = Tensor._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad / other.data, self.shape), owned=True)
            other._accumulate(
                _unbroadcast(-out.grad * self.data / (other.data * other.data), other.shape),
                owned=True,
            )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        if Tensor._is_scalar(other):
            inv = self ** -1.0
            return inv * other
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1),
                             owned=True)

        return Tensor._make(np.power(self.data, exponent), (self,), backward)

    @profiled_op("gemm")
    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)

        def backward(out: Tensor) -> None:
            a, b, g = self.data, other.data, out.grad
            if a.ndim == 1 and b.ndim == 1:  # dot product -> scalar
                self._accumulate(g * b, owned=True)
                other._accumulate(g * a, owned=True)
                return
            if a.ndim == 1:
                a2 = a[None, :]
                ga = (g[None, ...] if g.ndim == b.ndim - 1 else g) @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, a2.shape).reshape(a.shape), owned=True)
                gb = np.swapaxes(a2, -1, -2) @ (g[None, ...] if g.ndim == b.ndim - 1 else g)
                other._accumulate(_unbroadcast(gb, b.shape), owned=True)
                return
            if b.ndim == 1:
                b2 = b[:, None]
                g2 = g[..., None]
                self._accumulate(_unbroadcast(g2 @ np.swapaxes(b2, -1, -2), a.shape), owned=True)
                gb = np.swapaxes(a, -1, -2) @ g2
                other._accumulate(_unbroadcast(gb, b2.shape).reshape(b.shape), owned=True)
                return
            self._accumulate(_unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape), owned=True)
            other._accumulate(_unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape), owned=True)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        result = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * out.data, owned=True)

        return Tensor._make(result, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data, owned=True)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        result = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / out.data, owned=True)

        return Tensor._make(result, (self,), backward)

    @profiled_op("tanh")
    def tanh(self) -> "Tensor":
        result = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - out.data * out.data), owned=True)

        return Tensor._make(result, (self,), backward)

    @profiled_op("sigmoid")
    def sigmoid(self) -> "Tensor":
        # Numerically stable in both tails.
        result = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0)) / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * out.data * (1.0 - out.data), owned=True)

        return Tensor._make(result, (self,), backward)

    @profiled_op("relu")
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask, owned=True)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * sign, owned=True)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask, owned=True)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                grad = np.expand_dims(grad, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(grad, self.shape).copy(), owned=True)

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        result = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            expanded = result if keepdims or axis is None else np.expand_dims(
                result, axis if np.isscalar(axis) else tuple(axis)
            )
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)  # split ties evenly
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis if np.isscalar(axis) else tuple(axis))
            self._accumulate(mask * grad, owned=True)

        return Tensor._make(result, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad, owned=True)

        return Tensor._make(self.data[index], (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` as for :func:`np.pad`."""
        widths = tuple(tuple(w) for w in pad_width)

        def backward(out: Tensor) -> None:
            slices = tuple(
                slice(before, dim + before) for (before, _), dim in zip(widths, self.shape)
            )
            self._accumulate(out.grad[slices])

        return Tensor._make(np.pad(self.data, widths), (self,), backward)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * out.ndim
                index[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(index)])

        return Tensor._make(
            np.concatenate([t.data for t in tensors], axis=axis), tensors, backward
        )

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]

        def backward(out: Tensor) -> None:
            grads = np.moveaxis(out.grad, axis, 0)
            for t, g in zip(tensors, grads):
                t._accumulate(g)

        return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tensors, backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a, b = Tensor._coerce(a), Tensor._coerce(b)
        condition = np.asarray(condition)

        def backward(out: Tensor) -> None:
            a._accumulate(_unbroadcast(out.grad * condition, a.shape), owned=True)
            b._accumulate(_unbroadcast(out.grad * (~condition), b.shape), owned=True)

        return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)

    # ------------------------------------------------------------------
    # Gather / scatter (for embeddings)
    # ------------------------------------------------------------------
    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather: ``out[i...] = self[indices[i...]]`` along axis 0.

        The adjoint scatters (with accumulation on duplicate indices), which
        is exactly the gradient of an embedding lookup.
        """
        indices = np.asarray(indices)

        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, *self.shape[1:]))
            self._accumulate(grad, owned=True)

        return Tensor._make(self.data[indices], (self,), backward)
