"""Quality metrics for the seven benchmarks, plus run statistics.

Each benchmark's Table 1 quality metric lives here: top-1 accuracy
(image classification), mAP (detection/segmentation), BLEU (translation),
HR@10 (recommendation), and move-match rate (MiniGo).
"""

from .classification import move_match_rate, top1_accuracy, top_k_accuracy
from .bleu import corpus_bleu, ngram_counts, sentence_bleu
from .detection import (
    COCO_IOU_THRESHOLDS,
    Detection,
    GroundTruth,
    average_precision,
    box_iou,
    mask_iou,
    mean_average_precision,
    nms,
)
from .ranking import hit_rate_at_k, leave_one_out_eval, ndcg_at_k
from .stats import RunDispersion, dispersion, epochs_to_target_histogram, fraction_within
from .curves import area_under_curve, curve_spread, epochs_to_reach, interpolated_time_to_quality

__all__ = [
    "move_match_rate",
    "top1_accuracy",
    "top_k_accuracy",
    "corpus_bleu",
    "ngram_counts",
    "sentence_bleu",
    "COCO_IOU_THRESHOLDS",
    "Detection",
    "GroundTruth",
    "average_precision",
    "box_iou",
    "mask_iou",
    "mean_average_precision",
    "nms",
    "hit_rate_at_k",
    "leave_one_out_eval",
    "ndcg_at_k",
    "RunDispersion",
    "dispersion",
    "epochs_to_target_histogram",
    "fraction_within",
    "area_under_curve",
    "curve_spread",
    "epochs_to_reach",
    "interpolated_time_to_quality",
]
