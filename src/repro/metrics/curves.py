"""Learning-curve analysis (the DAWNBench-analysis toolkit).

The paper builds on DAWNBench and cites its retrospective analysis
(Coleman et al., 2019) when motivating the time-to-train metric and the
variance rules.  These helpers operate on per-epoch quality curves — the
data Figures 2/3 are made of:

- :func:`epochs_to_reach` — first epoch at/above a threshold;
- :func:`interpolated_time_to_quality` — fractional-epoch crossing time
  (linear interpolation inside the crossing epoch);
- :func:`area_under_curve` — a threshold-free progress summary;
- :func:`curve_spread` — cross-seed dispersion per epoch (the Figure 3
  statistic).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "epochs_to_reach",
    "interpolated_time_to_quality",
    "area_under_curve",
    "curve_spread",
]


def epochs_to_reach(curve: list[float] | np.ndarray, threshold: float) -> int | None:
    """First 1-based epoch whose quality meets ``threshold`` (None if never)."""
    for epoch, quality in enumerate(np.asarray(curve, dtype=np.float64), start=1):
        if quality >= threshold:
            return epoch
    return None


def interpolated_time_to_quality(
    curve: list[float] | np.ndarray,
    threshold: float,
    seconds_per_epoch: float = 1.0,
) -> float | None:
    """Fractional time of the threshold crossing.

    Quality is treated as piecewise-linear between epoch-end evaluations
    (epoch k's value is observed at time ``k * seconds_per_epoch``); the
    crossing inside the first passing epoch is interpolated from the
    previous evaluation.  Returns None if the curve never crosses.
    """
    arr = np.asarray(curve, dtype=np.float64)
    if seconds_per_epoch <= 0:
        raise ValueError("seconds_per_epoch must be positive")
    previous = -np.inf
    for epoch, quality in enumerate(arr, start=1):
        if quality >= threshold:
            if epoch == 1 or not np.isfinite(previous):
                return float(epoch * seconds_per_epoch)
            frac = (threshold - previous) / (quality - previous) if quality > previous else 1.0
            return float(((epoch - 1) + frac) * seconds_per_epoch)
        previous = quality
    return None


def area_under_curve(curve: list[float] | np.ndarray) -> float:
    """Mean quality over epochs (normalized AUC); higher = faster learner."""
    arr = np.asarray(curve, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty curve")
    return float(arr.mean())


def curve_spread(curves: list[list[float]] | np.ndarray) -> np.ndarray:
    """Per-epoch (max - min) across seeds; the Figure 3 variability series."""
    arr = np.asarray(curves, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise ValueError("need a (seeds, epochs) array with >= 2 seeds")
    return arr.max(axis=0) - arr.min(axis=0)
