"""Run-to-run statistics used by the variance studies (§2.2.3, §3.2.2).

The MLPerf *scoring* rule itself (drop fastest/slowest, mean the rest) lives
in :mod:`repro.core.results`; this module provides the descriptive statistics
the paper uses to justify that rule — dispersion of repeated runs and the
"fraction of entries within x% of each other" criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RunDispersion", "dispersion", "fraction_within", "epochs_to_target_histogram"]


@dataclass(frozen=True)
class RunDispersion:
    """Summary of repeated measurements of the same benchmark/system."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    coefficient_of_variation: float
    spread_ratio: float  # max / min


def dispersion(values: list[float] | np.ndarray) -> RunDispersion:
    """Descriptive dispersion statistics of repeated run results."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return RunDispersion(
        n=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        coefficient_of_variation=std / mean if mean else float("inf"),
        spread_ratio=float(arr.max() / arr.min()) if arr.min() > 0 else float("inf"),
    )


def fraction_within(values: list[float] | np.ndarray, tolerance: float) -> float:
    """Fraction of values within ``tolerance`` (relative) of the median.

    §3.2.2 chose run counts so that "90% of entries from the same system
    were within 5%" (vision) or 10% (other tasks); this implements that
    criterion.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    center = float(np.median(arr))
    if center == 0:
        return float(np.mean(arr == 0))
    return float(np.mean(np.abs(arr - center) / abs(center) <= tolerance))


def epochs_to_target_histogram(epochs: list[int], bins: int | None = None) -> dict[int, int]:
    """Histogram of epochs-to-target across seeds (the Figure 2 data)."""
    if not epochs:
        return {}
    counts: dict[int, int] = {}
    for e in epochs:
        counts[int(e)] = counts.get(int(e), 0) + 1
    return dict(sorted(counts.items()))
