"""Corpus BLEU, implemented from scratch (Papineni et al., 2002).

The translation benchmarks (Table 1) are scored in BLEU on a held-out test
set.  This is standard corpus-level BLEU: geometric mean of clipped n-gram
precisions (default up to 4-grams) with the brevity penalty, computed over
token sequences (any hashable token type).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

__all__ = ["ngram_counts", "sentence_bleu", "corpus_bleu"]


def ngram_counts(tokens: Sequence, n: int) -> Counter:
    """Multiset of n-grams of order ``n`` in ``tokens``."""
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def _clipped_matches(hypothesis: Sequence, reference: Sequence, n: int) -> tuple[int, int]:
    """Return (clipped match count, total hypothesis n-grams) for order n."""
    hyp = ngram_counts(hypothesis, n)
    ref = ngram_counts(reference, n)
    matches = sum(min(count, ref[gram]) for gram, count in hyp.items())
    total = max(len(hypothesis) - n + 1, 0)
    return matches, total


def corpus_bleu(
    hypotheses: Sequence[Sequence],
    references: Sequence[Sequence],
    max_n: int = 4,
    smoothing: float = 0.0,
) -> float:
    """Corpus BLEU in [0, 100].

    Counts are pooled across the corpus before taking precisions (the
    standard definition — *not* an average of sentence BLEU scores).
    ``smoothing`` is added to numerator and denominator of each precision
    (add-k smoothing; 0 reproduces plain BLEU, which is 0 whenever any
    order has no match).
    """
    if len(hypotheses) != len(references):
        raise ValueError("hypotheses and references must align")
    if not hypotheses:
        return 0.0

    matches = [0] * max_n
    totals = [0] * max_n
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            m, t = _clipped_matches(hyp, ref, n)
            matches[n - 1] += m
            totals[n - 1] += t

    log_precisions = []
    for m, t in zip(matches, totals):
        num = m + smoothing
        den = t + smoothing
        if num <= 0 or den <= 0:
            return 0.0
        log_precisions.append(math.log(num / den))

    if hyp_len == 0:
        return 0.0
    brevity = 1.0 if hyp_len >= ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * brevity * math.exp(sum(log_precisions) / max_n)


def sentence_bleu(hypothesis: Sequence, reference: Sequence, max_n: int = 4,
                  smoothing: float = 1.0) -> float:
    """Single-sentence BLEU (smoothed by default, since short sentences
    routinely have zero 4-gram matches)."""
    return corpus_bleu([hypothesis], [reference], max_n=max_n, smoothing=smoothing)
