"""Object-detection and instance-segmentation metrics: IoU, NMS, AP, mAP.

Implements the COCO-style evaluation protocol at mini scale: detections are
matched to ground truth greedily in descending score order at a given IoU
threshold; average precision is the area under the interpolated
precision-recall curve; mAP averages AP over classes (and optionally over a
range of IoU thresholds, as COCO does).  Mask AP replaces box IoU with
pixelwise mask IoU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Detection",
    "GroundTruth",
    "box_iou",
    "mask_iou",
    "nms",
    "average_precision",
    "mean_average_precision",
    "COCO_IOU_THRESHOLDS",
]

# COCO averages AP over IoU in {0.50, 0.55, ..., 0.95}.
COCO_IOU_THRESHOLDS = tuple(np.round(np.arange(0.5, 1.0, 0.05), 2))


@dataclass
class Detection:
    """One predicted object: box ``(x1, y1, x2, y2)``, class id, confidence."""

    image_id: int
    box: np.ndarray
    label: int
    score: float
    mask: np.ndarray | None = None


@dataclass
class GroundTruth:
    """One annotated object."""

    image_id: int
    box: np.ndarray
    label: int
    mask: np.ndarray | None = None


def box_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between ``(N,4)`` and ``(M,4)`` xyxy boxes -> ``(N,M)``."""
    boxes_a = np.atleast_2d(np.asarray(boxes_a, dtype=np.float64))
    boxes_b = np.atleast_2d(np.asarray(boxes_b, dtype=np.float64))
    x1 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    y1 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    x2 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    y2 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area_a = (boxes_a[:, 2] - boxes_a[:, 0]) * (boxes_a[:, 3] - boxes_a[:, 1])
    area_b = (boxes_b[:, 2] - boxes_b[:, 0]) * (boxes_b[:, 3] - boxes_b[:, 1])
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou


def mask_iou(masks_a: np.ndarray, masks_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between boolean mask stacks ``(N,H,W)`` and ``(M,H,W)``."""
    a = np.asarray(masks_a, dtype=bool).reshape(len(masks_a), -1)
    b = np.asarray(masks_b, dtype=bool).reshape(len(masks_b), -1)
    inter = (a[:, None, :] & b[None, :, :]).sum(axis=2).astype(np.float64)
    union = (a[:, None, :] | b[None, :, :]).sum(axis=2).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(union > 0, inter / union, 0.0)


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy non-maximum suppression; returns kept indices, best first.

    One of the detection-specific layer types (§3.1.2: "NMS, sorting") the
    paper cites as distinguishing detection compute from classification.
    """
    boxes = np.asarray(boxes, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores)
    keep: list[int] = []
    while order.size > 0:
        best = order[0]
        keep.append(int(best))
        if order.size == 1:
            break
        rest = order[1:]
        ious = box_iou(boxes[best : best + 1], boxes[rest])[0]
        order = rest[ious <= iou_threshold]
    return np.array(keep, dtype=np.int64)


def _match_detections(
    detections: list[Detection],
    ground_truths: list[GroundTruth],
    iou_threshold: float,
    use_masks: bool,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Greedy matching for one class: returns (tp_flags, scores, n_gt)."""
    dets = sorted(detections, key=lambda d: -d.score)
    gts_by_image: dict[int, list[GroundTruth]] = {}
    for gt in ground_truths:
        gts_by_image.setdefault(gt.image_id, []).append(gt)
    matched: dict[int, set[int]] = {img: set() for img in gts_by_image}

    tp = np.zeros(len(dets), dtype=bool)
    scores = np.array([d.score for d in dets], dtype=np.float64)
    for i, det in enumerate(dets):
        candidates = gts_by_image.get(det.image_id, [])
        if not candidates:
            continue
        if use_masks:
            ious = mask_iou(det.mask[None], np.stack([g.mask for g in candidates]))[0]
        else:
            ious = box_iou(det.box[None], np.stack([g.box for g in candidates]))[0]
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold and best not in matched[det.image_id]:
            tp[i] = True
            matched[det.image_id].add(best)
    return tp, scores, len(ground_truths)


def average_precision(
    detections: list[Detection],
    ground_truths: list[GroundTruth],
    iou_threshold: float = 0.5,
    use_masks: bool = False,
) -> float:
    """AP for a single class at one IoU threshold (all-point interpolation)."""
    if not ground_truths:
        return 0.0
    tp, _, n_gt = _match_detections(detections, ground_truths, iou_threshold, use_masks)
    if len(tp) == 0:
        return 0.0
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(~tp)
    recall = cum_tp / n_gt
    precision = cum_tp / (cum_tp + cum_fp)
    # Interpolated precision: running max from the right.
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    # Area under PR curve over recall increments.
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[precision[0] if len(precision) else 0.0], precision])
    return float(np.sum((recall[1:] - recall[:-1]) * precision[1:]))


def mean_average_precision(
    detections: list[Detection],
    ground_truths: list[GroundTruth],
    iou_thresholds: tuple[float, ...] = (0.5,),
    use_masks: bool = False,
) -> float:
    """mAP: mean AP over classes present in the ground truth, then over
    IoU thresholds.  Pass ``COCO_IOU_THRESHOLDS`` for COCO-style AP."""
    labels = sorted({gt.label for gt in ground_truths})
    if not labels:
        return 0.0
    per_threshold = []
    for thr in iou_thresholds:
        aps = []
        for label in labels:
            dets = [d for d in detections if d.label == label]
            gts = [g for g in ground_truths if g.label == label]
            aps.append(average_precision(dets, gts, thr, use_masks))
        per_threshold.append(float(np.mean(aps)))
    return float(np.mean(per_threshold))
