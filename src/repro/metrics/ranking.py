"""Ranking metrics for the recommendation benchmark: HR@K and NDCG@K.

NCF is evaluated with the leave-one-out protocol (He et al., 2017): for each
user, the held-out positive item is ranked against a set of sampled
negatives; HR@K is the fraction of users whose positive lands in the top K.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hit_rate_at_k", "ndcg_at_k", "leave_one_out_eval"]


def _rank_of_first_item(scores: np.ndarray) -> int:
    """Rank (0-based) of item 0 among all items, by descending score.

    Ties are broken pessimistically (tied items count as ranked above),
    which avoids rewarding degenerate constant scorers.
    """
    return int((scores[1:] >= scores[0]).sum())


def hit_rate_at_k(score_lists: list[np.ndarray], k: int = 10) -> float:
    """HR@K where, in each row, index 0 is the positive item.

    The NCF quality metric (Table 1: "0.635 HR@10").
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not score_lists:
        return 0.0
    hits = sum(_rank_of_first_item(np.asarray(s)) < k for s in score_lists)
    return hits / len(score_lists)


def ndcg_at_k(score_lists: list[np.ndarray], k: int = 10) -> float:
    """NDCG@K with a single relevant item at index 0 per row."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not score_lists:
        return 0.0
    total = 0.0
    for s in score_lists:
        rank = _rank_of_first_item(np.asarray(s))
        if rank < k:
            total += 1.0 / np.log2(rank + 2)
    return total / len(score_lists)


def leave_one_out_eval(
    score_fn,
    positives: np.ndarray,
    negatives: np.ndarray,
    users: np.ndarray,
    k: int = 10,
) -> tuple[float, float]:
    """Run leave-one-out evaluation and return ``(HR@K, NDCG@K)``.

    ``score_fn(user_ids, item_ids) -> scores`` is called once over all
    (user, candidate) pairs; ``positives[u]`` is each user's held-out item
    and ``negatives[u]`` their sampled negative items.
    """
    n_users = len(users)
    n_neg = negatives.shape[1]
    user_col = np.repeat(users, n_neg + 1)
    item_col = np.concatenate(
        [np.concatenate([[positives[i]], negatives[i]]) for i in range(n_users)]
    )
    scores = np.asarray(score_fn(user_col, item_col)).reshape(n_users, n_neg + 1)
    rows = [scores[i] for i in range(n_users)]
    return hit_rate_at_k(rows, k), ndcg_at_k(rows, k)
