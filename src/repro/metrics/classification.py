"""Classification quality metrics (image classification, MiniGo move match)."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_accuracy", "top1_accuracy", "move_match_rate"]


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the ``k`` highest scores.

    ``scores``: ``(N, C)`` logits or probabilities; ``labels``: ``(N,)`` ints.
    """
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if labels.shape != (scores.shape[0],):
        raise ValueError("labels must be (N,) matching scores")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k={k} out of range for {scores.shape[1]} classes")
    if scores.shape[0] == 0:
        return 0.0
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


def top1_accuracy(scores: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy — the ResNet/ImageNet quality metric (Table 1)."""
    return top_k_accuracy(scores, labels, k=1)


def move_match_rate(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of predicted moves matching reference-game moves.

    The MiniGo quality metric (Table 1): "percentage of predicted moves that
    match human reference games".
    """
    predicted = np.asarray(predicted)
    reference = np.asarray(reference)
    if predicted.shape != reference.shape:
        raise ValueError("predicted and reference move arrays must align")
    if predicted.size == 0:
        return 0.0
    return float((predicted == reference).mean())
