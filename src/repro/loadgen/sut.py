"""System Under Test: a trained model rehydrated from a run artifact.

A :class:`SUT` is the serving side of one completed training run.  It is
built from a ``result_*.txt`` artifact (whose header names the benchmark
and whose ``.params.npz`` sidecar carries the trained weights), rebuilds
the benchmark's session under :func:`~repro.framework.inference_mode` —
so the serving model carries no tape nodes and no ``requires_grad``
anywhere — loads the weights, and exposes a single
``predict(indices) -> float64[n]`` surface over a benchmark-specific
query pool (validation images for image classification, (user, held-out
item) pairs for recommendation, ...).

Multi-process serving reuses the comms engine's pattern: a persistent
pool of forked workers (:class:`ServingPool`), each holding a replica
inherited copy-on-write, with per-worker request/response slots in
shared memory — per-query IPC is one ``("predict", count)`` command and
one ack; indices and predictions never travel through pickle.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from ..comms.shm import Segment, aligned_offsets
from ..framework import Tensor, inference_mode
from ..telemetry import current_events

__all__ = ["SUT", "SUTInfo", "ServingPool", "InferenceAdapter", "ADAPTERS",
           "register_adapter", "load_sut", "train_and_save",
           "virtual_service_times", "serving_pool_available"]


def serving_pool_available() -> bool:
    """True when fork-based serving pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def virtual_service_times(n: int, seed: int, *, base_s: float = 2e-3,
                          sigma: float = 0.25, stream: int = 0,
                          salt: int = 0) -> np.ndarray:
    """Deterministic synthetic per-query service times (lognormal).

    The harness's *virtual* timing mode: instead of measuring the host's
    wall clock (noisy, machine-dependent), per-query service times come
    from this seeded model, making every derived latency statistic —
    percentiles, achieved QPS, the max-QPS search — bit-identical across
    reruns and across machines.  That is what lets CI gate the loadgen
    smoke payload with ``exact`` comparisons.  ``stream`` and ``salt``
    decorrelate scenarios and benchmarks that share a seed.
    """
    rng = np.random.default_rng([int(seed), 7919, int(stream), int(salt)])
    return base_s * np.exp(rng.normal(0.0, sigma, size=int(n)))


# ---------------------------------------------------------------------------
# Benchmark adapters: name -> (session, benchmark) -> query pool + predict
# ---------------------------------------------------------------------------

class InferenceAdapter:
    """Maps query indices onto one benchmark's inference inputs.

    ``pool_size`` is the number of distinct queries the benchmark offers
    (scenarios draw indices uniformly from it); ``predict`` answers a
    batch of indices with one float64 per query — a class id, a ranking
    score, whatever the benchmark's serving output is.  Predictions must
    be a deterministic function of (weights, indices): the harness
    checksums them to prove reruns serve identical answers.
    """

    pool_size: int = 0

    def predict(self, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError


ADAPTERS: dict[str, Callable[[Any, Any], InferenceAdapter]] = {}


def register_adapter(name: str):
    def deco(factory):
        ADAPTERS[name] = factory
        return factory
    return deco


@register_adapter("image_classification")
class _ImageClassificationAdapter(InferenceAdapter):
    """Serve top-1 class ids over the validation images."""

    def __init__(self, session, benchmark):
        self.images, _ = benchmark.data.val.arrays
        self.model = session.model
        self.pool_size = len(self.images)

    def predict(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        out = []
        for start in range(0, len(idx), 256):
            batch = self.images[idx[start:start + 256]]
            logits = self.model(Tensor(batch)).data
            out.append(np.argmax(logits, axis=1))
        return (np.concatenate(out).astype(np.float64) if out
                else np.zeros(0, dtype=np.float64))


@register_adapter("recommendation")
class _RecommendationAdapter(InferenceAdapter):
    """Serve NCF scores for each user's held-out (leave-one-out) item."""

    def __init__(self, session, benchmark):
        data = benchmark.data
        self.users = data.all_users
        self.positives = data.eval_positives
        self.model = session.model
        self.pool_size = len(self.users)

    def predict(self, indices: np.ndarray) -> np.ndarray:
        users = self.users[np.asarray(indices, dtype=np.int64)]
        return np.asarray(self.model.score(users, self.positives[users]),
                          dtype=np.float64)


# ---------------------------------------------------------------------------
# Multi-process serving pool (comms-engine fork/shm pattern)
# ---------------------------------------------------------------------------

def _release_pool(segments, processes, cmd_queues, timeout: float = 5.0) -> None:
    """Tear down pool resources (also runs via weakref.finalize on GC)."""
    for q in cmd_queues:
        try:
            q.put(("stop",))
        except Exception:
            pass
    deadline = time.monotonic() + timeout
    for proc in processes:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
            proc.join(1.0)
    for seg in segments:
        seg.destroy()


class ServingPool:
    """Persistent forked replicas with shared-memory request/response slots.

    Each worker owns one request slot (int64 query indices) and one
    response slot (float64 predictions) in shared memory, sized to
    ``capacity`` queries.  ``predict`` partitions a batch of indices
    across workers, writes each worker's slice into its slot, wakes it
    with a tiny command, and reassembles the responses in rank order —
    deterministic output, zero per-query pickling.
    """

    def __init__(self, adapter: InferenceAdapter, num_workers: int,
                 capacity: int = 4096, timeout: float = 60.0):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if not serving_pool_available():
            raise RuntimeError("serving pool requires the fork start method")
        self.adapter = adapter
        self.num_workers = num_workers
        self.capacity = int(capacity)
        self.timeout = float(timeout)
        self._closed = False

        ctx = multiprocessing.get_context("fork")
        specs = [((self.capacity,), np.dtype(np.int64)),
                 ((self.capacity,), np.dtype(np.float64))]
        offsets, total = aligned_offsets(specs)
        self._segments = [Segment(total) for _ in range(num_workers)]
        self._req_views = [seg.view((self.capacity,), np.int64, offsets[0])
                           for seg in self._segments]
        self._resp_views = [seg.view((self.capacity,), np.float64, offsets[1])
                            for seg in self._segments]
        self._cmd_queues = [ctx.SimpleQueue() for _ in range(num_workers)]
        self._result_q = ctx.Queue()
        self._processes = [
            ctx.Process(target=self._worker_main, args=(rank,), daemon=True,
                        name=f"repro-serve-{rank}")
            for rank in range(num_workers)
        ]
        for proc in self._processes:
            proc.start()
        self._finalizer = weakref.finalize(
            self, _release_pool, self._segments, self._processes,
            self._cmd_queues)

    # -- worker side (runs in forked children only) -------------------------

    def _worker_main(self, rank: int) -> None:
        status = 0
        try:
            self._worker_loop(rank)
        except BaseException:
            try:
                self._result_q.put(("error", rank, traceback.format_exc()))
            except Exception:
                pass
            status = 1
        finally:
            try:
                sys.stdout.flush()
                sys.stderr.flush()
            except Exception:
                pass
            # Skip atexit/interpreter teardown: the child inherited the
            # parent's runtime state and must not flush or finalize it.
            os._exit(status)

    def _worker_loop(self, rank: int) -> None:
        req, resp = self._req_views[rank], self._resp_views[rank]
        while True:
            msg = self._cmd_queues[rank].get()
            if msg[0] == "stop":
                return
            n = int(msg[1])
            try:
                with inference_mode():
                    resp[:n] = self.adapter.predict(req[:n])
            except Exception:
                self._result_q.put(("error", rank, traceback.format_exc()))
                continue
            self._result_q.put(("ok", rank, n))

    # -- parent side --------------------------------------------------------

    def predict(self, indices: np.ndarray) -> np.ndarray:
        if self._closed:
            raise RuntimeError("predict() on a closed ServingPool")
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) > self.capacity * self.num_workers:
            raise ValueError(
                f"batch of {len(idx)} exceeds pool capacity "
                f"{self.capacity} x {self.num_workers} workers")
        # Contiguous per-rank slices keep reassembly a simple concatenation.
        splits = np.array_split(idx, self.num_workers)
        active = []
        for rank, part in enumerate(splits):
            if len(part) == 0:
                continue
            self._req_views[rank][:len(part)] = part
            self._cmd_queues[rank].put(("predict", len(part)))
            active.append(rank)
        counts: dict[int, int] = {}
        for _ in active:
            kind, rank, payload = self._result_q.get(timeout=self.timeout)
            if kind == "error":
                self.close()
                raise RuntimeError(f"serving worker {rank} failed:\n{payload}")
            counts[rank] = payload
        return np.concatenate([
            self._resp_views[rank][:counts[rank]].copy() for rank in active
        ]) if active else np.zeros(0, dtype=np.float64)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._finalizer()


# ---------------------------------------------------------------------------
# The SUT itself
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SUTInfo:
    """Provenance of a serving model: which training run produced it."""

    benchmark: str
    seed: int
    quality: float
    epochs: int
    source: str  # artifact path the weights were loaded from


class SUT:
    """Forward-only serving over one rehydrated trained model."""

    def __init__(self, info: SUTInfo, session, adapter: InferenceAdapter,
                 workers: int = 1):
        self.info = info
        self._session = session
        self.adapter = adapter
        self._pool = (ServingPool(adapter, workers) if workers > 1 else None)
        self.workers = workers

    @property
    def pool_size(self) -> int:
        return self.adapter.pool_size

    def predict(self, indices: np.ndarray) -> np.ndarray:
        """Serve one batch of query indices (forward-only, no tape)."""
        with inference_mode():
            if self._pool is not None:
                return self._pool.predict(indices)
            return self.adapter.predict(indices)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._session.close()

    def __enter__(self) -> "SUT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _sanitize_hyperparameters(hp: Mapping[str, Any]) -> dict[str, Any]:
    """Serving-safe copy of a run's resolved hyperparameters.

    Training-only scale-out knobs are neutralized: a serving session must
    not fork a data-parallel gradient pool just because the training run
    used one.
    """
    clean = dict(hp)
    if "dp_workers" in clean:
        clean["dp_workers"] = 1
    return clean


def load_sut(artifact: str | Path, benchmark: str | None = None,
             workers: int = 1) -> SUT:
    """Build a SUT from a saved ``result_*.txt`` training artifact.

    The artifact header names the benchmark (older files need it passed
    explicitly) and the ``.params.npz`` sidecar carries the weights.  The
    session is rebuilt under :func:`~repro.framework.inference_mode`, so
    every parameter comes up with ``requires_grad=False`` and the serving
    forward path records nothing.
    """
    from ..core.artifacts import load_run_result
    from ..suite import create_benchmark

    artifact = Path(artifact)
    result = load_run_result(benchmark, artifact)
    if result.model_state is None:
        raise ValueError(
            f"{artifact}: no trained parameters (.params.npz sidecar "
            "missing) — re-run training with this version to get a "
            "servable artifact")
    if result.benchmark not in ADAPTERS:
        raise ValueError(
            f"no serving adapter for benchmark {result.benchmark!r}; "
            f"available: {sorted(ADAPTERS)}")
    bench = create_benchmark(result.benchmark)
    bench.prepare_data()
    hp = _sanitize_hyperparameters(result.hyperparameters)
    with inference_mode():
        session = bench.create_session(result.seed, hp)
    model = session.model
    model.load_state_dict(result.model_state)
    model.eval()
    adapter = ADAPTERS[result.benchmark](session, bench)
    info = SUTInfo(benchmark=result.benchmark, seed=result.seed,
                   quality=result.quality, epochs=result.epochs,
                   source=str(artifact))
    current_events().publish("sut_load", benchmark=result.benchmark,
                             seed=result.seed, source=str(artifact),
                             pool_size=adapter.pool_size, workers=workers)
    return SUT(info, session, adapter, workers=workers)


def train_and_save(benchmark_name: str, artifact: str | Path, *, seed: int = 0,
                   max_epochs: int = 1,
                   overrides: Mapping[str, Any] | None = None) -> Path:
    """Train one short run and save a servable artifact at ``artifact``.

    The convenience path behind ``repro loadgen`` when no ``--artifact``
    is given (and the smoke gate's fixture): quality does not need to
    reach the training target for the model to be servable, so
    ``max_epochs`` defaults to one epoch.
    """
    from ..core.artifacts import save_run_result
    from ..core.runner import BenchmarkRunner
    from ..suite import create_benchmark

    bench = create_benchmark(benchmark_name)
    runner = BenchmarkRunner()
    result = runner.run(bench, seed=seed, hyperparameter_overrides=overrides,
                        max_epochs=max_epochs)
    if result.model_state is None:
        raise RuntimeError(
            f"{benchmark_name}: training session exports no model state; "
            "cannot build a servable artifact")
    return save_run_result(Path(artifact), result)
