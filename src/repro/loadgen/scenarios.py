"""Query scenarios: seeded deterministic streams + declarative constraints.

MLPerf Inference §4 defines how queries reach the system under test; the
three scenarios this suite serves map directly onto it:

- **single_stream** — one outstanding query: each query is issued the
  moment the previous one completes, so latency *is* service time and the
  constraint bounds a high percentile of it.
- **server** — queries arrive by a Poisson process at a target QPS
  (exponential inter-arrival times from a fixed RNG stream), queueing when
  the system is busy; the constraint bounds a latency percentile *under
  load*, which is what the max-sustainable-QPS search probes.
- **offline** — every query is available at t=0; the metric is
  throughput, with latency percentiles reported for completeness.

Every stream is a pure function of ``(spec, pool_size, seed)`` via
``numpy``'s Philox-seeded generator, so two runs with the same seed issue
bit-identical query sequences — the property the determinism gate and the
same-seed rerun tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["SCENARIO_NAMES", "ConstraintSpec", "Query", "ScenarioSpec",
           "default_scenarios", "make_queries", "percentile"]

SCENARIO_NAMES = ("single_stream", "server", "offline")


@dataclass(frozen=True)
class ConstraintSpec:
    """Declarative validity conditions for one scenario run.

    A run is *valid* when every bound holds over the measured (post-warmup)
    window: the chosen latency percentile is at or below the bound
    (boundary inclusive — exactly-at-bound passes), achieved throughput is
    at or above ``min_qps``, and at least ``min_queries`` latencies were
    measured.  An empty measurement window is always invalid: a run that
    measured nothing demonstrated nothing.
    """

    latency_percentile: float = 99.0
    latency_bound_s: float | None = None  # None = latency unbounded
    min_qps: float = 0.0
    min_queries: int = 1

    def __post_init__(self):
        if not 0.0 < self.latency_percentile <= 100.0:
            raise ValueError(
                f"latency_percentile must be in (0, 100], got {self.latency_percentile}")
        if self.latency_bound_s is not None and self.latency_bound_s <= 0:
            raise ValueError("latency_bound_s must be positive (or None)")
        if self.min_qps < 0 or self.min_queries < 0:
            raise ValueError("min_qps and min_queries must be non-negative")


@dataclass(frozen=True)
class Query:
    """One generated query: which sample to serve and when it arrives.

    ``issue_s`` is the scheduled arrival relative to stream start: 0.0 for
    offline (everything available up front) and for single_stream (where
    the *actual* issue instant is the previous completion, decided by the
    harness, not the schedule).
    """

    index: int
    issue_s: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario's traffic shape + constraint."""

    scenario: str
    query_count: int
    warmup_queries: int = 0
    target_qps: float | None = None  # server only: Poisson arrival rate
    constraint: ConstraintSpec = field(default_factory=ConstraintSpec)

    def __post_init__(self):
        if self.scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; one of {SCENARIO_NAMES}")
        if self.query_count < 1:
            raise ValueError("query_count must be >= 1")
        if not 0 <= self.warmup_queries < self.query_count:
            raise ValueError("warmup_queries must be in [0, query_count)")
        if self.scenario == "server":
            if self.target_qps is None or self.target_qps <= 0:
                raise ValueError("server scenario needs a positive target_qps")

    def at_qps(self, qps: float) -> "ScenarioSpec":
        """This spec re-targeted to another arrival rate (QPS search probes)."""
        return replace(self, target_qps=float(qps))


def default_scenarios(*, query_count: int = 128, warmup_queries: int = 8,
                      target_qps: float = 100.0,
                      latency_bound_s: float = 0.1) -> dict[str, ScenarioSpec]:
    """The standard three-scenario set for one serving run.

    Bounds follow the Inference benchmark's shape — p90 for single_stream
    (tail of a serial stream), p99 under server load, and no latency bound
    offline (throughput is the offline metric).
    """
    return {
        "single_stream": ScenarioSpec(
            scenario="single_stream", query_count=query_count,
            warmup_queries=warmup_queries,
            constraint=ConstraintSpec(latency_percentile=90.0,
                                      latency_bound_s=latency_bound_s,
                                      min_queries=max(query_count // 2, 1)),
        ),
        "server": ScenarioSpec(
            scenario="server", query_count=query_count,
            warmup_queries=warmup_queries, target_qps=target_qps,
            constraint=ConstraintSpec(latency_percentile=99.0,
                                      latency_bound_s=latency_bound_s,
                                      min_queries=max(query_count // 2, 1)),
        ),
        "offline": ScenarioSpec(
            scenario="offline", query_count=query_count,
            warmup_queries=warmup_queries,
            constraint=ConstraintSpec(latency_percentile=99.0,
                                      latency_bound_s=None,
                                      min_queries=max(query_count // 2, 1)),
        ),
    }


def make_queries(spec: ScenarioSpec, pool_size: int, seed: int) -> list[Query]:
    """Generate the deterministic query stream for one scenario run.

    Sample indices are drawn uniformly from the SUT's query pool and, for
    the server scenario, arrival times are the cumulative sum of
    exponential inter-arrival draws at ``target_qps`` — both from one
    generator seeded by ``(seed, scenario)``, so the stream is a pure
    function of its inputs and reruns are bit-identical.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    rng = np.random.default_rng([int(seed), _scenario_stream_id(spec.scenario)])
    indices = rng.integers(0, pool_size, size=spec.query_count)
    if spec.scenario == "server":
        gaps = rng.exponential(1.0 / spec.target_qps, size=spec.query_count)
        arrivals = np.cumsum(gaps)
    else:
        arrivals = np.zeros(spec.query_count)
    return [Query(index=int(i), issue_s=float(t))
            for i, t in zip(indices, arrivals)]


def _scenario_stream_id(scenario: str) -> int:
    """Stable per-scenario RNG sub-stream (order in SCENARIO_NAMES)."""
    return SCENARIO_NAMES.index(scenario)


def percentile(values, p: float) -> float:
    """Nearest-rank percentile (inclusive), the Inference rules' estimator.

    ``percentile(v, p)`` is the smallest element of ``v`` such that at
    least ``p``% of the data is <= it: ``sorted(v)[ceil(p/100 * n) - 1]``.
    No interpolation — the result is always an observed latency, and the
    closed-form checks in the tests hold exactly.
    """
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("percentile of an empty window")
    if not 0.0 < p <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    rank = max(math.ceil(p / 100.0 * len(vals)), 1)
    return vals[rank - 1]
