"""The issue/complete loop: latencies, verdicts, and the max-QPS search.

One scenario run has three parts:

1. **Serve.**  Every generated query's prediction is actually computed
   (offline in one parallel batch through the SUT — the multi-worker
   pool's path — serial scenarios per query), and the predictions are
   checksummed so reruns can prove they served identical answers.
2. **Service times.**  ``timing="wall"`` measures each query's forward
   pass on the monotonic clock; ``timing="virtual"`` draws per-query
   service times from the SUT's seeded service model instead
   (:func:`~repro.loadgen.sut.virtual_service_times`), which makes every
   derived statistic bit-identical across reruns and machines — the mode
   CI's smoke gate and the determinism tests run in.
3. **Replay.**  Latency is computed by a deterministic queueing replay
   over (arrival, service) pairs: single_stream arrivals chain on the
   previous completion, server arrivals follow the generated Poisson
   schedule, offline arrivals are all zero.  Replay, not sleeping, is
   what lets the Server constraint be probed at any target QPS without
   real-time waiting — the binary search in :func:`find_max_qps` runs
   hundreds of virtual seconds of traffic in microseconds.

Warmup queries are served and timed but discarded from the measured
window, mirroring the Inference rules' burn-in.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import current_events, current_metrics
from ..telemetry.metrics import COMMS_LATENCY_BUCKETS
from .scenarios import Query, ScenarioSpec, make_queries, percentile
from .sut import SUT, virtual_service_times

__all__ = ["QueryRecord", "ScenarioResult", "run_scenario", "find_max_qps",
           "REPORTED_PERCENTILES"]

REPORTED_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class QueryRecord:
    """One completed query, replayed: when it arrived, how long it took."""

    index: int
    arrival_s: float
    latency_s: float
    warmup: bool


@dataclass
class ScenarioResult:
    """Everything one scenario run measured, plus its verdict."""

    scenario: str
    benchmark: str
    seed: int
    timing: str
    query_count: int
    measured_count: int
    percentiles: dict[str, float] = field(default_factory=dict)
    achieved_qps: float = 0.0
    valid: bool = False
    violations: list[str] = field(default_factory=list)
    prediction_checksum: int = 0
    max_qps: float | None = None  # server only: binary-search result

    def to_payload(self) -> dict:
        return {
            "scenario": self.scenario,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "timing": self.timing,
            "query_count": self.query_count,
            "measured_count": self.measured_count,
            "percentiles": dict(self.percentiles),
            "achieved_qps": self.achieved_qps,
            "valid": self.valid,
            "violations": list(self.violations),
            "prediction_checksum": self.prediction_checksum,
            "max_qps": self.max_qps,
        }


def _replay(queries: list[Query], service_s: np.ndarray, scenario: str,
            servers: int = 1) -> list[QueryRecord]:
    """Deterministic multi-server queueing replay over (arrival, service).

    Each query runs on the earliest-free server, starting at
    ``max(arrival, server_free)``; latency is completion minus arrival.
    With one server and chained arrivals (single_stream) latency equals
    service time exactly, which is what the scenario means.
    """
    free = np.zeros(max(int(servers), 1))
    records = []
    prev_done = 0.0
    for q, s in zip(queries, service_s):
        arrival = prev_done if scenario == "single_stream" else q.issue_s
        w = int(np.argmin(free))
        start = max(arrival, free[w])
        done = start + float(s)
        free[w] = done
        prev_done = done
        records.append(QueryRecord(index=q.index, arrival_s=arrival,
                                   latency_s=done - arrival, warmup=False))
    return records


def _verdict(spec: ScenarioSpec, latencies: list[float],
             achieved_qps: float) -> tuple[bool, list[str], dict[str, float]]:
    """Apply the constraint to the measured window; boundary is inclusive."""
    c = spec.constraint
    violations: list[str] = []
    pcts: dict[str, float] = {}
    if not latencies:
        return False, ["empty measurement window (no post-warmup queries)"], pcts
    for p in REPORTED_PERCENTILES:
        pcts[f"p{p:g}"] = percentile(latencies, p)
    bound_pct = percentile(latencies, c.latency_percentile)
    pcts[f"p{c.latency_percentile:g}"] = bound_pct
    if c.latency_bound_s is not None and bound_pct > c.latency_bound_s:
        violations.append(
            f"p{c.latency_percentile:g} latency {bound_pct:.6f}s exceeds "
            f"bound {c.latency_bound_s:.6f}s")
    if achieved_qps < c.min_qps:
        violations.append(
            f"achieved {achieved_qps:.3f} QPS below minimum {c.min_qps:.3f}")
    if len(latencies) < c.min_queries:
        violations.append(
            f"measured {len(latencies)} queries, constraint requires "
            f">= {c.min_queries}")
    return not violations, violations, pcts


def _measure_service_times(sut: SUT, queries: list[Query], timing: str,
                           seed: int, scenario: str) -> np.ndarray:
    indices = np.array([q.index for q in queries], dtype=np.int64)
    if timing == "virtual":
        from .scenarios import SCENARIO_NAMES

        return virtual_service_times(
            len(queries), seed, stream=SCENARIO_NAMES.index(scenario),
            salt=zlib.crc32(sut.info.benchmark.encode()))
    if timing != "wall":
        raise ValueError(f"unknown timing mode {timing!r}")
    service = np.empty(len(queries))
    for i, idx in enumerate(indices):
        t0 = time.monotonic()
        sut.predict(idx[None])
        service[i] = time.monotonic() - t0
    return service


def run_scenario(sut: SUT, spec: ScenarioSpec, *, seed: int = 0,
                 timing: str = "virtual") -> ScenarioResult:
    """Run one scenario against a SUT and return its measured result.

    Publishes ``scenario_start`` / per-query ``query`` / ``scenario_stop``
    on the ambient telemetry event bus, so a serving run saved with
    ``--save`` renders in ``repro analyze`` exactly like a training run.
    """
    events = current_events()
    queries = make_queries(spec, sut.pool_size, seed)
    events.publish("scenario_start", scenario=spec.scenario,
                   benchmark=sut.info.benchmark, queries=len(queries),
                   timing=timing, target_qps=spec.target_qps)

    # Serve every query for real: offline goes through the SUT in one
    # parallel batch (the multi-worker path); the checksum proves reruns
    # answer identically.
    indices = np.array([q.index for q in queries], dtype=np.int64)
    predictions = sut.predict(indices)
    checksum = zlib.crc32(np.ascontiguousarray(predictions).tobytes())

    service_s = _measure_service_times(sut, queries, timing, seed,
                                       spec.scenario)
    records = _replay(queries, service_s, spec.scenario,
                      servers=max(sut.workers, 1))
    warm = spec.warmup_queries
    measured = records[warm:]
    # Per-query latency also lands in the ambient metrics registry, so a
    # saved serving run carries a histogram the /metrics exposition (and
    # its interpolated p50/p90/p99) can render without replaying events.
    metrics = current_metrics()
    latency_hist = metrics.histogram(
        f"loadgen_latency_seconds_{spec.scenario}", COMMS_LATENCY_BUCKETS)
    query_count = metrics.counter(f"loadgen_queries_{spec.scenario}")
    for rec in measured:
        events.publish("query", scenario=spec.scenario, index=rec.index,
                       latency_s=rec.latency_s, arrival_s=rec.arrival_s)
        latency_hist.observe(rec.latency_s)
        query_count.inc()

    latencies = [r.latency_s for r in measured]
    if measured:
        span = (max(r.arrival_s + r.latency_s for r in measured)
                - min(r.arrival_s for r in measured))
        achieved_qps = len(measured) / span if span > 0 else float(len(measured))
    else:
        achieved_qps = 0.0
    valid, violations, pcts = _verdict(spec, latencies, achieved_qps)

    result = ScenarioResult(
        scenario=spec.scenario, benchmark=sut.info.benchmark, seed=seed,
        timing=timing, query_count=len(queries), measured_count=len(measured),
        percentiles=pcts, achieved_qps=achieved_qps, valid=valid,
        violations=violations, prediction_checksum=checksum,
    )
    events.publish("scenario_stop", scenario=spec.scenario,
                   benchmark=sut.info.benchmark, valid=valid,
                   achieved_qps=achieved_qps,
                   p99=pcts.get("p99"), measured=len(measured))
    return result


def find_max_qps(sut: SUT, server_spec: ScenarioSpec, *, seed: int = 0,
                 timing: str = "virtual", iterations: int = 12,
                 hi_qps: float = 1e4) -> float:
    """Max sustainable QPS under the Server constraint, by binary search.

    Service times are obtained once (measured or virtual); each probe
    regenerates the Poisson arrival schedule at the probe rate with the
    same seed and replays the queue — validity is monotone in the arrival
    rate for a fixed service-time sequence, so bisection converges.  The
    bracket grows geometrically from the spec's target until a probe
    fails (capped at ``hi_qps``); a fixed iteration count keeps the
    result deterministic to a resolution of ``bracket / 2**iterations``.
    """
    service_s = _measure_service_times(
        sut, make_queries(server_spec, sut.pool_size, seed), timing, seed,
        "server")

    def probe(qps: float) -> bool:
        spec = server_spec.at_qps(qps)
        queries = make_queries(spec, sut.pool_size, seed)
        records = _replay(queries, service_s, "server",
                          servers=max(sut.workers, 1))
        measured = records[spec.warmup_queries:]
        latencies = [r.latency_s for r in measured]
        if measured:
            span = (max(r.arrival_s + r.latency_s for r in measured)
                    - min(r.arrival_s for r in measured))
            qps_achieved = (len(measured) / span if span > 0
                            else float(len(measured)))
        else:
            qps_achieved = 0.0
        valid, _, _ = _verdict(spec, latencies, qps_achieved)
        return valid

    lo = 0.0
    hi = float(server_spec.target_qps or 1.0)
    if probe(hi):
        # Nominal target holds; grow the bracket until a rate fails.
        lo = hi
        while hi < hi_qps:
            hi = min(hi * 2.0, hi_qps)
            if probe(hi):
                lo = hi
            else:
                break
        if lo >= hi_qps:
            return hi_qps  # valid all the way to the cap
    for _ in range(int(iterations)):
        mid = (lo + hi) / 2.0
        if probe(mid):
            lo = mid
        else:
            hi = mid
    current_events().publish("max_qps", benchmark=sut.info.benchmark,
                             scenario="server", max_qps=lo, timing=timing)
    return lo
