"""Serving reports: per-scenario verdicts + the bench-diff payload.

``build_loadgen_payload`` folds one serving campaign (several benchmarks,
three scenarios each, each run twice with the same seed for the
determinism proof) into a ``repro.bench_loadgen.v1`` JSON document.  The
``checks`` block carries exactly what the regression gate
(:mod:`repro.telemetry.regress`) declares for this schema:

- ``all_valid`` / ``deterministic`` / ``scenario_count`` gate **exact**
  (verdicts and bit-identity have zero legitimate variance — in virtual
  timing they are machine-independent);
- ``min_server_max_qps`` gates higher-is-better with a wide band, the
  serving analog of the campaign speedup gate.

CI runs ``repro loadgen --smoke -o fresh.json`` and diffs it against the
committed ``benchmarks/reports/BENCH_loadgen.json`` via ``repro
bench-diff``, the same path every other bench report takes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .harness import ScenarioResult

__all__ = ["LOADGEN_SCHEMA", "build_loadgen_payload", "gate_failures",
           "render_loadgen_report"]

LOADGEN_SCHEMA = "repro.bench_loadgen.v1"


def build_loadgen_payload(
        results: Mapping[str, Iterable[ScenarioResult]],
        reruns: Mapping[str, Iterable[ScenarioResult]] | None = None,
        *, timing: str = "virtual", seed: int = 0) -> dict:
    """The ``repro.bench_loadgen.v1`` document for one serving campaign.

    ``results`` maps benchmark name -> its scenario results; ``reruns``
    (same shape, from a second same-seed pass) backs the determinism
    check — every percentile and prediction checksum must match
    bit-for-bit between the passes.
    """
    benchmarks: dict[str, dict] = {}
    all_valid = True
    deterministic = True
    scenario_count = 0
    server_max_qps: list[float] = []

    for name, bench_results in results.items():
        per_scenario: dict[str, dict] = {}
        for res in bench_results:
            per_scenario[res.scenario] = res.to_payload()
            scenario_count += 1
            all_valid = all_valid and res.valid
            if res.scenario == "server" and res.max_qps is not None:
                server_max_qps.append(res.max_qps)
        benchmarks[name] = per_scenario

    if reruns is not None:
        for name, rerun_results in reruns.items():
            for res in rerun_results:
                base = benchmarks.get(name, {}).get(res.scenario)
                if base is None:
                    deterministic = False
                    continue
                # Predictions must always reproduce; latency statistics are
                # only bit-reproducible under virtual timing (wall-clock
                # service times are real measurements and legitimately vary).
                same = base["prediction_checksum"] == res.prediction_checksum
                if timing == "virtual":
                    same = (same
                            and base["percentiles"] == res.percentiles
                            and base["achieved_qps"] == res.achieved_qps
                            and base["max_qps"] == res.max_qps)
                benchmarks[name][res.scenario]["rerun_identical"] = same
                deterministic = deterministic and same

    return {
        "schema": LOADGEN_SCHEMA,
        "timing": timing,
        "seed": seed,
        "benchmarks": benchmarks,
        "checks": {
            "all_valid": all_valid,
            "deterministic": deterministic if reruns is not None else None,
            "scenario_count": scenario_count,
            "min_server_max_qps": (min(server_max_qps)
                                   if server_max_qps else 0.0),
        },
    }


def gate_failures(payload: dict) -> list[str]:
    """Smoke-gate verdicts: human-readable failures, empty when clean."""
    failures: list[str] = []
    checks = payload.get("checks", {})
    if not checks.get("all_valid"):
        for name, scenarios in payload.get("benchmarks", {}).items():
            for scenario, res in scenarios.items():
                for violation in res.get("violations", []):
                    failures.append(f"{name}/{scenario}: {violation}")
        if not failures:
            failures.append("all_valid is false")
    if checks.get("deterministic") is False:
        failures.append(
            "same-seed rerun diverged (percentiles or prediction checksum)")
    if checks.get("min_server_max_qps", 0.0) <= 0.0:
        failures.append("server max-QPS search found no sustainable rate")
    return failures


def render_loadgen_report(payload: dict) -> str:
    """Fixed-width per-scenario table of one loadgen payload."""
    header = (f"{'Benchmark':<24}{'Scenario':<15}{'p50':>10}{'p90':>10}"
              f"{'p99':>10}{'QPS':>10}{'maxQPS':>10}  verdict")
    lines = [header, "-" * len(header)]
    for name in sorted(payload.get("benchmarks", {})):
        for scenario in ("single_stream", "server", "offline"):
            res = payload["benchmarks"][name].get(scenario)
            if res is None:
                continue
            p = res.get("percentiles", {})
            max_qps = res.get("max_qps")
            lines.append(
                f"{name:<24}{scenario:<15}"
                f"{_ms(p.get('p50')):>10}{_ms(p.get('p90')):>10}"
                f"{_ms(p.get('p99')):>10}"
                f"{res.get('achieved_qps', 0.0):>10.1f}"
                f"{(f'{max_qps:.1f}' if max_qps is not None else '-'):>10}"
                f"  {'VALID' if res.get('valid') else 'INVALID'}")
    checks = payload.get("checks", {})
    lines.append("")
    lines.append(
        f"checks: all_valid={checks.get('all_valid')} "
        f"deterministic={checks.get('deterministic')} "
        f"scenarios={checks.get('scenario_count')} "
        f"min_server_max_qps={checks.get('min_server_max_qps', 0.0):.1f}")
    return "\n".join(lines)


def _ms(latency_s) -> str:
    return "-" if latency_s is None else f"{latency_s * 1e3:.2f}ms"
