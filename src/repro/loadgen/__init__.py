"""LoadGen-style serving harness over trained models.

The training suite measures time-to-quality and then leaves the trained
model a dead end; this package gives it the traffic side MLPerf Inference
(Reddi et al.) defines.  A serving run rehydrates a model from a training
artifact (:mod:`~repro.loadgen.sut`), drives it with a seeded query stream
in one of the three §4 scenarios (:mod:`~repro.loadgen.scenarios`),
records per-query latencies against the scenario's declarative constraint
(:mod:`~repro.loadgen.harness`), and reports per-scenario verdicts plus a
``repro.bench_loadgen.v1`` payload the existing ``bench-diff`` regression
gate consumes (:mod:`~repro.loadgen.report`).

Surface: ``repro loadgen --benchmark <name> [--scenario <s>] [--smoke]``.
"""

from .scenarios import (
    SCENARIO_NAMES,
    ConstraintSpec,
    Query,
    ScenarioSpec,
    default_scenarios,
    make_queries,
    percentile,
)
from .sut import SUT, ServingPool, load_sut, train_and_save, virtual_service_times
from .harness import QueryRecord, ScenarioResult, find_max_qps, run_scenario
from .report import (
    LOADGEN_SCHEMA,
    build_loadgen_payload,
    gate_failures,
    render_loadgen_report,
)

__all__ = [
    "SCENARIO_NAMES",
    "ConstraintSpec",
    "Query",
    "ScenarioSpec",
    "default_scenarios",
    "make_queries",
    "percentile",
    "SUT",
    "ServingPool",
    "load_sut",
    "train_and_save",
    "virtual_service_times",
    "QueryRecord",
    "ScenarioResult",
    "find_max_qps",
    "run_scenario",
    "LOADGEN_SCHEMA",
    "build_loadgen_payload",
    "gate_failures",
    "render_loadgen_report",
]
