"""Synthetic datasets standing in for the paper's public datasets.

Each generator is deterministic given its config seed, playing the role of
a fixed public dataset; see DESIGN.md for the substitution rationale.
"""

from .synthetic_images import ImageNetConfig, SyntheticImageNet, random_crop_flip
from .shapes import SHAPE_CLASSES, Scene, SceneConfig, SceneObject, ShapeScenes
from .translation import SyntheticTranslation, TranslationConfig, Vocabulary
from .interactions import InteractionConfig, SyntheticInteractions
from .fractal import FractalExpansion, expand_interactions

__all__ = [
    "ImageNetConfig",
    "SyntheticImageNet",
    "random_crop_flip",
    "SHAPE_CLASSES",
    "Scene",
    "SceneConfig",
    "SceneObject",
    "ShapeScenes",
    "SyntheticTranslation",
    "TranslationConfig",
    "Vocabulary",
    "InteractionConfig",
    "SyntheticInteractions",
    "FractalExpansion",
    "expand_interactions",
]
