"""SyntheticImageNet: a procedural stand-in for ILSVRC-2012 classification.

The paper's image-classification benchmark (§3.1.1) needs a labeled image
dataset whose classes are learnable by a CNN yet not linearly separable at
the pixel level — so that training exhibits the dynamics the paper studies
(noisy early epochs, batch-size/LR sensitivity, tens of epochs to converge).

Each class is defined by a random low-frequency *prototype texture*; a
sample is its class prototype under a random spatial shift, per-sample
contrast/brightness jitter, plus i.i.d. pixel noise.  Shifts make the task
translation-sensitive (rewarding convolutional structure) and the noise
scale controls difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..framework.data import ArrayDataset

__all__ = ["ImageNetConfig", "SyntheticImageNet", "random_crop_flip"]


@dataclass(frozen=True)
class ImageNetConfig:
    """Generation parameters for the synthetic classification dataset."""

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_size: int = 1500
    val_size: int = 400
    noise_scale: float = 0.65
    max_shift: int = 3
    seed: int = 2019


def _low_frequency_texture(rng: np.random.Generator, size: int, channels: int) -> np.ndarray:
    """A smooth random texture: sum of a few random 2-D sinusoids per channel."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    texture = np.zeros((channels, size, size), dtype=np.float64)
    for c in range(channels):
        for _ in range(4):
            fx, fy = rng.uniform(0.5, 2.5, size=2) * 2 * np.pi / size
            phase = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(0.5, 1.0)
            texture[c] += amp * np.sin(fx * xx + fy * yy + phase)
    return texture / np.abs(texture).max()


class SyntheticImageNet:
    """Deterministic synthetic classification dataset.

    All randomness derives from ``config.seed``; two instances with equal
    configs produce identical data (the dataset plays the role of a fixed
    public dataset, per §3.2.1 "data reformatting" being untimed).
    """

    def __init__(self, config: ImageNetConfig = ImageNetConfig()):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.prototypes = np.stack(
            [
                _low_frequency_texture(rng, config.image_size + 2 * config.max_shift, config.channels)
                for _ in range(config.num_classes)
            ]
        )
        self.train = self._generate(rng, config.train_size)
        self.val = self._generate(rng, config.val_size)

    def _generate(self, rng: np.random.Generator, n: int) -> ArrayDataset:
        cfg = self.config
        labels = rng.integers(0, cfg.num_classes, size=n)
        size = cfg.image_size
        images = np.empty((n, cfg.channels, size, size), dtype=np.float32)
        shifts = rng.integers(0, 2 * cfg.max_shift + 1, size=(n, 2))
        contrast = rng.uniform(0.7, 1.3, size=n)
        brightness = rng.normal(0, 0.1, size=n)
        noise = rng.normal(0, cfg.noise_scale, size=(n, cfg.channels, size, size))
        for i in range(n):
            dy, dx = shifts[i]
            crop = self.prototypes[labels[i], :, dy : dy + size, dx : dx + size]
            images[i] = (contrast[i] * crop + brightness[i] + noise[i]).astype(np.float32)
        return ArrayDataset(images, labels.astype(np.int64))


def random_crop_flip(images: np.ndarray, labels: np.ndarray, rng: np.random.Generator,
                     pad: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Standard augmentation: reflect-pad + random crop + horizontal flip.

    Runs per batch inside the timed region — the paper requires that
    augmentation not be hoisted into untimed reformatting (§3.2.1).
    """
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="reflect")
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    flips = rng.random(n) < 0.5
    for i in range(n):
        dy, dx = offsets[i]
        crop = padded[i, :, dy : dy + h, dx : dx + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out, labels
