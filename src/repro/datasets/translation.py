"""SyntheticTranslation: a compositional stand-in for WMT EN→DE.

The translation benchmarks (§3.1.3) need a corpus whose reference
translations are deterministic functions of the source (so BLEU against the
reference is a genuine quality signal), but rich enough that a model must
learn token mapping, *reordering*, and an agreement phenomenon:

- every source token maps through a fixed bilingual dictionary;
- the token order of each clause is **reversed** in the target (the classic
  structured-reordering task that requires attention/recurrence);
- a clause-final *agreement marker* is appended whose identity depends on
  the clause length parity (a long-range dependency).

Sentences are one or two clauses joined by a separator token.  Train and
test sets are disjoint at the sentence level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TranslationConfig", "SyntheticTranslation", "Vocabulary"]

PAD, BOS, EOS, SEP = 0, 1, 2, 3
N_SPECIAL = 4


@dataclass(frozen=True)
class TranslationConfig:
    source_vocab: int = 28  # content tokens (excluding specials)
    clause_min: int = 2
    clause_max: int = 5
    two_clause_prob: float = 0.35
    train_size: int = 1200
    test_size: int = 200
    seed: int = 2016


class Vocabulary:
    """Shared token-id space: specials, source tokens, target tokens, markers."""

    def __init__(self, config: TranslationConfig):
        self.config = config
        self.pad, self.bos, self.eos, self.sep = PAD, BOS, EOS, SEP
        self.source_start = N_SPECIAL
        self.target_start = N_SPECIAL + config.source_vocab
        self.marker_even = self.target_start + config.source_vocab
        self.marker_odd = self.marker_even + 1
        self.size = self.marker_odd + 1

    def map_token(self, source_token: int) -> int:
        """Bilingual dictionary: source token i -> target token i."""
        return source_token - self.source_start + self.target_start


class SyntheticTranslation:
    """Deterministic synthetic parallel corpus with disjoint train/test."""

    def __init__(self, config: TranslationConfig = TranslationConfig()):
        self.config = config
        self.vocab = Vocabulary(config)
        rng = np.random.default_rng(config.seed)
        seen: set[tuple[int, ...]] = set()
        pairs: list[tuple[list[int], list[int]]] = []
        target_total = config.train_size + config.test_size
        while len(pairs) < target_total:
            src = self._sample_source(rng)
            key = tuple(src)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((src, self.translate(src)))
        self.train_pairs = pairs[: config.train_size]
        self.test_pairs = pairs[config.train_size :]

    # -- generation ---------------------------------------------------------
    def _sample_clause(self, rng: np.random.Generator) -> list[int]:
        cfg = self.config
        length = int(rng.integers(cfg.clause_min, cfg.clause_max + 1))
        v = self.vocab
        return list(rng.integers(v.source_start, v.source_start + cfg.source_vocab, size=length))

    def _sample_source(self, rng: np.random.Generator) -> list[int]:
        clauses = [self._sample_clause(rng)]
        if rng.random() < self.config.two_clause_prob:
            clauses.append(self._sample_clause(rng))
        out: list[int] = []
        for i, clause in enumerate(clauses):
            if i:
                out.append(SEP)
            out.extend(clause)
        return out

    # -- the reference translation function -----------------------------------
    def translate(self, source: list[int]) -> list[int]:
        """Deterministic reference translation (see module docstring)."""
        v = self.vocab
        clauses: list[list[int]] = [[]]
        for tok in source:
            if tok == SEP:
                clauses.append([])
            else:
                clauses[-1].append(tok)
        out: list[int] = []
        for i, clause in enumerate(clauses):
            if i:
                out.append(SEP)
            mapped = [v.map_token(t) for t in reversed(clause)]
            out.extend(mapped)
            out.append(v.marker_even if len(clause) % 2 == 0 else v.marker_odd)
        return out

    # -- batching helpers --------------------------------------------------------
    @staticmethod
    def pad_batch(sequences: list[list[int]], pad_value: int = PAD,
                  length: int | None = None) -> np.ndarray:
        """Right-pad variable-length sequences into an ``(N, T)`` array."""
        max_len = length or max((len(s) for s in sequences), default=0)
        out = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
        for i, seq in enumerate(sequences):
            out[i, : len(seq)] = seq
        return out

    def encoder_inputs(self, sources: list[list[int]]) -> np.ndarray:
        return self.pad_batch(sources)

    def decoder_io(self, targets: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
        """Teacher-forcing pairs: ``(BOS + target, target + EOS)``, padded."""
        inputs = [[BOS] + t for t in targets]
        outputs = [t + [EOS] for t in targets]
        max_len = max(len(s) for s in inputs)
        return self.pad_batch(inputs, length=max_len), self.pad_batch(outputs, length=max_len)
