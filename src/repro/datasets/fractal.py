"""Fractal expansion of interaction datasets (§3.1.5 / Belletti et al. 2019).

"Unfortunately public datasets tend to be orders of magnitude smaller than
industrial datasets. While MLPERF v0.5 adopted the MovieLens-20M dataset
... the dataset and benchmark are being updated for v0.7 synthetically,
while retaining characteristics of the original data (Belletti et al.,
2019)."

Belletti et al. grow a rating matrix by a self-similar (Kronecker-graph)
construction: the expanded matrix is approximately the Kronecker product
of the original with a small seed pattern, which preserves the original's
degree distributions at a larger scale.  This module implements that
expansion for implicit-feedback interaction sets:

- each original (user u, item i) interaction spawns interactions between
  the *blocks* of expanded users {u·ku .. u·ku+ku-1} and expanded items
  {i·ki .. i·ki+ki-1}, gated by a seed pattern so sparsity is preserved,
- item popularity skew and user activity skew carry over (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FractalExpansion", "expand_interactions"]


@dataclass(frozen=True)
class FractalExpansion:
    """Result of expanding an interaction set."""

    users: np.ndarray
    items: np.ndarray
    num_users: int
    num_items: int
    user_factor: int
    item_factor: int


def expand_interactions(
    users: np.ndarray,
    items: np.ndarray,
    num_users: int,
    num_items: int,
    user_factor: int,
    item_factor: int,
    seed_density: float = 0.5,
    rng: np.random.Generator | None = None,
) -> FractalExpansion:
    """Kronecker-style expansion of an implicit-feedback dataset.

    Parameters
    ----------
    users, items:
        Parallel arrays of observed interactions.
    user_factor, item_factor:
        Expansion multipliers (the seed-pattern dimensions).
    seed_density:
        Fraction of the ``user_factor × item_factor`` seed pattern that is
        active; controls how much the interaction count grows
        (≈ ``len(users) * user_factor * item_factor * seed_density``).
    """
    if user_factor < 1 or item_factor < 1:
        raise ValueError("expansion factors must be >= 1")
    if not 0.0 < seed_density <= 1.0:
        raise ValueError("seed_density must be in (0, 1]")
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    if users.shape != items.shape:
        raise ValueError("users and items must align")
    rng = rng or np.random.default_rng(0)

    # Seed pattern: which (user-offset, item-offset) block cells are live.
    cells = user_factor * item_factor
    n_live = max(int(round(cells * seed_density)), 1)
    live = rng.permutation(cells)[:n_live]
    du = (live // item_factor).astype(np.int64)
    di = (live % item_factor).astype(np.int64)

    # Kronecker product on the interaction list: every original edge is
    # replicated at each live offset of the seed pattern.
    expanded_users = (users[:, None] * user_factor + du[None, :]).reshape(-1)
    expanded_items = (items[:, None] * item_factor + di[None, :]).reshape(-1)

    return FractalExpansion(
        users=expanded_users,
        items=expanded_items,
        num_users=num_users * user_factor,
        num_items=num_items * item_factor,
        user_factor=user_factor,
        item_factor=item_factor,
    )
