"""ShapeScenes: a procedural stand-in for COCO detection/segmentation.

Scenes contain 1-3 geometric objects (square, circle, triangle) of random
size, position and intensity over a noisy background.  Every object carries
its class label, tight bounding box and pixel mask, so the same generator
serves both the SSD-style detection benchmark and the Mask R-CNN-style
instance-segmentation benchmark (§3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SceneConfig", "SceneObject", "Scene", "ShapeScenes", "SHAPE_CLASSES"]

SHAPE_CLASSES = ("square", "circle", "triangle")


@dataclass(frozen=True)
class SceneConfig:
    image_size: int = 32
    min_objects: int = 1
    max_objects: int = 3
    min_radius: int = 4
    max_radius: int = 7
    noise_scale: float = 0.25
    train_size: int = 600
    val_size: int = 150
    seed: int = 2017


@dataclass
class SceneObject:
    """One rendered object: class id, xyxy box, boolean mask."""

    label: int
    box: np.ndarray
    mask: np.ndarray


@dataclass
class Scene:
    """One image with its annotations."""

    image: np.ndarray  # (1, H, W) float32
    objects: list[SceneObject] = field(default_factory=list)


def _render_shape(label: int, cy: float, cx: float, radius: float, size: int) -> np.ndarray:
    """Boolean mask of a shape centred at (cy, cx) with given radius."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    if label == 0:  # square
        return (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
    if label == 1:  # circle
        return (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    if label == 2:  # triangle (upward, area shrinks with height)
        within_y = (yy >= cy - radius) & (yy <= cy + radius)
        half_width = (yy - (cy - radius)) / 2.0
        return within_y & (np.abs(xx - cx) <= half_width)
    raise ValueError(f"unknown shape label {label}")


def _mask_to_box(mask: np.ndarray) -> np.ndarray:
    ys, xs = np.nonzero(mask)
    # xyxy with exclusive upper edge, float for IoU math.
    return np.array([xs.min(), ys.min(), xs.max() + 1, ys.max() + 1], dtype=np.float64)


class ShapeScenes:
    """Deterministic synthetic detection/segmentation dataset."""

    def __init__(self, config: SceneConfig = SceneConfig()):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.train = [self._scene(rng) for _ in range(config.train_size)]
        self.val = [self._scene(rng) for _ in range(config.val_size)]

    def _scene(self, rng: np.random.Generator) -> Scene:
        cfg = self.config
        size = cfg.image_size
        image = rng.normal(0.0, cfg.noise_scale, size=(size, size))
        n_objects = int(rng.integers(cfg.min_objects, cfg.max_objects + 1))
        objects: list[SceneObject] = []
        occupancy = np.zeros((size, size), dtype=bool)
        for _ in range(n_objects):
            for _attempt in range(10):
                label = int(rng.integers(0, len(SHAPE_CLASSES)))
                radius = float(rng.uniform(cfg.min_radius, cfg.max_radius))
                margin = radius + 1
                cy = float(rng.uniform(margin, size - margin))
                cx = float(rng.uniform(margin, size - margin))
                mask = _render_shape(label, cy, cx, radius, size)
                if not mask.any():
                    continue
                # Reject heavy overlap so boxes stay well-defined.
                if (mask & occupancy).sum() > 0.2 * mask.sum():
                    continue
                occupancy |= mask
                intensity = float(rng.uniform(0.8, 1.5))
                image = image + intensity * mask
                objects.append(SceneObject(label=label, box=_mask_to_box(mask), mask=mask))
                break
        return Scene(image=image[None].astype(np.float32), objects=objects)

    @staticmethod
    def batch_images(scenes: list[Scene]) -> np.ndarray:
        """Stack scene images into an ``(N, 1, H, W)`` batch."""
        return np.stack([s.image for s in scenes])
