"""SyntheticInteractions: implicit-feedback data for the NCF benchmark.

The paper notes (§3.1.5) that public recommendation datasets are orders of
magnitude smaller than industrial ones and that v0.7 moves to *synthetic*
data that retains the characteristics of the original (Belletti et al.,
2019).  In that spirit this generator produces implicit user-item feedback
with the two characteristics that matter for the workload:

- a **power-law item popularity** distribution (long tail), which shapes
  embedding-table access patterns, and
- **latent structure**: interactions are drawn from a low-rank user-item
  affinity model, so collaborative filtering genuinely outperforms a
  popularity baseline.

The split follows NCF's leave-one-out protocol: one held-out positive per
user, ranked against sampled negatives at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InteractionConfig", "SyntheticInteractions"]


@dataclass(frozen=True)
class InteractionConfig:
    num_users: int = 160
    num_items: int = 320
    latent_dim: int = 6
    interactions_per_user: int = 22
    popularity_exponent: float = 1.1  # power-law tail
    num_eval_negatives: int = 50
    seed: int = 2015


class SyntheticInteractions:
    """Deterministic synthetic implicit-feedback dataset.

    Attributes
    ----------
    train_users, train_items:
        Parallel arrays of observed positive interactions (training set).
    eval_positives:
        ``(num_users,)`` — each user's held-out positive item.
    eval_negatives:
        ``(num_users, num_eval_negatives)`` — sampled unseen items.
    """

    def __init__(self, config: InteractionConfig = InteractionConfig()):
        unseen = config.num_items - config.interactions_per_user
        if unseen < config.num_eval_negatives:
            raise ValueError(
                f"need at least {config.num_eval_negatives} unseen items per user "
                f"for eval negatives, but only {unseen} remain "
                f"({config.num_items} items - {config.interactions_per_user} interactions)"
            )
        self.config = config
        rng = np.random.default_rng(config.seed)

        # Latent affinity model with popularity bias.
        user_factors = rng.normal(0, 1.0, size=(config.num_users, config.latent_dim))
        item_factors = rng.normal(0, 1.0, size=(config.num_items, config.latent_dim))
        popularity = (np.arange(1, config.num_items + 1, dtype=np.float64)
                      ** -config.popularity_exponent)
        rng.shuffle(popularity)
        affinity = user_factors @ item_factors.T + 2.0 * np.log(popularity)[None, :]

        users: list[int] = []
        items: list[int] = []
        positives = np.empty(config.num_users, dtype=np.int64)
        negatives = np.empty((config.num_users, config.num_eval_negatives), dtype=np.int64)
        self._seen: list[set[int]] = []
        for u in range(config.num_users):
            # Sample the user's item set by softmax over affinity.
            logits = affinity[u]
            probs = np.exp(logits - logits.max())
            probs /= probs.sum()
            chosen = rng.choice(
                config.num_items, size=config.interactions_per_user, replace=False, p=probs
            )
            seen = set(int(i) for i in chosen)
            self._seen.append(seen)
            # Leave-one-out: last sampled item becomes the eval positive.
            positives[u] = chosen[-1]
            for item in chosen[:-1]:
                users.append(u)
                items.append(int(item))
            # Eval negatives: uniform over unseen items.
            unseen = np.setdiff1d(np.arange(config.num_items), chosen)
            negatives[u] = rng.choice(unseen, size=config.num_eval_negatives, replace=False)

        self.train_users = np.array(users, dtype=np.int64)
        self.train_items = np.array(items, dtype=np.int64)
        self.eval_positives = positives
        self.eval_negatives = negatives
        self.item_popularity = popularity

    def sample_training_batch(
        self, batch_size: int, num_negatives: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (users, items, labels) with ``num_negatives`` negatives per
        positive — the NCF training scheme (BCE with negative sampling)."""
        idx = rng.integers(0, len(self.train_users), size=batch_size)
        pos_users = self.train_users[idx]
        pos_items = self.train_items[idx]
        neg_users = np.repeat(pos_users, num_negatives)
        neg_items = rng.integers(0, self.config.num_items, size=len(neg_users))
        # Resample any accidental positives (cheap rejection, one pass is
        # plenty at our sparsity).
        for i, (u, it) in enumerate(zip(neg_users, neg_items)):
            if int(it) in self._seen[u]:
                neg_items[i] = int(rng.integers(0, self.config.num_items))
        users = np.concatenate([pos_users, neg_users])
        items = np.concatenate([pos_items, neg_items])
        labels = np.concatenate(
            [np.ones(len(pos_users), dtype=np.float32), np.zeros(len(neg_users), dtype=np.float32)]
        )
        return users, items, labels

    @property
    def all_users(self) -> np.ndarray:
        return np.arange(self.config.num_users, dtype=np.int64)
