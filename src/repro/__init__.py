"""repro — a laptop-scale reproduction of the MLPerf Training Benchmark.

Subpackages
-----------
framework
    From-scratch NumPy autodiff framework (the PyTorch/TF substitute).
numerics
    Emulated reduced-precision weight formats (Figure 1 substrate).
metrics
    Quality metrics (top-k, BLEU, mAP, HR@K, move-match) and run statistics.
datasets
    Synthetic stand-ins for ImageNet / COCO / WMT / MovieLens.
models
    The seven reference models, scaled down but architecturally faithful.
go
    Go engine + MCTS + self-play (the MiniGo substrate).
suite
    The benchmark suite: Table 1 as executable objects.
core
    The paper's primary contribution: timing rules, structured logging,
    run aggregation, divisions, submissions, review, reporting.
systems
    Data-parallel system simulator used for the scaling studies (Figs 4/5).
telemetry
    Observability: trace spans (Chrome trace_event export), run metrics,
    and profiling hooks — zero-overhead no-ops until a session is activated.
"""

__version__ = "0.1.0"
