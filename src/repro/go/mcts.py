"""Monte-Carlo tree search guided by a policy/value network.

The AlphaGo-style search MiniGo uses (§3.1.4): PUCT selection with network
policy priors, leaf evaluation by the value head (no rollouts), Dirichlet
exploration noise at the root, and visit-count move selection.  The search
"performs many forward passes through the model to generate actions rather
than using a simulator" — exactly the compute profile the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .board import GoBoard

__all__ = ["MCTSConfig", "MCTS"]


@dataclass(frozen=True)
class MCTSConfig:
    num_simulations: int = 24
    c_puct: float = 1.5
    dirichlet_alpha: float = 0.5
    dirichlet_weight: float = 0.25
    # Passing is excluded from search before this many moves have been
    # played (unless no stone move is legal).  Real MiniGo restricts early
    # passing the same way; without it self-play collapses into trivial
    # double-pass games and the value net degenerates.
    min_moves_before_pass: int = 10


class _Node:
    __slots__ = ("board", "prior", "children", "visit_count", "value_sum", "expanded")

    def __init__(self, board: GoBoard, prior: float):
        self.board = board
        self.prior = prior
        self.children: dict[int, _Node] = {}
        self.visit_count = 0
        self.value_sum = 0.0
        self.expanded = False

    @property
    def mean_value(self) -> float:
        return self.value_sum / self.visit_count if self.visit_count else 0.0


class MCTS:
    """PUCT search over ``GoBoard`` positions.

    ``evaluate(board) -> (policy, value)`` must return a probability vector
    over the full move space (``board.num_moves``) and a scalar value in
    [-1, 1] from the perspective of the side to move.
    """

    def __init__(self, evaluate, config: MCTSConfig = MCTSConfig(),
                 rng: np.random.Generator | None = None):
        self.evaluate = evaluate
        self.config = config
        self.rng = rng or np.random.default_rng()

    def search(self, board: GoBoard, add_noise: bool = True) -> np.ndarray:
        """Run simulations from ``board``; return root visit distribution."""
        root = _Node(board, prior=1.0)
        self._expand(root, add_noise=add_noise)
        for _ in range(self.config.num_simulations):
            self._simulate(root)
        visits = np.zeros(board.num_moves, dtype=np.float64)
        for move, child in root.children.items():
            visits[move] = child.visit_count
        total = visits.sum()
        return visits / total if total > 0 else visits

    def best_move(self, board: GoBoard, temperature: float = 0.0) -> int:
        """Pick a move: argmax of visits, or sample with ``temperature``."""
        policy = self.search(board)
        if temperature <= 1e-6:
            return int(policy.argmax())
        scaled = policy ** (1.0 / temperature)
        scaled /= scaled.sum()
        return int(self.rng.choice(len(scaled), p=scaled))

    # -- internals ------------------------------------------------------------
    def _expand(self, node: _Node, add_noise: bool = False) -> float:
        """Expand a leaf: create children with priors; return leaf value."""
        board = node.board
        if board.is_over:
            # Terminal value from the perspective of the side to move.
            return board.result_for(board.to_play)
        policy, value = self.evaluate(board)
        legal = board.legal_moves()
        if board.move_count < self.config.min_moves_before_pass and len(legal) > 1:
            legal = [m for m in legal if m != board.pass_move]
        priors = np.array([policy[m] for m in legal], dtype=np.float64)
        total = priors.sum()
        priors = priors / total if total > 0 else np.full(len(legal), 1.0 / len(legal))
        if add_noise and len(legal) > 1:
            noise = self.rng.dirichlet([self.config.dirichlet_alpha] * len(legal))
            w = self.config.dirichlet_weight
            priors = (1 - w) * priors + w * noise
        for move, prior in zip(legal, priors):
            node.children[move] = _Node(board.play(move), float(prior))
        node.expanded = True
        return float(value)

    def _select_child(self, node: _Node) -> tuple[int, _Node]:
        """PUCT: maximize Q + c * P * sqrt(N_parent) / (1 + N_child)."""
        sqrt_total = np.sqrt(max(node.visit_count, 1))
        best_score, best = -np.inf, None
        for move, child in node.children.items():
            # Child value is stored from the child's to-move perspective;
            # negate for the parent.
            q = -child.mean_value
            u = self.config.c_puct * child.prior * sqrt_total / (1 + child.visit_count)
            score = q + u
            if score > best_score:
                best_score, best = score, (move, child)
        assert best is not None
        return best

    def _simulate(self, root: _Node) -> None:
        path = [root]
        node = root
        while node.expanded and not node.board.is_over:
            _, node = self._select_child(node)
            path.append(node)
        value = self._expand(node) if not node.board.is_over else node.board.result_for(
            node.board.to_play
        )
        # Backpropagate, flipping the sign at each ply.
        for depth, visited in enumerate(reversed(path)):
            visited.visit_count += 1
            visited.value_sum += value if depth % 2 == 0 else -value
