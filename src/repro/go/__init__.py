"""Go game substrate for the MiniGo reinforcement-learning benchmark."""

from .board import BLACK, EMPTY, WHITE, GoBoard
from .mcts import MCTS, MCTSConfig
from .reference_player import HeuristicPlayer, ReferenceGame, generate_reference_games
from .selfplay import SelfPlayExample, play_selfplay_game, selfplay_batch
from .pro import DEFAULT_KOMI, ProConfig, generate_pro_games, pro_reference_games, train_pro_network

__all__ = [
    "BLACK",
    "EMPTY",
    "WHITE",
    "GoBoard",
    "MCTS",
    "MCTSConfig",
    "HeuristicPlayer",
    "ReferenceGame",
    "generate_reference_games",
    "SelfPlayExample",
    "play_selfplay_game",
    "selfplay_batch",
    "DEFAULT_KOMI",
    "ProConfig",
    "generate_pro_games",
    "pro_reference_games",
    "train_pro_network",
]
