"""Go board rules: captures, suicide, positional superko, area scoring.

The MiniGo benchmark (§3.1.4) generates its training data by self-play
rather than from a fixed dataset, which requires a full game engine.  This
is a complete small-board Go implementation:

- stones and captures with breadth-first group/liberty computation,
- the suicide rule (self-capture moves are illegal),
- positional superko (a move may not recreate any previous whole-board
  position, which also forbids simple ko),
- two consecutive passes end the game,
- Tromp-Taylor area scoring with komi.

Boards are immutable from the caller's perspective: :meth:`play` returns a
new ``GoBoard``, which keeps MCTS tree code simple and bug-resistant.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GoBoard", "EMPTY", "BLACK", "WHITE"]

EMPTY, BLACK, WHITE = 0, 1, 2


def _opponent(color: int) -> int:
    return BLACK + WHITE - color


class GoBoard:
    """Immutable Go position.  Moves are flat indices; ``size*size`` = pass."""

    def __init__(self, size: int = 5, komi: float = 0.5):
        if size < 2:
            raise ValueError("board size must be at least 2")
        self.size = size
        self.komi = komi
        self.board = np.zeros((size, size), dtype=np.int8)
        self.to_play = BLACK
        self.passes = 0
        self.move_count = 0
        self.last_move: int | None = None
        self._history: frozenset[bytes] = frozenset([self.board.tobytes()])

    # -- basic helpers --------------------------------------------------------
    @property
    def pass_move(self) -> int:
        return self.size * self.size

    @property
    def num_moves(self) -> int:
        """Size of the move space including pass."""
        return self.size * self.size + 1

    def to_coord(self, move: int) -> tuple[int, int]:
        return divmod(move, self.size)

    def _neighbors(self, y: int, x: int):
        if y > 0:
            yield y - 1, x
        if y < self.size - 1:
            yield y + 1, x
        if x > 0:
            yield y, x - 1
        if x < self.size - 1:
            yield y, x + 1

    def _group_and_liberties(self, y: int, x: int, grid: np.ndarray) -> tuple[set, set]:
        """BFS the group containing (y, x); returns (stones, liberties)."""
        color = grid[y, x]
        stones = {(y, x)}
        liberties: set[tuple[int, int]] = set()
        frontier = [(y, x)]
        while frontier:
            cy, cx = frontier.pop()
            for ny, nx in self._neighbors(cy, cx):
                v = grid[ny, nx]
                if v == EMPTY:
                    liberties.add((ny, nx))
                elif v == color and (ny, nx) not in stones:
                    stones.add((ny, nx))
                    frontier.append((ny, nx))
        return stones, liberties

    # -- move application -----------------------------------------------------
    def _apply_stone(self, move: int) -> np.ndarray | None:
        """Resulting grid after playing ``move``, or None if illegal
        (occupied or suicide).  Superko is checked by the caller."""
        y, x = self.to_coord(move)
        if self.board[y, x] != EMPTY:
            return None
        grid = self.board.copy()
        color = self.to_play
        grid[y, x] = color
        opponent = _opponent(color)
        # Remove captured opponent groups.
        for ny, nx in self._neighbors(y, x):
            if grid[ny, nx] == opponent:
                stones, libs = self._group_and_liberties(ny, nx, grid)
                if not libs:
                    for sy, sx in stones:
                        grid[sy, sx] = EMPTY
        # Suicide check on own group.
        _, libs = self._group_and_liberties(y, x, grid)
        if not libs:
            return None
        return grid

    def is_legal(self, move: int) -> bool:
        if self.is_over:
            return False
        if move == self.pass_move:
            return True
        if not 0 <= move < self.pass_move:
            return False
        grid = self._apply_stone(move)
        if grid is None:
            return False
        return grid.tobytes() not in self._history

    def legal_moves(self) -> list[int]:
        """All legal moves including pass."""
        moves = [m for m in range(self.pass_move) if self.is_legal(m)]
        moves.append(self.pass_move)
        return moves

    def play(self, move: int) -> "GoBoard":
        """Return the position after ``move``; raises on illegal moves."""
        if self.is_over:
            raise ValueError("game is over")
        child = GoBoard.__new__(GoBoard)
        child.size = self.size
        child.komi = self.komi
        child.move_count = self.move_count + 1
        child.last_move = move
        child.to_play = _opponent(self.to_play)
        if move == self.pass_move:
            child.board = self.board.copy()
            child.passes = self.passes + 1
            child._history = self._history
            return child
        grid = self._apply_stone(move)
        if grid is None:
            raise ValueError(f"illegal move {move} (occupied or suicide)")
        key = grid.tobytes()
        if key in self._history:
            raise ValueError(f"illegal move {move} (superko)")
        child.board = grid
        child.passes = 0
        child._history = self._history | {key}
        return child

    # -- game end & scoring ---------------------------------------------------
    @property
    def is_over(self) -> bool:
        return self.passes >= 2 or self.move_count >= 4 * self.size * self.size

    def score(self) -> float:
        """Tromp-Taylor area score from Black's perspective (minus komi).

        Empty regions count for a color iff they touch only that color.
        """
        grid = self.board
        black = float((grid == BLACK).sum())
        white = float((grid == WHITE).sum())
        visited = np.zeros_like(grid, dtype=bool)
        for y in range(self.size):
            for x in range(self.size):
                if grid[y, x] != EMPTY or visited[y, x]:
                    continue
                region = {(y, x)}
                frontier = [(y, x)]
                borders = set()
                while frontier:
                    cy, cx = frontier.pop()
                    visited[cy, cx] = True
                    for ny, nx in self._neighbors(cy, cx):
                        v = grid[ny, nx]
                        if v == EMPTY and (ny, nx) not in region:
                            region.add((ny, nx))
                            frontier.append((ny, nx))
                        elif v != EMPTY:
                            borders.add(int(v))
                if borders == {BLACK}:
                    black += len(region)
                elif borders == {WHITE}:
                    white += len(region)
        return black - white - self.komi

    def winner(self) -> int:
        """BLACK or WHITE by area score (komi breaks ties)."""
        return BLACK if self.score() > 0 else WHITE

    def result_for(self, color: int) -> float:
        """+1 if ``color`` wins, -1 otherwise."""
        return 1.0 if self.winner() == color else -1.0

    # -- features ----------------------------------------------------------------
    def feature_planes(self) -> np.ndarray:
        """Network input ``(3, size, size)``: own stones, opponent stones,
        a constant plane encoding the side to move (1 = black)."""
        own = (self.board == self.to_play).astype(np.float32)
        opp = (self.board == _opponent(self.to_play)).astype(np.float32)
        turn = np.full_like(own, 1.0 if self.to_play == BLACK else 0.0)
        return np.stack([own, opp, turn])

    def __repr__(self) -> str:
        symbols = {EMPTY: ".", BLACK: "X", WHITE: "O"}
        rows = ["".join(symbols[int(v)] for v in row) for row in self.board]
        return "\n".join(rows) + f"\nto_play={'B' if self.to_play == BLACK else 'W'}"
