"""A fixed heuristic Go player standing in for "human reference games".

The MiniGo quality metric is "the percentage of predicted moves that match
human reference games" (§3.1.4, Table 1).  We have no human games, so a
deterministic heuristic player of moderate strength generates the
reference corpus: its games are reproducible (seeded), non-trivial (it
captures, defends, and values territory), and *learnable* (its policy is a
deterministic function of the position, so a network can approach high
agreement — analogous to predicting professional moves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .board import BLACK, EMPTY, GoBoard

__all__ = ["HeuristicPlayer", "ReferenceGame", "generate_reference_games"]


class HeuristicPlayer:
    """1-ply heuristic player: greedy over a hand-crafted move score.

    The score rewards captures, escaping atari, liberties of the placed
    stone's group, central position, and adjacency to opponent groups with
    few liberties.  Ties break deterministically by move index, and a small
    seeded jitter (optional) diversifies openings across games.
    """

    def __init__(self, jitter: float = 0.0, rng: np.random.Generator | None = None):
        self.jitter = jitter
        self.rng = rng or np.random.default_rng(0)

    def score_move(self, board: GoBoard, move: int) -> float:
        if move == board.pass_move:
            # Pass only when nothing else has positive value.
            return -1.0
        child = board.play(move)
        captured = int((board.board != EMPTY).sum()) + 1 - int((child.board != EMPTY).sum())
        y, x = board.to_coord(move)
        own_stones, own_libs = child._group_and_liberties(y, x, child.board)
        center = (board.size - 1) / 2.0
        centrality = -(abs(y - center) + abs(x - center)) / board.size
        # Pressure: opponent neighbours in atari after our move.
        pressure = 0.0
        opponent = child.board[y, x] % 2 + 1  # opponent of the stone just placed
        seen: set[tuple[int, int]] = set()
        for ny, nx in child._neighbors(y, x):
            if child.board[ny, nx] == opponent and (ny, nx) not in seen:
                stones, libs = child._group_and_liberties(ny, nx, child.board)
                seen |= stones
                if len(libs) == 1:
                    pressure += 2.0
        return (
            6.0 * captured
            + 0.8 * min(len(own_libs), 4)
            + 0.4 * len(own_stones)
            + 1.0 * centrality
            + pressure
        )

    def select_move(self, board: GoBoard) -> int:
        moves = board.legal_moves()
        best_move, best_score = board.pass_move, -np.inf
        for move in moves:
            score = self.score_move(board, move)
            if self.jitter:
                score += self.rng.normal(0, self.jitter)
            if score > best_score:
                best_score, best_move = score, move
        return best_move


@dataclass
class ReferenceGame:
    """A recorded game: the positions seen and the moves the player chose."""

    positions: list[np.ndarray]  # feature planes per move
    moves: list[int]


def generate_reference_games(
    num_games: int,
    board_size: int = 5,
    seed: int = 0,
    opening_moves: int = 2,
    jitter: float = 0.15,
) -> list[ReferenceGame]:
    """Play ``num_games`` heuristic self-play games with randomized openings.

    The first ``opening_moves`` plies are random legal moves (seeded), after
    which the deterministic heuristic takes over — giving position diversity
    while keeping the move policy learnable.
    """
    rng = np.random.default_rng(seed)
    games: list[ReferenceGame] = []
    for _ in range(num_games):
        player = HeuristicPlayer(jitter=jitter, rng=np.random.default_rng(rng.integers(2**31)))
        board = GoBoard(board_size)
        positions: list[np.ndarray] = []
        moves: list[int] = []
        ply = 0
        while not board.is_over:
            if ply < opening_moves:
                stone_moves = [m for m in board.legal_moves() if m != board.pass_move]
                move = int(rng.choice(stone_moves)) if stone_moves else board.pass_move
            else:
                move = player.select_move(board)
                positions.append(board.feature_planes())
                moves.append(move)
            board = board.play(move)
            ply += 1
        games.append(ReferenceGame(positions=positions, moves=moves))
    return games
