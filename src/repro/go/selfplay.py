"""Self-play data generation for the reinforcement-learning benchmark.

§3.1.4: MiniGo "uses self-play (simulated games) between agents to
generate data, which performs many forward passes through the model to
generate actions".  Each self-play game records, per move, the position's
feature planes, the MCTS visit distribution (the policy target), and the
eventual game outcome from the mover's perspective (the value target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .board import GoBoard
from .mcts import MCTS, MCTSConfig

__all__ = ["SelfPlayExample", "play_selfplay_game", "selfplay_batch"]


@dataclass
class SelfPlayExample:
    """One training example from self-play."""

    planes: np.ndarray  # (3, size, size)
    policy: np.ndarray  # (size*size + 1,) visit distribution
    value: float  # game outcome for the side to move at this position


def play_selfplay_game(
    network,
    board_size: int,
    rng: np.random.Generator,
    mcts_config: MCTSConfig = MCTSConfig(),
    temperature_moves: int = 6,
    komi: float = 0.5,
) -> list[SelfPlayExample]:
    """Play one self-play game; return its training examples.

    Early moves sample from the visit distribution (temperature 1) for
    diversity; later moves play the max-visit move.
    """
    mcts = MCTS(network.evaluate, mcts_config, rng=rng)
    board = GoBoard(board_size, komi=komi)
    trajectory: list[tuple[np.ndarray, np.ndarray, int]] = []  # planes, policy, color
    while not board.is_over:
        policy = mcts.search(board)
        trajectory.append((board.feature_planes(), policy, board.to_play))
        if board.move_count < temperature_moves:
            move = int(rng.choice(len(policy), p=policy))
        else:
            move = int(policy.argmax())
        board = board.play(move)
    winner = board.winner()
    return [
        SelfPlayExample(planes=planes, policy=policy, value=1.0 if color == winner else -1.0)
        for planes, policy, color in trajectory
    ]


def selfplay_batch(
    network,
    num_games: int,
    board_size: int,
    rng: np.random.Generator,
    mcts_config: MCTSConfig = MCTSConfig(),
    komi: float = 0.5,
) -> list[SelfPlayExample]:
    """Generate examples from ``num_games`` self-play games."""
    examples: list[SelfPlayExample] = []
    for _ in range(num_games):
        examples.extend(play_selfplay_game(network, board_size, rng, mcts_config, komi=komi))
    return examples
