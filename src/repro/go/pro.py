"""Reference ("pro") game generation for the MiniGo quality metric.

The paper's MiniGo quality metric is "the percentage of predicted moves
that match human reference games" (§3.1.4) — move prediction against games
played by far stronger players.  We have no humans, so the reference corpus
is produced by a *pro network*: a MiniGoNet trained offline with the same
self-play pipeline for many more iterations, then used to play reference
games with exploration-free search.  This preserves the metric's structure
(predict a stronger player's moves) and its dynamics (match rate rises as
the benchmarked network trains), without human data.

The game uses a competitive komi (8.5 on 5×5) so that games are genuinely
contested; with a token komi every black move wins and move choice carries
no signal.

Pro training is deterministic given its seed; the resulting corpus is
cached on disk (dataset preparation is performed once and untimed under
the §3.2.1 "data reformatting" rule).
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .board import GoBoard
from .mcts import MCTS, MCTSConfig
from .reference_player import ReferenceGame
from .selfplay import play_selfplay_game

__all__ = [
    "ProConfig",
    "DEFAULT_KOMI",
    "train_pro_network",
    "generate_pro_games",
    "pro_reference_games",
]

DEFAULT_KOMI = 8.5


@dataclass(frozen=True)
class ProConfig:
    """Offline pro-network training budget."""

    board_size: int = 5
    komi: float = DEFAULT_KOMI
    iterations: int = 24
    games_per_iteration: int = 3
    train_steps_per_iteration: int = 24
    batch_size: int = 64
    learning_rate: float = 2e-3
    mcts_simulations: int = 16
    replay_capacity: int = 1500
    seed: int = 20190530  # v0.5 results publication date


def train_pro_network(config: ProConfig = ProConfig()):
    """Train the pro network with the standard self-play RL loop."""
    from ..framework import Adam
    from ..models import MiniGoNet

    rng = np.random.default_rng(config.seed)
    net = MiniGoNet(config.board_size, rng)
    optimizer = Adam(net.parameters(), lr=config.learning_rate)
    mcts_config = MCTSConfig(num_simulations=config.mcts_simulations)
    replay: list = []
    for _ in range(config.iterations):
        for _ in range(config.games_per_iteration):
            replay.extend(
                play_selfplay_game(net, config.board_size, rng, mcts_config, komi=config.komi)
            )
        replay = replay[-config.replay_capacity :]
        net.train()
        for _ in range(config.train_steps_per_iteration):
            idx = rng.integers(0, len(replay), size=min(config.batch_size, len(replay)))
            planes = np.stack([replay[i].planes for i in idx])
            policy = np.stack([replay[i].policy for i in idx])
            value = np.array([replay[i].value for i in idx])
            loss = net.loss(planes, policy, value)
            net.zero_grad()
            loss.backward()
            optimizer.step()
    net.eval()
    return net


def generate_pro_games(
    net,
    num_games: int,
    board_size: int,
    seed: int,
    komi: float = DEFAULT_KOMI,
    mcts_simulations: int = 24,
    opening_moves: int = 2,
) -> list[ReferenceGame]:
    """Play reference games with the pro net + exploration-free search.

    Openings are randomized (seeded) for position diversity; from there the
    pro plays its max-visit move.
    """
    rng = np.random.default_rng(seed)
    games: list[ReferenceGame] = []
    config = MCTSConfig(num_simulations=mcts_simulations, dirichlet_weight=0.0)
    for _ in range(num_games):
        mcts = MCTS(net.evaluate, config, rng=np.random.default_rng(rng.integers(2**31)))
        board = GoBoard(board_size, komi=komi)
        positions: list[np.ndarray] = []
        moves: list[int] = []
        ply = 0
        while not board.is_over:
            if ply < opening_moves:
                stone_moves = [m for m in board.legal_moves() if m != board.pass_move]
                move = int(rng.choice(stone_moves)) if stone_moves else board.pass_move
            else:
                policy = mcts.search(board, add_noise=False)
                move = int(policy.argmax())
                positions.append(board.feature_planes())
                moves.append(move)
            board = board.play(move)
            ply += 1
        games.append(ReferenceGame(positions=positions, moves=moves))
    return games


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache"))
    path = Path(root) / "repro_mlperf"
    path.mkdir(parents=True, exist_ok=True)
    return path


@functools.lru_cache(maxsize=4)
def pro_reference_games(
    num_games: int = 12,
    board_size: int = 5,
    seed: int = 7,
    komi: float = DEFAULT_KOMI,
) -> tuple[ReferenceGame, ...]:
    """Cached pro-reference corpus.

    In-process via ``lru_cache``; across processes via an ``.npz`` file in
    the user cache directory, so the one-time pro training cost is paid
    once per machine, mirroring the paper's once-per-dataset reformatting.
    """
    key = f"pro_games_v1_n{num_games}_b{board_size}_s{seed}_k{komi}"
    cache_file = _cache_dir() / f"{key}.npz"
    if cache_file.exists():
        data = np.load(cache_file)
        games = []
        for i in range(int(data["num_games"])):
            games.append(
                ReferenceGame(
                    positions=list(data[f"positions_{i}"]),
                    moves=[int(m) for m in data[f"moves_{i}"]],
                )
            )
        return tuple(games)

    net = train_pro_network(ProConfig(board_size=board_size, komi=komi))
    games = generate_pro_games(net, num_games, board_size, seed, komi=komi)
    payload: dict[str, np.ndarray] = {"num_games": np.array(len(games))}
    for i, game in enumerate(games):
        payload[f"positions_{i}"] = np.stack(game.positions).astype(np.float32)
        payload[f"moves_{i}"] = np.array(game.moves, dtype=np.int64)
    np.savez(cache_file, **payload)
    return tuple(games)
