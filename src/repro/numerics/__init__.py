"""Emulated reduced-precision numerics (the Figure 1 substrate)."""

from .formats import NumericFormat, available_formats, get_format
from .quantize import QuantizedWeights

__all__ = ["NumericFormat", "available_formats", "get_format", "QuantizedWeights"]
