"""Quantized-training hook: train with weights stored in a reduced format.

Implements the classic low-precision training scheme with a full-precision
*master copy* (Micikevicius et al., 2018, which the paper cites): gradients
are applied to the fp32 master weights, and the model's working weights are
re-quantized after every optimizer step.  The forward/backward pass
therefore always sees quantized weights — exactly the mechanism that
produces Figure 1's diverging validation-error curves.
"""

from __future__ import annotations

import numpy as np

from ..framework.module import Module
from .formats import NumericFormat, get_format

__all__ = ["QuantizedWeights"]


class QuantizedWeights:
    """Maintain quantized working weights over an fp32 master copy.

    Usage::

        qw = QuantizedWeights(model, "fixed8")
        for batch in loader:
            loss = ...; loss.backward()
            qw.apply_gradients(optimizer)   # step on master, re-quantize

    With ``format="float32"`` the wrapper is an exact no-op relative to
    plain training.
    """

    def __init__(self, model: Module, numeric_format: str | NumericFormat):
        self.model = model
        self.format = (
            numeric_format
            if isinstance(numeric_format, NumericFormat)
            else get_format(numeric_format)
        )
        # Master copy holds full-precision values; model.data holds the
        # quantized working copy used by forward/backward.
        self._master: dict[int, np.ndarray] = {
            id(p): p.data.astype(np.float32).copy() for p in model.parameters()
        }
        self._requantize()

    def _requantize(self) -> None:
        for p in self.model.parameters():
            p.data = self.format.quantize(self._master[id(p)])

    def apply_gradients(self, optimizer) -> None:
        """Apply the optimizer step to the master weights, then re-quantize.

        The optimizer's parameter list must be the model's parameters; the
        gradients were computed against the quantized working weights.
        """
        # Swap master values in, step, capture, swap quantized back.
        for p in self.model.parameters():
            p.data = self._master[id(p)]
        optimizer.step()
        for p in self.model.parameters():
            self._master[id(p)] = p.data
        self._requantize()

    def master_state(self) -> dict[int, np.ndarray]:
        """Expose master weights (for tests / checkpointing)."""
        return {k: v.copy() for k, v in self._master.items()}
