"""Emulated numeric formats for reduced-precision training studies.

Figure 1 of the paper (from Zhu et al., 2016) shows validation-error curves
of the *same* model trained with different weight representations: the
curves only separate after tens of epochs, and some formats never reach the
full-precision error.  That behaviour is driven by quantization of the
*values* stored in the weights, which is what these formats emulate:

- ``float32`` — identity (the full-precision baseline),
- ``bfloat16`` / ``float16`` — mantissa truncation to 7 / 10 bits (we
  emulate significand rounding, not the exponent-range limits, which do not
  matter at our parameter scales),
- ``fixed<b>`` — signed fixed-point with ``b`` total bits and a per-tensor
  dynamic scale (a common integer-training scheme),
- ``ternary`` — {-s, 0, +s} with a magnitude threshold (trained ternary
  quantization, the format that fails to converge in Figure 1).

Formats quantize a tensor *out-of-place*; the quantized-training hook in
:mod:`repro.numerics.quantize` decides where in the loop to apply them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NumericFormat", "get_format", "available_formats"]


@dataclass(frozen=True)
class NumericFormat:
    """A named value-quantization function."""

    name: str
    bits: int  # informational: storage bits per value

    def quantize(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class _Float32(NumericFormat):
    def quantize(self, values: np.ndarray) -> np.ndarray:
        return values.astype(np.float32)


class _MantissaRounded(NumericFormat):
    """Round the significand to ``mantissa_bits`` bits (round-to-nearest).

    Works by scaling each value so its exponent is normalized, rounding,
    and scaling back — a standard software emulation of low-precision
    floating point that preserves the exponent.
    """

    def __init__(self, name: str, bits: int, mantissa_bits: int):
        super().__init__(name, bits)
        object.__setattr__(self, "mantissa_bits", mantissa_bits)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float32)
        out = np.zeros_like(values)
        nonzero = values != 0
        if not nonzero.any():
            return out
        v = values[nonzero].astype(np.float64)
        exponent = np.floor(np.log2(np.abs(v)))
        scale = 2.0 ** (self.mantissa_bits - exponent)
        out[nonzero] = (np.round(v * scale) / scale).astype(np.float32)
        return out


class _FixedPoint(NumericFormat):
    """Signed fixed point with per-tensor dynamic scaling.

    The tensor is scaled so its max magnitude maps to the largest
    representable integer, rounded, and de-scaled: ``b`` bits give
    ``2^(b-1) - 1`` positive levels.
    """

    def quantize(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float32)
        levels = 2 ** (self.bits - 1) - 1
        max_abs = float(np.abs(values).max(initial=0.0))
        if max_abs == 0:
            return np.zeros_like(values)
        # Scale in float64: for subnormal inputs the scale factor exceeds
        # the float32 range and would overflow to inf.
        scale = levels / max_abs
        v = values.astype(np.float64)
        return (np.round(v * scale) / scale).astype(np.float32)


class _Ternary(NumericFormat):
    """Trained-ternary-style quantization: {-s, 0, +s}.

    Threshold at ``0.05 * max|w|`` (the heuristic of Li & Liu, 2016); the
    magnitude ``s`` is the mean absolute value of the surviving weights,
    which minimizes L2 error given the support.
    """

    def quantize(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float32)
        max_abs = float(np.abs(values).max(initial=0.0))
        if max_abs == 0:
            return np.zeros_like(values)
        threshold = 0.05 * max_abs
        mask = np.abs(values) > threshold
        if not mask.any():
            return np.zeros_like(values)
        magnitude = float(np.abs(values[mask]).mean())
        return (np.sign(values) * mask * magnitude).astype(np.float32)


_FORMATS: dict[str, NumericFormat] = {
    "float32": _Float32("float32", 32),
    "bfloat16": _MantissaRounded("bfloat16", 16, mantissa_bits=7),
    "float16": _MantissaRounded("float16", 16, mantissa_bits=10),
    "fixed8": _FixedPoint("fixed8", 8),
    "fixed6": _FixedPoint("fixed6", 6),
    "fixed4": _FixedPoint("fixed4", 4),
    "ternary": _Ternary("ternary", 2),
}


def get_format(name: str) -> NumericFormat:
    """Look up a numeric format by name."""
    try:
        return _FORMATS[name]
    except KeyError:
        raise KeyError(f"unknown numeric format {name!r}; available: {sorted(_FORMATS)}") from None


def available_formats() -> list[str]:
    return sorted(_FORMATS)
