"""Image classification benchmark: MiniResNet-v1.5 on SyntheticImageNet.

The suite's analog of ResNet-50 v1.5 / ImageNet (§3.1.1, Table 1 row 1):
SGD with momentum, linear-warmup + step-decay LR schedule, random
crop/flip augmentation, quality = top-1 accuracy on the validation set.
The LARS optimizer is available as a hyperparameter — the v0.6 rule change
that enabled large-batch entries (§5).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..datasets import ImageNetConfig, SyntheticImageNet, random_crop_flip
from ..framework import (
    DataLoader,
    LARS,
    SGD,
    Tensor,
    WarmupStepLR,
    functional as F,
    no_grad,
    record_arena_gauges,
)
from ..metrics import top1_accuracy
from ..models import MiniResNet
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["ImageClassificationBenchmark"]

_SPEC = BenchmarkSpec(
    name="image_classification",
    area="vision",
    dataset="SyntheticImageNet",
    model="MiniResNet-v1.5",
    quality_metric="top1_accuracy",
    quality_threshold=0.90,
    required_runs=5,
    max_epochs=20,
    default_hyperparameters={
        "batch_size": 64,
        "base_lr": 0.10,
        "momentum": 0.9,
        "momentum_style": "torch",
        "weight_decay": 1e-4,
        "warmup_epochs": 1,
        "decay_epochs": (8, 14),
        "optimizer": "sgd",  # "lars" allowed for large-batch entries
        "lars_trust": 0.02,
        "augment": True,
    },
    modifiable_hyperparameters=frozenset(
        {"batch_size", "base_lr", "warmup_epochs", "decay_epochs", "optimizer", "lars_trust"}
    ),
)


class _Session(TrainingSession):
    def __init__(self, benchmark: "ImageClassificationBenchmark", seed: int, hp: Mapping[str, Any]):
        self.hp = dict(hp)
        self.data = benchmark.data
        rng = np.random.default_rng(seed)
        self.model = MiniResNet(self.data.config.num_classes, rng, blocks_per_stage=1)
        params = self.model.parameters()
        if hp["optimizer"] == "lars":
            self.optimizer = LARS(
                params, lr=hp["base_lr"], momentum=hp["momentum"],
                weight_decay=hp["weight_decay"], trust_coefficient=hp["lars_trust"],
            )
        elif hp["optimizer"] == "sgd":
            self.optimizer = SGD(
                params, lr=hp["base_lr"], momentum=hp["momentum"],
                weight_decay=hp["weight_decay"], momentum_style=hp["momentum_style"],
            )
        else:
            raise ValueError(f"unknown optimizer {hp['optimizer']!r}")
        steps_per_epoch = max(len(self.data.train) // hp["batch_size"], 1)
        self.scheduler = WarmupStepLR(
            self.optimizer,
            base_lr=hp["base_lr"],
            warmup_steps=hp["warmup_epochs"] * steps_per_epoch,
            milestones=[e * steps_per_epoch for e in hp["decay_epochs"]],
        )
        augment = random_crop_flip if hp["augment"] else None
        self.loader = DataLoader(
            self.data.train, hp["batch_size"], seed=seed, drop_last=True, augment=augment,
            reuse_buffers=True
        )

    def run_epoch(self, epoch: int) -> None:
        self.model.train()
        tracer = current_tracer()
        samples = current_metrics().counter("samples_seen")
        for images, labels in self.loader:
            with tracer.span("train_step", batch=len(images)):
                loss = self.step_executor().step(
                    lambda: F.cross_entropy(self.model(Tensor(images)), labels),
                    pre_backward=self.model.zero_grad,
                )
                self.optimizer.step()
                self.scheduler.step()
            samples.inc(len(images))
        record_arena_gauges()

    def evaluate(self) -> float:
        self.model.eval()
        images, labels = self.data.val.arrays
        scores = []
        with no_grad():
            for start in range(0, len(images), 256):
                scores.append(self.model(Tensor(images[start : start + 256])).data)
        return top1_accuracy(np.concatenate(scores), labels)


class ImageClassificationBenchmark(Benchmark):
    spec = _SPEC

    def __init__(self, data_config: ImageNetConfig = ImageNetConfig()):
        self.data_config = data_config
        self.data: SyntheticImageNet | None = None

    def prepare_data(self) -> None:
        if self.data is None:
            self.data = SyntheticImageNet(self.data_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.data is None:
            raise RuntimeError("call prepare_data() before create_session()")
        return _Session(self, seed, hyperparameters)
