"""Recommendation benchmark: NCF on SyntheticInteractions.

The NCF row of Table 1 (§3.1.5): implicit-feedback training with sampled
negatives, leave-one-out evaluation, quality = HR@10.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..datasets import InteractionConfig, SyntheticInteractions
from ..framework import Adam, record_arena_gauges
from ..metrics import leave_one_out_eval
from ..models import NCF
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["RecommendationBenchmark"]

_SPEC = BenchmarkSpec(
    name="recommendation",
    area="commerce",
    dataset="SyntheticInteractions",
    model="NCF",
    quality_metric="HR@10",
    quality_threshold=0.65,
    required_runs=10,
    max_epochs=40,
    default_hyperparameters={
        "batch_size": 256,
        "base_lr": 2e-3,
        "num_negatives": 4,
        "gmf_dim": 8,
        "mlp_dim": 16,
        "mlp_hidden": (32, 16),
        # §2.2.2 scale-out: >1 runs each step through ShardedDataParallel
        # (bit-identical to dp_workers' in-process synchronous semantics).
        "dp_workers": 1,
        "dp_algorithm": "flat",
    },
    modifiable_hyperparameters=frozenset(
        {"batch_size", "base_lr", "num_negatives", "dp_workers", "dp_algorithm"}
    ),
)


def _dp_loss(model: NCF, shard: tuple) -> "Tensor":
    users, items, labels = shard
    return model.loss(users, items, labels)


class _Session(TrainingSession):
    def __init__(self, benchmark: "RecommendationBenchmark", seed: int, hp: Mapping[str, Any]):
        self.hp = dict(hp)
        self.data = benchmark.data
        cfg = benchmark.data_config
        rng = np.random.default_rng(seed)
        self.model = NCF(
            cfg.num_users, cfg.num_items, rng,
            gmf_dim=hp["gmf_dim"], mlp_dim=hp["mlp_dim"], mlp_hidden=tuple(hp["mlp_hidden"]),
        )
        self.optimizer = Adam(self.model.parameters(), lr=hp["base_lr"])
        self.seed = seed
        self._ndcg = 0.0
        self._engine = None
        workers = int(hp.get("dp_workers", 1))
        if workers > 1:
            if hp["batch_size"] % workers != 0:
                raise ValueError(
                    f"batch_size {hp['batch_size']} not divisible by "
                    f"dp_workers {workers}"
                )
            from ..comms import ShardedDataParallel

            self._engine = ShardedDataParallel(
                self.model, self.optimizer, workers, _dp_loss,
                algorithm=hp.get("dp_algorithm", "flat"),
            )

    def run_epoch(self, epoch: int) -> None:
        """One pass over the positive interactions with fresh negatives."""
        self.model.train()
        rng = np.random.default_rng((self.seed, epoch))
        n_pos = len(self.data.train_users)
        bs = self.hp["batch_size"]
        tracer = current_tracer()
        samples = current_metrics().counter("samples_seen")
        for _ in range(max(n_pos // bs, 1)):
            with tracer.span("train_step", batch=bs):
                users, items, labels = self.data.sample_training_batch(
                    bs, self.hp["num_negatives"], rng
                )
                if self._engine is not None:
                    self._engine.step((users, items, labels))
                else:
                    loss = self.step_executor().step(
                        lambda: self.model.loss(users, items, labels),
                        pre_backward=self.model.zero_grad,
                    )
                    self.optimizer.step()
            samples.inc(len(users))
        record_arena_gauges()

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def evaluate(self) -> float:
        self.model.eval()
        hr, ndcg = leave_one_out_eval(
            self.model.score,
            self.data.eval_positives,
            self.data.eval_negatives,
            self.data.all_users,
            k=10,
        )
        self._ndcg = ndcg
        return hr

    def eval_details(self) -> dict[str, float]:
        return {"ndcg@10": self._ndcg}


class RecommendationBenchmark(Benchmark):
    spec = _SPEC

    def __init__(self, data_config: InteractionConfig = InteractionConfig()):
        self.data_config = data_config
        self.data: SyntheticInteractions | None = None

    def prepare_data(self) -> None:
        if self.data is None:
            self.data = SyntheticInteractions(self.data_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.data is None:
            raise RuntimeError("call prepare_data() before create_session()")
        return _Session(self, seed, hyperparameters)
