"""The benchmark registry: Table 1 as data.

``REGISTRY`` maps benchmark name → factory; :func:`table1` renders the
suite the way the paper's Table 1 does (benchmark, dataset, model, quality
threshold), with the run-count rule of §3.2.2 alongside.
"""

from __future__ import annotations

from typing import Callable

from .base import Benchmark
from .image_classification import ImageClassificationBenchmark
from .instance_segmentation import InstanceSegmentationBenchmark
from .object_detection import ObjectDetectionBenchmark
from .recommendation import RecommendationBenchmark
from .reinforcement import ReinforcementBenchmark
from .translation import TranslationRecurrentBenchmark, TranslationTransformerBenchmark

__all__ = ["REGISTRY", "create_benchmark", "all_specs", "table1",
           "table1_payload"]

REGISTRY: dict[str, Callable[[], Benchmark]] = {
    "image_classification": ImageClassificationBenchmark,
    "object_detection": ObjectDetectionBenchmark,
    "instance_segmentation": InstanceSegmentationBenchmark,
    "translation_recurrent": TranslationRecurrentBenchmark,
    "translation_transformer": TranslationTransformerBenchmark,
    "recommendation": RecommendationBenchmark,
    "reinforcement": ReinforcementBenchmark,
}


def create_benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by Table 1 name."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; available: {sorted(REGISTRY)}") from None
    return factory()


def all_specs():
    """Specs of every benchmark in suite order."""
    return [factory().spec if not hasattr(factory, "spec") else factory.spec
            for factory in REGISTRY.values()]


def table1_payload() -> dict:
    """Machine-readable Table 1 (``repro table1 --json``).

    External drivers (and the loadgen smoke job) enumerate the suite from
    this instead of screen-scraping the fixed-width table.  Sets become
    sorted lists and tuples become lists so the payload is plain JSON.
    """
    rows = []
    for spec in all_specs():
        rows.append({
            "name": spec.name,
            "area": spec.area,
            "dataset": spec.dataset,
            "model": spec.model,
            "quality_metric": spec.quality_metric,
            "quality_threshold": spec.quality_threshold,
            "required_runs": spec.required_runs,
            "max_epochs": spec.max_epochs,
            "default_hyperparameters": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in spec.default_hyperparameters.items()
            },
            "modifiable_hyperparameters": sorted(spec.modifiable_hyperparameters),
            "quality_details": dict(spec.quality_details),
        })
    return {"schema": "repro.table1.v1", "benchmarks": rows}


def table1() -> str:
    """Render the Table 1 analog as fixed-width text."""
    header = f"{'Benchmark':<26}{'Dataset':<24}{'Model':<18}{'Metric':<26}{'Threshold':>10}{'Runs':>6}"
    lines = [header, "-" * len(header)]
    for spec in all_specs():
        lines.append(
            f"{spec.name:<26}{spec.dataset:<24}{spec.model:<18}"
            f"{spec.quality_metric:<26}{spec.quality_threshold:>10.3g}{spec.required_runs:>6}"
        )
    return "\n".join(lines)
