"""The benchmark suite: Table 1 of the paper as executable objects."""

from .base import Benchmark, BenchmarkSpec, TrainingSession
from .image_classification import ImageClassificationBenchmark
from .object_detection import ObjectDetectionBenchmark
from .instance_segmentation import InstanceSegmentationBenchmark
from .translation import TranslationRecurrentBenchmark, TranslationTransformerBenchmark
from .recommendation import RecommendationBenchmark
from .reinforcement import ReinforcementBenchmark
from .registry import REGISTRY, all_specs, create_benchmark, table1, table1_payload

__all__ = [
    "Benchmark",
    "BenchmarkSpec",
    "TrainingSession",
    "ImageClassificationBenchmark",
    "ObjectDetectionBenchmark",
    "InstanceSegmentationBenchmark",
    "TranslationRecurrentBenchmark",
    "TranslationTransformerBenchmark",
    "RecommendationBenchmark",
    "ReinforcementBenchmark",
    "REGISTRY",
    "all_specs",
    "create_benchmark",
    "table1",
    "table1_payload",
]
