"""Lightweight object-detection benchmark: MiniSSD on ShapeScenes.

The SSD row of Table 1 (§3.1.2): single-shot detection representing
real-time applications, quality = mAP on the validation scenes.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..datasets import SceneConfig, ShapeScenes
from ..framework import SGD, Tensor, WarmupStepLR, record_arena_gauges
from ..metrics import GroundTruth, mean_average_precision
from ..models import MiniSSD
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["ObjectDetectionBenchmark"]

_SPEC = BenchmarkSpec(
    name="object_detection",
    area="vision",
    dataset="ShapeScenes",
    model="MiniSSD",
    quality_metric="mAP@0.5",
    quality_threshold=0.50,
    required_runs=5,
    max_epochs=25,
    default_hyperparameters={
        "batch_size": 16,
        "base_lr": 0.02,
        "momentum": 0.9,
        "momentum_style": "torch",
        "weight_decay": 5e-4,
        "warmup_epochs": 1,
        "decay_epochs": (12, 18),
        "negative_ratio": 3.0,
    },
    modifiable_hyperparameters=frozenset(
        {"batch_size", "base_lr", "warmup_epochs", "decay_epochs"}
    ),
)


class _Session(TrainingSession):
    def __init__(self, benchmark: "ObjectDetectionBenchmark", seed: int, hp: Mapping[str, Any]):
        self.hp = dict(hp)
        self.scenes = benchmark.scenes
        rng = np.random.default_rng(seed)
        cfg = benchmark.scene_config
        self.model = MiniSSD(3, rng, image_size=cfg.image_size)
        self.optimizer = SGD(
            self.model.parameters(), lr=hp["base_lr"], momentum=hp["momentum"],
            weight_decay=hp["weight_decay"], momentum_style=hp["momentum_style"],
        )
        self.steps_per_epoch = max(len(self.scenes.train) // hp["batch_size"], 1)
        self.scheduler = WarmupStepLR(
            self.optimizer, base_lr=hp["base_lr"],
            warmup_steps=hp["warmup_epochs"] * self.steps_per_epoch,
            milestones=[e * self.steps_per_epoch for e in hp["decay_epochs"]],
        )
        self.seed = seed

    def run_epoch(self, epoch: int) -> None:
        self.model.train()
        rng = np.random.default_rng((self.seed, epoch))
        order = rng.permutation(len(self.scenes.train))
        bs = self.hp["batch_size"]
        tracer = current_tracer()
        samples = current_metrics().counter("samples_seen")
        for start in range(0, len(order) - bs + 1, bs):
            batch = [self.scenes.train[i] for i in order[start : start + bs]]
            with tracer.span("train_step", batch=bs):
                images = Tensor(ShapeScenes.batch_images(batch))
                boxes = [np.stack([o.box for o in s.objects]) for s in batch]
                labels = [np.array([o.label for o in s.objects]) for s in batch]
                loss = self.step_executor().step(
                    lambda: self.model.loss(images, boxes, labels,
                                            negative_ratio=self.hp["negative_ratio"]),
                    pre_backward=self.model.zero_grad,
                )
                self.optimizer.step()
                self.scheduler.step()
            samples.inc(bs)
        record_arena_gauges()

    def evaluate(self) -> float:
        self.model.eval()
        scenes = self.scenes.val
        ground_truths = [
            GroundTruth(image_id=i, box=o.box, label=o.label)
            for i, s in enumerate(scenes)
            for o in s.objects
        ]
        detections = []
        for start in range(0, len(scenes), 32):
            chunk = scenes[start : start + 32]
            images = Tensor(ShapeScenes.batch_images(chunk))
            detections.extend(
                self.model.detect(images, image_ids=list(range(start, start + len(chunk))))
            )
        return mean_average_precision(detections, ground_truths, iou_thresholds=(0.5,))


class ObjectDetectionBenchmark(Benchmark):
    spec = _SPEC

    def __init__(self, scene_config: SceneConfig = SceneConfig()):
        self.scene_config = scene_config
        self.scenes: ShapeScenes | None = None

    def prepare_data(self) -> None:
        if self.scenes is None:
            self.scenes = ShapeScenes(self.scene_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.scenes is None:
            raise RuntimeError("call prepare_data() before create_session()")
        return _Session(self, seed, hyperparameters)
