"""Benchmark abstractions: the executable form of Table 1.

A :class:`Benchmark` bundles what the paper says a benchmark definition
must pin down (§3.4): the dataset, the reference model and training
procedure, the quality metric and threshold, the run count (§3.2.2), and
the hyperparameters — split into *modifiable* (the rules' explicit list)
and fixed ones.

The phases mirror the timing rules of §3.2.1:

- :meth:`Benchmark.prepare_data` — data generation/reformatting, untimed;
- :meth:`Benchmark.create_session` — model creation/compilation, excludable
  from timing up to a cap;
- :meth:`TrainingSession.run_epoch` / :meth:`TrainingSession.evaluate` —
  the timed region, from first data touch to quality target.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["BenchmarkSpec", "Benchmark", "TrainingSession"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """The Table 1 row for one benchmark, plus the rules' HP lists."""

    name: str
    area: str  # vision / language / commerce / research (paper's taxonomy)
    dataset: str
    model: str
    quality_metric: str
    quality_threshold: float
    required_runs: int  # §3.2.2: 5 for vision, 10 for everything else
    max_epochs: int  # safety cap so non-converging runs terminate
    default_hyperparameters: Mapping[str, Any]
    modifiable_hyperparameters: frozenset[str]
    quality_details: Mapping[str, float] = field(default_factory=dict)  # e.g. dual AP thresholds

    def resolve_hyperparameters(self, overrides: Mapping[str, Any] | None) -> dict[str, Any]:
        """Merge overrides into defaults, rejecting unknown keys.

        Modifiability is *not* enforced here — that is division policy,
        checked by :mod:`repro.core.rules` — but unknown keys are always
        an error.
        """
        merged = dict(self.default_hyperparameters)
        if overrides:
            unknown = set(overrides) - set(merged)
            if unknown:
                raise KeyError(f"unknown hyperparameters for {self.name}: {sorted(unknown)}")
            merged.update(overrides)
        return merged


class TrainingSession(ABC):
    """One training run: stateful model + optimizer + data order."""

    @abstractmethod
    def run_epoch(self, epoch: int) -> None:
        """Train for one epoch (or one RL iteration)."""

    def step_executor(self):
        """The session's step driver (lazily created, one per session).

        Under ``REPRO_KERNEL_MODE=compiled`` the executor captures the
        training step's autograd tape and replays a compiled plan on
        fingerprint-identical steps; under every other kernel mode
        :meth:`~repro.framework.compile.StepExecutor.step` is exactly the
        eager ``forward(); pre_backward(); loss.backward()`` sequence.
        """
        executor = getattr(self, "_step_executor", None)
        if executor is None:
            from ..framework.compile import StepExecutor

            executor = self._step_executor = StepExecutor(name=type(self).__name__)
        return executor

    @abstractmethod
    def evaluate(self) -> float:
        """Return the current quality metric on the held-out set."""

    def eval_details(self) -> dict[str, float]:
        """Optional extra metrics recorded alongside the primary quality."""
        return {}

    def close(self) -> None:
        """Release session resources (worker pools, shared memory).

        Called by the runner when the run ends, success or failure; the
        default is a no-op for sessions with no external resources.
        """

    def export_state(self) -> "dict | None":
        """The trained model's parameters, keyed by name (or ``None``).

        The runner captures this right after the training loop (before
        :meth:`close`) and persists it in the run artifact, so a serving
        run (``repro loadgen``) can rehydrate any completed training run
        from its ``result_*.txt`` alone.  The default handles the common
        session layout — a ``model`` attribute that is a framework
        :class:`~repro.framework.module.Module`; sessions with a different
        layout override this, and returning ``None`` means the run is not
        servable (nothing is persisted).
        """
        from ..framework.module import Module

        model = getattr(self, "model", None)
        if isinstance(model, Module):
            return model.state_dict()
        return None


class Benchmark(ABC):
    """A benchmark definition: spec + data + session factory."""

    spec: BenchmarkSpec

    @abstractmethod
    def prepare_data(self) -> None:
        """Generate/load the dataset (untimed reformatting; idempotent)."""

    @abstractmethod
    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        """Build the model/optimizer (the excludable model-creation phase).

        ``hyperparameters`` must already be resolved via
        :meth:`BenchmarkSpec.resolve_hyperparameters`.
        """

    @property
    def name(self) -> str:
        return self.spec.name
