"""Translation benchmarks: MiniGNMT (recurrent) and MiniTransformer.

The two Table 1 translation rows (§3.1.3), sharing the synthetic corpus the
way the paper's pair shares WMT EN-DE.  Quality = corpus BLEU of greedy
decodes against the deterministic reference translations of the held-out
test sentences.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..datasets import SyntheticTranslation, TranslationConfig
from ..framework import Adam, NoamLR, clip_grad_norm, record_arena_gauges
from ..metrics import corpus_bleu
from ..models import MiniGNMT, MiniTransformer
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["TranslationRecurrentBenchmark", "TranslationTransformerBenchmark"]


class _TranslationSession(TrainingSession):
    """Shared epoch/eval loop; subclass plugs in the model."""

    def __init__(self, corpus: SyntheticTranslation, model, seed: int, hp: Mapping[str, Any]):
        self.corpus = corpus
        self.model = model
        self.hp = dict(hp)
        self.seed = seed
        self.optimizer = Adam(model.parameters(), lr=hp["base_lr"])
        self.scheduler = None
        if hp.get("noam_warmup"):
            self.scheduler = NoamLR(
                self.optimizer, d_model=hp["d_model"], warmup_steps=hp["noam_warmup"],
                scale=hp["base_lr"] * hp["noam_warmup"] ** 0.5 * hp["d_model"] ** 0.5,
            )

    def _loss(self, src, dec_in, dec_out):
        return self.model.loss(src, dec_in, dec_out)

    def run_epoch(self, epoch: int) -> None:
        self.model.train()
        rng = np.random.default_rng((self.seed, epoch))
        pairs = self.corpus.train_pairs
        order = rng.permutation(len(pairs))
        bs = self.hp["batch_size"]
        tracer = current_tracer()
        samples = current_metrics().counter("samples_seen")
        # Bucket by length to limit padding waste: sort each shuffled window.
        for start in range(0, len(order) - bs + 1, bs):
            chunk = [pairs[i] for i in order[start : start + bs]]
            chunk.sort(key=lambda p: len(p[0]))
            with tracer.span("train_step", batch=bs):
                src = self.corpus.encoder_inputs([s for s, _ in chunk])
                dec_in, dec_out = self.corpus.decoder_io([t for _, t in chunk])
                loss = self.step_executor().step(
                    lambda: self._loss(src, dec_in, dec_out),
                    pre_backward=self.model.zero_grad,
                )
                clip_grad_norm(self.model.parameters(), self.hp["grad_clip"])
                self.optimizer.step()
                if self.scheduler is not None:
                    self.scheduler.step()
            samples.inc(bs)
        record_arena_gauges()

    def evaluate(self) -> float:
        self.model.eval()
        sources = [s for s, _ in self.corpus.test_pairs]
        references = [t for _, t in self.corpus.test_pairs]
        hypotheses: list[list[int]] = []
        for start in range(0, len(sources), 64):
            src = self.corpus.encoder_inputs(sources[start : start + 64])
            hypotheses.extend(self.model.greedy_decode(src, max_len=self.hp["max_decode_len"]))
        return corpus_bleu(hypotheses, references)


_GNMT_SPEC = BenchmarkSpec(
    name="translation_recurrent",
    area="language",
    dataset="SyntheticTranslation",
    model="MiniGNMT",
    quality_metric="BLEU",
    quality_threshold=38.0,
    required_runs=10,
    max_epochs=30,
    default_hyperparameters={
        "batch_size": 32,
        "base_lr": 4e-3,
        "grad_clip": 5.0,
        "embed_dim": 48,
        "hidden": 64,
        "layers": 2,
        "max_decode_len": 24,
        "noam_warmup": 0,
        "d_model": 0,
    },
    modifiable_hyperparameters=frozenset({"batch_size", "base_lr", "grad_clip"}),
)


class TranslationRecurrentBenchmark(Benchmark):
    spec = _GNMT_SPEC

    def __init__(self, corpus_config: TranslationConfig = TranslationConfig()):
        self.corpus_config = corpus_config
        self.corpus: SyntheticTranslation | None = None

    def prepare_data(self) -> None:
        if self.corpus is None:
            self.corpus = SyntheticTranslation(self.corpus_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.corpus is None:
            raise RuntimeError("call prepare_data() before create_session()")
        hp = dict(hyperparameters)
        rng = np.random.default_rng(seed)
        model = MiniGNMT(
            self.corpus.vocab.size, rng,
            embed_dim=hp["embed_dim"], hidden=hp["hidden"], layers=hp["layers"],
        )
        return _TranslationSession(self.corpus, model, seed, hp)


_TRANSFORMER_SPEC = BenchmarkSpec(
    name="translation_transformer",
    area="language",
    dataset="SyntheticTranslation",
    model="MiniTransformer",
    quality_metric="BLEU",
    quality_threshold=42.0,
    required_runs=10,
    max_epochs=30,
    default_hyperparameters={
        "batch_size": 32,
        "base_lr": 1e-3,
        "grad_clip": 5.0,
        "d_model": 64,
        "num_heads": 4,
        "d_ff": 128,
        "layers": 2,
        "label_smoothing": 0.1,
        "max_decode_len": 24,
        "noam_warmup": 60,
    },
    modifiable_hyperparameters=frozenset(
        {"batch_size", "base_lr", "grad_clip", "noam_warmup", "label_smoothing"}
    ),
)


class _TransformerSession(_TranslationSession):
    def _loss(self, src, dec_in, dec_out):
        return self.model.loss(src, dec_in, dec_out, label_smoothing=self.hp["label_smoothing"])


class TranslationTransformerBenchmark(Benchmark):
    spec = _TRANSFORMER_SPEC

    def __init__(self, corpus_config: TranslationConfig = TranslationConfig()):
        self.corpus_config = corpus_config
        self.corpus: SyntheticTranslation | None = None

    def prepare_data(self) -> None:
        if self.corpus is None:
            self.corpus = SyntheticTranslation(self.corpus_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.corpus is None:
            raise RuntimeError("call prepare_data() before create_session()")
        hp = dict(hyperparameters)
        rng = np.random.default_rng(seed)
        model = MiniTransformer(
            self.corpus.vocab.size, rng,
            d_model=hp["d_model"], num_heads=hp["num_heads"], d_ff=hp["d_ff"], layers=hp["layers"],
        )
        return _TransformerSession(self.corpus, model, seed, hp)
