"""Reinforcement-learning benchmark: MiniGo on a small board.

The MiniGo row of Table 1 (§3.1.4): the only benchmark that *generates its
own training data* through self-play exploration instead of consuming a
fixed dataset.  Each "epoch" is one RL iteration — a batch of MCTS
self-play games, gradient steps on the replay buffer, and evaluation.
Quality = fraction of predicted moves (policy argmax over plausibly-legal
moves) matching the moves of held-out reference games.

The reference corpus is self-play of a stronger, offline-trained "pro"
network (see :mod:`repro.go.pro`) — our stand-in for human reference
games.  Threshold placement follows the paper's §3.3 policy: independently
seeded agents at this scale agree with the pro on ~15% of moves at their
plateau, so the target (0.14) sits slightly below that, ensuring compliant
runs consistently converge — the same relative placement as the paper's
40% target for full-scale MiniGo.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..framework import Adam, no_grad, record_arena_gauges
from ..go import MCTSConfig, selfplay_batch
from ..go.pro import DEFAULT_KOMI, pro_reference_games
from ..metrics import move_match_rate
from ..models import MiniGoNet
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["ReinforcementBenchmark"]

_SPEC = BenchmarkSpec(
    name="reinforcement",
    area="research",
    dataset="Go 5x5 self-play",
    model="MiniGoNet",
    quality_metric="move_match",
    quality_threshold=0.14,
    required_runs=10,
    max_epochs=20,
    default_hyperparameters={
        "games_per_iteration": 3,
        "mcts_simulations": 16,
        "train_steps_per_iteration": 24,
        "batch_size": 64,
        "base_lr": 2e-3,
        "replay_capacity": 1500,
        "board_size": 5,
        "komi": DEFAULT_KOMI,
    },
    modifiable_hyperparameters=frozenset(
        {"games_per_iteration", "mcts_simulations", "train_steps_per_iteration",
         "batch_size", "base_lr"}
    ),
)


class _Session(TrainingSession):
    def __init__(self, benchmark: "ReinforcementBenchmark", seed: int, hp: Mapping[str, Any]):
        self.hp = dict(hp)
        self.board_size = hp["board_size"]
        self.komi = hp["komi"]
        rng = np.random.default_rng(seed)
        self.rng = rng
        self.model = MiniGoNet(self.board_size, rng)
        self.optimizer = Adam(self.model.parameters(), lr=hp["base_lr"])
        self.mcts_config = MCTSConfig(num_simulations=hp["mcts_simulations"])
        self.replay: list = []
        # Fixed reference evaluation set, shared across runs.
        self.ref_planes = benchmark.ref_planes
        self.ref_moves = benchmark.ref_moves
        self.ref_legal_masks = benchmark.ref_legal_masks

    def run_epoch(self, epoch: int) -> None:
        tracer = current_tracer()
        metrics = current_metrics()
        # 1. Self-play data generation (the expensive exploration phase).
        with tracer.span("selfplay", games=self.hp["games_per_iteration"]):
            examples = selfplay_batch(
                self.model, self.hp["games_per_iteration"], self.board_size, self.rng,
                self.mcts_config, komi=self.komi,
            )
        self.replay.extend(examples)
        if len(self.replay) > self.hp["replay_capacity"]:
            self.replay = self.replay[-self.hp["replay_capacity"] :]
        metrics.gauge("replay_buffer_size").set(len(self.replay))
        # 2. Gradient steps on the replay buffer.
        self.model.train()
        samples = metrics.counter("samples_seen")
        with tracer.span("train_steps", steps=self.hp["train_steps_per_iteration"]):
            for _ in range(self.hp["train_steps_per_iteration"]):
                idx = self.rng.integers(0, len(self.replay), size=min(self.hp["batch_size"],
                                                                      len(self.replay)))
                planes = np.stack([self.replay[i].planes for i in idx])
                policy = np.stack([self.replay[i].policy for i in idx])
                value = np.array([self.replay[i].value for i in idx])
                loss = self.step_executor().step(
                    lambda: self.model.loss(planes, policy, value),
                    pre_backward=self.model.zero_grad,
                )
                self.optimizer.step()
                samples.inc(len(idx))
        record_arena_gauges()

    def evaluate(self) -> float:
        self.model.eval()
        with no_grad():
            logits, _ = self.model(self.ref_planes)
        masked = np.where(self.ref_legal_masks, logits.data, -np.inf)
        predicted = masked.argmax(axis=1)
        return move_match_rate(predicted, self.ref_moves)


class ReinforcementBenchmark(Benchmark):
    spec = _SPEC

    def __init__(self, num_reference_games: int = 12, reference_seed: int = 7):
        self.num_reference_games = num_reference_games
        self.reference_seed = reference_seed
        self.ref_planes: np.ndarray | None = None
        self.ref_moves: np.ndarray | None = None
        self.ref_legal_masks: np.ndarray | None = None

    def prepare_data(self) -> None:
        """Build the pro reference-game corpus (untimed, cached on disk)."""
        if self.ref_planes is not None:
            return
        board_size = self.spec.default_hyperparameters["board_size"]
        komi = self.spec.default_hyperparameters["komi"]
        games = pro_reference_games(
            self.num_reference_games, board_size, self.reference_seed, komi
        )
        self.ref_planes, self.ref_moves, self.ref_legal_masks = _reference_eval_arrays(
            games, board_size
        )

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.ref_planes is None:
            raise RuntimeError("call prepare_data() before create_session()")
        return _Session(self, seed, hyperparameters)


def _reference_eval_arrays(games, board_size: int):
    """Flatten reference games into (planes, moves, legal-move masks).

    Legality masks are derived from occupancy ("empty points + pass"),
    which upper-bounds the true legal set — exact except for the rare
    suicide/ko points, and sufficient to keep the predictor from being
    credited for grossly illegal moves.
    """
    planes, moves = [], []
    for game in games:
        for pos_planes, move in zip(game.positions, game.moves):
            planes.append(pos_planes)
            moves.append(move)
    n_moves = board_size * board_size + 1
    mask_arr = np.zeros((len(planes), n_moves), dtype=bool)
    for i, p in enumerate(planes):
        occupied = (p[0] + p[1]) > 0
        mask_arr[i, : n_moves - 1] = ~occupied.reshape(-1)
        mask_arr[i, n_moves - 1] = True
    return np.stack(planes).astype(np.float32), np.array(moves), mask_arr
