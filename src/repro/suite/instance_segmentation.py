"""Heavyweight detection/segmentation benchmark: MiniMaskRCNN on ShapeScenes.

The Mask R-CNN row of Table 1 (§3.1.2).  Like the paper's version it has a
*dual* quality requirement — box AP and mask AP thresholds must both be
met.  The harness tracks a scalar quality, so the primary metric is the
normalized minimum ``min(box_ap / box_thr, mask_ap / mask_thr)`` with
threshold 1.0; both raw APs are reported via :meth:`eval_details` and
logged.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..datasets import SceneConfig, ShapeScenes
from ..framework import SGD, Tensor, WarmupStepLR, record_arena_gauges
from ..metrics import GroundTruth, mean_average_precision
from ..models import MiniMaskRCNN
from ..telemetry import current_metrics, current_tracer
from .base import Benchmark, BenchmarkSpec, TrainingSession

__all__ = ["InstanceSegmentationBenchmark"]

BOX_AP_THRESHOLD = 0.50
MASK_AP_THRESHOLD = 0.45

_SPEC = BenchmarkSpec(
    name="instance_segmentation",
    area="vision",
    dataset="ShapeScenes",
    model="MiniMaskRCNN",
    quality_metric="min(boxAP, maskAP)/thresholds",
    quality_threshold=1.0,
    required_runs=5,
    max_epochs=25,
    default_hyperparameters={
        "batch_size": 8,
        "base_lr": 0.02,
        "momentum": 0.9,
        "momentum_style": "torch",
        "weight_decay": 1e-4,
        "warmup_epochs": 1,
        "decay_epochs": (12, 18),
    },
    modifiable_hyperparameters=frozenset(
        {"batch_size", "base_lr", "warmup_epochs", "decay_epochs"}
    ),
    quality_details={"box_ap": BOX_AP_THRESHOLD, "mask_ap": MASK_AP_THRESHOLD},
)


class _Session(TrainingSession):
    def __init__(self, benchmark: "InstanceSegmentationBenchmark", seed: int, hp: Mapping[str, Any]):
        self.hp = dict(hp)
        self.scenes = benchmark.scenes
        rng = np.random.default_rng(seed)
        self.model = MiniMaskRCNN(3, rng, image_size=benchmark.scene_config.image_size)
        self.optimizer = SGD(
            self.model.parameters(), lr=hp["base_lr"], momentum=hp["momentum"],
            weight_decay=hp["weight_decay"], momentum_style=hp["momentum_style"],
        )
        steps = max(len(self.scenes.train) // hp["batch_size"], 1)
        self.scheduler = WarmupStepLR(
            self.optimizer, base_lr=hp["base_lr"],
            warmup_steps=hp["warmup_epochs"] * steps,
            milestones=[e * steps for e in hp["decay_epochs"]],
        )
        self.seed = seed
        self._details: dict[str, float] = {}

    def run_epoch(self, epoch: int) -> None:
        self.model.train()
        rng = np.random.default_rng((self.seed, epoch))
        order = rng.permutation(len(self.scenes.train))
        bs = self.hp["batch_size"]
        tracer = current_tracer()
        samples = current_metrics().counter("samples_seen")
        for start in range(0, len(order) - bs + 1, bs):
            batch = [self.scenes.train[i] for i in order[start : start + bs]]
            with tracer.span("train_step", batch=bs):
                images = Tensor(ShapeScenes.batch_images(batch))
                boxes = [np.stack([o.box for o in s.objects]) for s in batch]
                labels = [np.array([o.label for o in s.objects]) for s in batch]
                masks = [np.stack([o.mask for o in s.objects]) for s in batch]
                loss = self.step_executor().step(
                    lambda: self.model.loss(images, boxes, labels, masks),
                    pre_backward=self.model.zero_grad,
                )
                self.optimizer.step()
                self.scheduler.step()
            samples.inc(bs)
        record_arena_gauges()

    def evaluate(self) -> float:
        self.model.eval()
        scenes = self.scenes.val
        ground_truths = [
            GroundTruth(image_id=i, box=o.box, label=o.label, mask=o.mask)
            for i, s in enumerate(scenes)
            for o in s.objects
        ]
        detections = []
        for start in range(0, len(scenes), 16):
            chunk = scenes[start : start + 16]
            images = Tensor(ShapeScenes.batch_images(chunk))
            detections.extend(
                self.model.detect(images, image_ids=list(range(start, start + len(chunk))))
            )
        box_ap = mean_average_precision(detections, ground_truths, iou_thresholds=(0.5,))
        mask_ap = mean_average_precision(
            detections, ground_truths, iou_thresholds=(0.5,), use_masks=True
        )
        self._details = {"box_ap": box_ap, "mask_ap": mask_ap}
        return min(box_ap / BOX_AP_THRESHOLD, mask_ap / MASK_AP_THRESHOLD)

    def eval_details(self) -> dict[str, float]:
        return dict(self._details)


class InstanceSegmentationBenchmark(Benchmark):
    spec = _SPEC

    def __init__(self, scene_config: SceneConfig | None = None):
        # Smaller training set than SSD: Mask R-CNN is the heavyweight entry.
        self.scene_config = scene_config or SceneConfig(train_size=240, val_size=60)
        self.scenes: ShapeScenes | None = None

    def prepare_data(self) -> None:
        if self.scenes is None:
            self.scenes = ShapeScenes(self.scene_config)

    def create_session(self, seed: int, hyperparameters: Mapping[str, Any]) -> TrainingSession:
        if self.scenes is None:
            raise RuntimeError("call prepare_data() before create_session()")
        return _Session(self, seed, hyperparameters)
